//! Adversarial and failure-injection tests: the engine must stay
//! well-formed under hostile scheduling policies.

use phoenix::prelude::*;
use phoenix::sim::{SimCtx, SimState, WorkerId};
use phoenix::traces::Job;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_trace(jobs: u32) -> Trace {
    let jobs = (0..jobs)
        .map(|i| Job {
            id: JobId(i),
            arrival_s: f64::from(i) * 0.5,
            task_durations_s: vec![1.0, 2.0],
            estimated_task_duration_s: 1.5,
            constraints: ConstraintSet::unconstrained(),
            short: true,
            user: 0,
        })
        .collect();
    Trace::new("tiny", jobs)
}

fn cluster(n: usize) -> FeasibilityIndex {
    let mut rng = StdRng::seed_from_u64(1);
    FeasibilityIndex::new(
        MachinePopulation::generate(PopulationProfile::google_like(), n, &mut rng).into_machines(),
    )
}

/// Dumps every probe on worker 0 — a pathological hot-spot policy.
#[derive(Debug)]
struct HotSpot;

impl Scheduler for HotSpot {
    fn name(&self) -> &str {
        "hot-spot"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        for _ in 0..ctx.job(job).num_tasks() {
            let probe = ctx.new_probe(job);
            ctx.send_probe(WorkerId(0), probe);
        }
    }
}

#[test]
fn hot_spot_policy_still_completes_serially() {
    let trace = tiny_trace(50);
    let result = Simulation::new(
        SimConfig::default(),
        cluster(10),
        &trace,
        Box::new(HotSpot),
        1,
    )
    .run();
    assert_eq!(result.incomplete_jobs, 0);
    assert_eq!(result.counters.jobs_completed, 50);
    // Everything ran on one slot: makespan at least the serial work.
    assert!(result.metrics.makespan.as_secs_f64() >= 150.0 - 1e-6);
}

/// Ignores every job — nothing must complete, everything must be counted.
#[derive(Debug)]
struct DropAll;

impl Scheduler for DropAll {
    fn name(&self) -> &str {
        "drop-all"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        ctx.fail_job(job);
    }
}

#[test]
fn failing_every_job_is_accounted_not_hung() {
    let trace = tiny_trace(20);
    let result = Simulation::new(
        SimConfig::default(),
        cluster(4),
        &trace,
        Box::new(DropAll),
        1,
    )
    .run();
    assert_eq!(result.counters.jobs_failed, 20);
    assert_eq!(result.counters.jobs_completed, 0);
    assert_eq!(
        result.incomplete_jobs, 0,
        "failed jobs are not 'incomplete'"
    );
    assert_eq!(result.counters.tasks_completed, 0);
}

/// Leaves probes unserved by refusing to select them.
#[derive(Debug)]
struct NeverServe;

impl Scheduler for NeverServe {
    fn name(&self) -> &str {
        "never-serve"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let probe = ctx.new_probe(job);
        ctx.send_probe(WorkerId(0), probe);
    }

    fn select_probe(&mut self, _worker: WorkerId, _state: &SimState) -> Option<usize> {
        None
    }
}

#[test]
fn refusing_to_serve_terminates_with_incomplete_jobs() {
    let trace = tiny_trace(5);
    let result = Simulation::new(
        SimConfig::default(),
        cluster(2),
        &trace,
        Box::new(NeverServe),
        1,
    )
    .run();
    // The run terminates (no livelock) and reports the stuck jobs.
    assert_eq!(result.incomplete_jobs, 5);
    assert_eq!(result.counters.tasks_completed, 0);
}

/// Steals everything it can on every task finish, constantly reshuffling.
#[derive(Debug)]
struct StealHappy;

impl Scheduler for StealHappy {
    fn name(&self) -> &str {
        "steal-happy"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let tasks = ctx.job(job).num_tasks();
        let n = ctx.num_workers() as u32;
        for i in 0..tasks {
            let probe = ctx.new_probe(job);
            ctx.send_probe(WorkerId(i as u32 % n), probe);
        }
    }

    fn on_task_finish(
        &mut self,
        worker: WorkerId,
        _job: JobId,
        _duration_us: u64,
        ctx: &mut SimCtx<'_>,
    ) {
        // Move every queued probe from the next worker over to this one.
        let victim = WorkerId((worker.0 + 1) % ctx.num_workers() as u32);
        let stolen = ctx.worker_mut(victim).steal_if(|p| !p.is_bound());
        for probe in stolen {
            ctx.counters_mut().stolen_probes += 1;
            ctx.transfer_probe(worker, probe);
        }
        ctx.touch(victim);
    }
}

#[test]
fn constant_stealing_preserves_conservation() {
    let trace = tiny_trace(60);
    let result = Simulation::new(
        SimConfig::default(),
        cluster(6),
        &trace,
        Box::new(StealHappy),
        1,
    )
    .run();
    assert_eq!(result.incomplete_jobs, 0);
    let c = result.counters;
    assert_eq!(c.probes_sent, c.tasks_completed + c.redundant_probes);
    assert!(c.stolen_probes > 0, "the shuffle must actually happen");
}
