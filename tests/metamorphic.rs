//! Metamorphic battery: transformations of a run that must not change the
//! observable outcome (or must change it in an exactly predictable way).
//!
//! Each test states a relation of the form "run(T(input)) == R(run(input))"
//! where T is a semantics-preserving transformation:
//!
//! * **Clock scaling at the reference clock** — enabling
//!   `scale_duration_by_clock` on a cluster whose machines all run at
//!   exactly `reference_clock_mhz` multiplies every duration by 1.0, so it
//!   must be byte-identical to leaving it off.
//! * **Uniform time shift** — translating every arrival by a constant T
//!   shifts every event timestamp by exactly T and changes nothing else.
//! * **Worker-ID permutation** — permuting the order machines are handed
//!   to the engine relabels worker indices. For *unconstrained* workloads
//!   (machine attributes behaviourally inert) the digest must be invariant
//!   for all five schedulers. For constrained workloads on heterogeneous
//!   clusters the digest is *expectedly* index-sensitive: placement draws
//!   worker indices from the seeded RNG, so permuting the index→machine
//!   mapping re-routes the same draws to different machines. That is a
//!   property of seeded sampling, not a scheduler asymmetry; the
//!   unconstrained case is exactly the one where symmetry is well-defined.
//! * **Probe relabeling** — probe ids are opaque labels; burning a block
//!   of ids before the run (shifting every id the policies ever see) must
//!   leave the run byte-identical.
//! * **Expression algebra laws** — De Morgan, double negation, `Any`
//!   child permutation and `All`-flattening rewrites of constraint
//!   expression trees leave the compiled feasible sets unchanged; where
//!   the rewrite also preserves the placement draw sequence (feasible
//!   expressions, distinct-length `Any` branch projections) the full run
//!   digest is unchanged for all five schedulers.
//! * **Degenerate-`All` normalization** — replacing every flat constraint
//!   set with `ConstraintExpr::all(same_constraints)` is byte-identical
//!   across the 5-scheduler × 3-seed matrix: the expression front-end is
//!   provably free when the tree is a pure conjunction.

use phoenix::prelude::*;
use phoenix::sim::{SimCtx, SimState, WorkerId};
use phoenix::traces::{Job, JobId, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALL_KINDS: [SchedulerKind; 5] = [
    SchedulerKind::Phoenix,
    SchedulerKind::EagleC,
    SchedulerKind::HawkC,
    SchedulerKind::SparrowC,
    SchedulerKind::YaqD,
];

const NODES: usize = 40;
const JOBS: usize = 150;
const UTIL: f64 = 0.7;
const SEED: u64 = 42;

fn yahoo_inputs() -> (Vec<AttributeVector>, Trace) {
    let profile = TraceProfile::yahoo();
    let mut rng = StdRng::seed_from_u64(1299);
    let cluster = MachinePopulation::generate(profile.population.clone(), NODES, &mut rng);
    let trace = TraceGenerator::new(profile, SEED).generate(JOBS, NODES, UTIL);
    (cluster.into_machines(), trace)
}

fn build_kind(kind: SchedulerKind) -> Box<dyn Scheduler> {
    let cutoff = TraceProfile::yahoo().short_cutoff_s();
    match kind {
        SchedulerKind::Phoenix => Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(cutoff))),
        SchedulerKind::EagleC => Box::new(EagleC::new(BaselineConfig::with_cutoff_s(cutoff))),
        SchedulerKind::HawkC => Box::new(HawkC::new(BaselineConfig::with_cutoff_s(cutoff))),
        SchedulerKind::SparrowC => Box::new(SparrowC::new(BaselineConfig::with_cutoff_s(cutoff))),
        SchedulerKind::YaqD => Box::new(YaqD::new(BaselineConfig::with_cutoff_s(cutoff))),
        other => panic!("not part of the metamorphic battery: {other:?}"),
    }
}

fn run_direct(
    config: SimConfig,
    machines: Vec<AttributeVector>,
    trace: &Trace,
    scheduler: Box<dyn Scheduler>,
    sink: Option<MemorySink>,
) -> SimResult {
    let mut sim = Simulation::new(
        config,
        FeasibilityIndex::new(machines),
        trace,
        scheduler,
        SEED,
    );
    if let Some(sink) = sink {
        sim.set_trace_sink(Box::new(sink));
    }
    sim.enable_audit(AuditConfig::default());
    let result = sim.run();
    let report = result.audit.as_ref().expect("audit enabled");
    assert!(report.is_clean(), "{}: {report}", result.scheduler);
    result
}

/// Rounds every arrival to an exact microsecond (the engine's resolution),
/// so a whole-second shift translates timestamps without re-rounding drift.
fn with_exact_arrivals(trace: &Trace, shift_s: f64) -> Trace {
    let jobs: Vec<Job> = trace
        .jobs()
        .iter()
        .map(|j| {
            let mut j = j.clone();
            j.arrival_s = (j.arrival_s * 1e6).round() / 1e6 + shift_s;
            j
        })
        .collect();
    Trace::new(trace.name().to_string(), jobs)
}

/// `scale_duration_by_clock` is the identity on a cluster running entirely
/// at the reference clock: same digest as leaving it off.
#[test]
fn clock_scaling_at_reference_clock_is_identity() {
    let (mut machines, trace) = yahoo_inputs();
    let reference_mhz = SimConfig::default().reference_clock_mhz;
    for m in &mut machines {
        m.cpu_clock_mhz = reference_mhz;
    }
    for kind in [SchedulerKind::Phoenix, SchedulerKind::EagleC] {
        let plain = run_direct(
            SimConfig::default(),
            machines.clone(),
            &trace,
            build_kind(kind),
            None,
        );
        let scaled_config = SimConfig {
            scale_duration_by_clock: true,
            ..SimConfig::default()
        };
        let scaled = run_direct(
            scaled_config,
            machines.clone(),
            &trace,
            build_kind(kind),
            None,
        );
        assert_eq!(
            plain.digest(),
            scaled.digest(),
            "{kind:?}: scaling by a 1.0 clock factor must be a no-op"
        );
    }
}

/// Shifting every arrival by a constant translates the whole run: same
/// counters, same busy time, same record stream with every timestamp moved
/// by exactly the shift, and a makespan larger by exactly the shift.
#[test]
fn uniform_time_shift_translates_the_run_exactly() {
    const SHIFT_S: f64 = 10.0;
    const SHIFT_US: u64 = 10_000_000;
    let (machines, raw_trace) = yahoo_inputs();
    let base_trace = with_exact_arrivals(&raw_trace, 0.0);
    let shifted_trace = with_exact_arrivals(&raw_trace, SHIFT_S);

    let base_sink = MemorySink::new(1 << 16);
    let base_handle = base_sink.handle();
    let base = run_direct(
        SimConfig::default(),
        machines.clone(),
        &base_trace,
        build_kind(SchedulerKind::Phoenix),
        Some(base_sink),
    );
    let shifted_sink = MemorySink::new(1 << 16);
    let shifted_handle = shifted_sink.handle();
    let shifted = run_direct(
        SimConfig::default(),
        machines,
        &shifted_trace,
        build_kind(SchedulerKind::Phoenix),
        Some(shifted_sink),
    );

    assert_eq!(base.counters, shifted.counters);
    assert_eq!(base.metrics.busy_us, shifted.metrics.busy_us);
    assert_eq!(
        base.metrics.makespan.as_micros() + SHIFT_US,
        shifted.metrics.makespan.as_micros(),
        "makespan must shift by exactly the arrival shift"
    );

    let base_records = MemorySink::records(&base_handle);
    let shifted_records = MemorySink::records(&shifted_handle);
    assert_eq!(base_records.len(), shifted_records.len());
    for (i, (a, b)) in base_records.iter().zip(&shifted_records).enumerate() {
        assert_eq!(
            a.kind_name(),
            b.kind_name(),
            "record {i} changed kind under a pure time shift"
        );
        assert_eq!(
            a.at_us() + SHIFT_US,
            b.at_us(),
            "record {i} ({}) did not shift by exactly {SHIFT_US} µs",
            a.kind_name()
        );
    }
}

/// For unconstrained workloads, permuting the order machines are handed to
/// the engine must not change any scheduler's result: worker indices are
/// then pure labels (no feasibility, no clock scaling), and all five
/// policies must treat them symmetrically.
#[test]
fn worker_permutation_leaves_unconstrained_runs_invariant() {
    let (machines, raw_trace) = yahoo_inputs();
    let jobs: Vec<Job> = raw_trace
        .jobs()
        .iter()
        .map(|j| {
            let mut j = j.clone();
            j.constraints = ConstraintSet::unconstrained();
            j
        })
        .collect();
    let trace = Trace::new(raw_trace.name().to_string(), jobs);

    let mut permuted = machines.clone();
    permuted.reverse();
    permuted.rotate_left(NODES / 3);

    for kind in ALL_KINDS {
        let original = run_direct(
            SimConfig::default(),
            machines.clone(),
            &trace,
            build_kind(kind),
            None,
        );
        let relabeled = run_direct(
            SimConfig::default(),
            permuted.clone(),
            &trace,
            build_kind(kind),
            None,
        );
        assert_eq!(
            original.digest(),
            relabeled.digest(),
            "{kind:?}: permuting worker creation order changed an unconstrained run"
        );
    }
}

/// Delegating wrapper that burns a block of probe ids before the first
/// placement, shifting every probe id its inner policy ever sees.
struct ProbeRelabeler {
    inner: Box<dyn Scheduler>,
    burn: u64,
}

impl Scheduler for ProbeRelabeler {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        while self.burn > 0 {
            // `new_probe` only advances the id counter: no RNG, no metrics.
            let _ = ctx.new_probe(job);
            self.burn -= 1;
        }
        self.inner.on_job_arrival(job, ctx);
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        self.inner.on_probe_enqueued(worker, ctx);
    }

    fn select_probe(&mut self, worker: WorkerId, state: &SimState) -> Option<usize> {
        self.inner.select_probe(worker, state)
    }

    fn on_task_finish(
        &mut self,
        worker: WorkerId,
        job: JobId,
        duration_us: u64,
        ctx: &mut SimCtx<'_>,
    ) {
        self.inner.on_task_finish(worker, job, duration_us, ctx);
    }

    fn on_job_complete(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        self.inner.on_job_complete(job, ctx);
    }

    fn on_wakeup(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        self.inner.on_wakeup(token, ctx);
    }

    fn on_probe_retry(&mut self, probe: phoenix::sim::Probe, ctx: &mut SimCtx<'_>) {
        self.inner.on_probe_retry(probe, ctx);
    }

    fn on_worker_crash(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        self.inner.on_worker_crash(worker, ctx);
    }

    fn on_worker_recover(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        self.inner.on_worker_recover(worker, ctx);
    }
}

// ---------------------------------------------------------------------------
// Expression algebra laws
// ---------------------------------------------------------------------------

/// A small random leaf pool spanning categorical and scalar kinds (values
/// straddle the yahoo population's attribute ranges so complements and
/// unions are all non-trivial).
fn law_leaf(sel: u64) -> ConstraintExpr {
    let hard = sel & 1 == 0;
    let mk = |kind, op, value| {
        ConstraintExpr::leaf(if hard {
            Constraint::hard(kind, op, value)
        } else {
            Constraint::soft(kind, op, value)
        })
    };
    match (sel >> 1) % 5 {
        0 => mk(ConstraintKind::Architecture, ConstraintOp::Eq, sel % 3),
        1 => mk(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            [4, 8, 16][(sel >> 4) as usize % 3],
        ),
        2 => mk(
            ConstraintKind::Memory,
            ConstraintOp::Lt,
            [32, 64, 128][(sel >> 4) as usize % 3],
        ),
        3 => mk(ConstraintKind::PlatformFamily, ConstraintOp::Eq, sel % 2),
        _ => ConstraintExpr::vector(VectorDemand {
            cores: [4, 8][(sel >> 4) as usize % 2],
            memory_gb: [0, 16][(sel >> 5) as usize % 2],
            ..VectorDemand::default()
        }),
    }
}

fn feasible_ids(index: &FeasibilityIndex, expr: &ConstraintExpr) -> Vec<u32> {
    index
        .feasible(&ConstraintSet::from_expr(expr.clone()))
        .to_vec()
}

/// De Morgan, double negation, `Any` permutation and `All`-flattening all
/// leave the compiled feasible set unchanged, for a battery of random
/// trees over the heterogeneous yahoo population.
#[test]
fn expression_rewrite_laws_preserve_feasible_sets() {
    let (machines, _) = yahoo_inputs();
    let index = FeasibilityIndex::new(machines);
    for seed in 0..60u64 {
        let a = law_leaf(seed.wrapping_mul(0x9e37_79b9));
        let b = law_leaf(seed.wrapping_mul(0x85eb_ca6b).wrapping_add(17));
        let c = law_leaf(seed.wrapping_mul(0xc2b2_ae35).wrapping_add(91));

        // De Morgan, both directions.
        let not_any = ConstraintExpr::not(ConstraintExpr::any_of(vec![a.clone(), b.clone()]));
        let all_not = ConstraintExpr::all_of(vec![
            ConstraintExpr::not(a.clone()),
            ConstraintExpr::not(b.clone()),
        ]);
        assert_eq!(
            feasible_ids(&index, &not_any),
            feasible_ids(&index, &all_not),
            "De Morgan Not(Any) != All(Not) at seed {seed}"
        );
        let not_all = ConstraintExpr::not(ConstraintExpr::all_of(vec![a.clone(), b.clone()]));
        let any_not = ConstraintExpr::any_of(vec![
            ConstraintExpr::not(a.clone()),
            ConstraintExpr::not(b.clone()),
        ]);
        assert_eq!(
            feasible_ids(&index, &not_all),
            feasible_ids(&index, &any_not),
            "De Morgan Not(All) != Any(Not) at seed {seed}"
        );

        // Double negation.
        let tree = ConstraintExpr::any_of(vec![a.clone(), ConstraintExpr::not(b.clone())]);
        assert_eq!(
            feasible_ids(&index, &tree),
            feasible_ids(
                &index,
                &ConstraintExpr::not(ConstraintExpr::not(tree.clone()))
            ),
            "double negation changed the feasible set at seed {seed}"
        );

        // `Any` child permutation.
        let fwd = ConstraintExpr::any_of(vec![a.clone(), b.clone(), c.clone()]);
        let rev = ConstraintExpr::any_of(vec![c.clone(), a.clone(), b.clone()]);
        assert_eq!(
            feasible_ids(&index, &fwd),
            feasible_ids(&index, &rev),
            "Any permutation changed the feasible set at seed {seed}"
        );

        // `All`-flattening: nested conjunctions normalize to the flat set,
        // so the two sets are not merely equi-feasible but *equal*.
        let nested = ConstraintExpr::all_of(vec![
            ConstraintExpr::all_of(vec![a.clone(), b.clone()]),
            c.clone(),
        ]);
        let flat = ConstraintExpr::all_of(vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(
            feasible_ids(&index, &nested),
            feasible_ids(&index, &flat),
            "All-flattening changed the feasible set at seed {seed}"
        );
    }
}

/// Swaps each constrained job's set for a handcrafted feasible expression,
/// alternating between an `Any` union (distinct-length branch projections)
/// and a negated union.
fn expression_trace(trace: &Trace, index: &FeasibilityIndex, rewrite: bool) -> Trace {
    let jobs: Vec<Job> = trace
        .jobs()
        .iter()
        .enumerate()
        .map(|(i, j)| {
            let mut j = j.clone();
            if j.constraints.is_unconstrained() {
                return j;
            }
            let expr = if i % 2 == 0 {
                // Any(leaf, vector): projections have lengths 1 and 2, so
                // the CRV min-branch projection is order-independent and a
                // child permutation preserves the draw sequence exactly.
                let leaf = ConstraintExpr::leaf(Constraint::hard(
                    ConstraintKind::NumCores,
                    ConstraintOp::Gt,
                    4,
                ));
                let vector = ConstraintExpr::vector(VectorDemand {
                    cores: 4,
                    memory_gb: 16,
                    ..VectorDemand::default()
                });
                if rewrite {
                    ConstraintExpr::any_of(vec![vector, leaf])
                } else {
                    ConstraintExpr::any_of(vec![leaf, vector])
                }
            } else {
                // Not(Any(isa, platform)) and its De Morgan rewrite
                // All(Not(isa), Not(platform)): identical eval/hard_eval
                // and identical (empty) CRV projections.
                let isa = ConstraintExpr::leaf(Constraint::hard(
                    ConstraintKind::Architecture,
                    ConstraintOp::Eq,
                    0,
                ));
                let platform = ConstraintExpr::leaf(Constraint::hard(
                    ConstraintKind::PlatformFamily,
                    ConstraintOp::Eq,
                    1,
                ));
                if rewrite {
                    ConstraintExpr::all_of(vec![
                        ConstraintExpr::not(isa),
                        ConstraintExpr::not(platform),
                    ])
                } else {
                    ConstraintExpr::not(ConstraintExpr::any_of(vec![isa, platform]))
                }
            };
            let set = ConstraintSet::from_expr(expr);
            // Draw-sequence preservation relies on the expression staying
            // feasible (admission never reaches branch negotiation).
            assert!(
                index.count_feasible(&set) > 0,
                "law fixture must be feasible"
            );
            j.constraints = set;
            j
        })
        .collect();
    Trace::new(trace.name().to_string(), jobs)
}

/// Where the rewrite preserves the draw sequence — feasible expressions,
/// order-independent projections — De Morgan and `Any`-permutation leave
/// the full run digest unchanged for all five schedulers.
#[test]
fn expression_rewrites_preserve_digests_when_draws_are_preserved() {
    let (machines, raw_trace) = yahoo_inputs();
    let index = FeasibilityIndex::new(machines.clone());
    let original = expression_trace(&raw_trace, &index, false);
    let rewritten = expression_trace(&raw_trace, &index, true);
    for kind in ALL_KINDS {
        let base = run_direct(
            SimConfig::default(),
            machines.clone(),
            &original,
            build_kind(kind),
            None,
        );
        let transformed = run_direct(
            SimConfig::default(),
            machines.clone(),
            &rewritten,
            build_kind(kind),
            None,
        );
        assert_eq!(
            base.digest(),
            transformed.digest(),
            "{kind:?}: law-preserving expression rewrite changed the run"
        );
    }
}

/// `ConstraintSet::from_constraints(v)` and the degenerate tree
/// `ConstraintExpr::all(v)` are byte-identical across the full
/// 5-scheduler × 3-seed matrix: the expression front-end normalizes pure
/// conjunctions to the exact flat representation, so pre-expression
/// digests cannot move.
#[test]
fn degenerate_all_trees_match_flat_sets_across_matrix() {
    for trace_seed in [7u64, 42, 1299] {
        let profile = TraceProfile::yahoo();
        let mut rng = StdRng::seed_from_u64(1299);
        let cluster = MachinePopulation::generate(profile.population.clone(), NODES, &mut rng);
        let machines = cluster.into_machines();
        let trace = TraceGenerator::new(profile, trace_seed).generate(JOBS, NODES, UTIL);

        let jobs: Vec<Job> = trace
            .jobs()
            .iter()
            .map(|j| {
                let mut j = j.clone();
                if j.constraints.expr().is_none() && !j.constraints.is_unconstrained() {
                    let flat: Vec<Constraint> = j.constraints.iter().cloned().collect();
                    let set = ConstraintSet::from_expr(ConstraintExpr::all(flat))
                        .with_placement(j.constraints.placement());
                    assert_eq!(set, j.constraints, "degenerate All must normalize to flat");
                    j.constraints = set;
                }
                j
            })
            .collect();
        let tree_trace = Trace::new(trace.name().to_string(), jobs);

        for kind in ALL_KINDS {
            let flat_run = run_direct(
                SimConfig::default(),
                machines.clone(),
                &trace,
                build_kind(kind),
                None,
            );
            let tree_run = run_direct(
                SimConfig::default(),
                machines.clone(),
                &tree_trace,
                build_kind(kind),
                None,
            );
            assert_eq!(
                flat_run.digest(),
                tree_run.digest(),
                "{kind:?} seed {trace_seed}: degenerate All tree diverged from flat set"
            );
        }
    }
}

/// Probe ids are opaque labels: offsetting every id by a large constant
/// (by burning a block of ids up front) leaves every scheduler's run — the
/// full record stream included — byte-identical.
#[test]
fn probe_relabeling_is_invisible() {
    for kind in ALL_KINDS {
        let (machines, trace) = yahoo_inputs();
        let plain_sink = MemorySink::new(1 << 16);
        let plain_handle = plain_sink.handle();
        let plain = run_direct(
            SimConfig::default(),
            machines.clone(),
            &trace,
            build_kind(kind),
            Some(plain_sink),
        );
        let relabeled_sink = MemorySink::new(1 << 16);
        let relabeled_handle = relabeled_sink.handle();
        let relabeled = run_direct(
            SimConfig::default(),
            machines,
            &trace,
            Box::new(ProbeRelabeler {
                inner: build_kind(kind),
                burn: 100_000,
            }),
            Some(relabeled_sink),
        );
        assert_eq!(
            plain.digest(),
            relabeled.digest(),
            "{kind:?}: probe ids leaked into scheduling decisions"
        );
        let plain_records = MemorySink::records(&plain_handle);
        let relabeled_records = MemorySink::records(&relabeled_handle);
        if let Some(diff) = first_trace_divergence(&plain_records, &relabeled_records) {
            panic!("{kind:?}: probe relabeling perturbed the record stream\n{diff}");
        }
    }
}
