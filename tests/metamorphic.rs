//! Metamorphic battery: transformations of a run that must not change the
//! observable outcome (or must change it in an exactly predictable way).
//!
//! Each test states a relation of the form "run(T(input)) == R(run(input))"
//! where T is a semantics-preserving transformation:
//!
//! * **Clock scaling at the reference clock** — enabling
//!   `scale_duration_by_clock` on a cluster whose machines all run at
//!   exactly `reference_clock_mhz` multiplies every duration by 1.0, so it
//!   must be byte-identical to leaving it off.
//! * **Uniform time shift** — translating every arrival by a constant T
//!   shifts every event timestamp by exactly T and changes nothing else.
//! * **Worker-ID permutation** — permuting the order machines are handed
//!   to the engine relabels worker indices. For *unconstrained* workloads
//!   (machine attributes behaviourally inert) the digest must be invariant
//!   for all five schedulers. For constrained workloads on heterogeneous
//!   clusters the digest is *expectedly* index-sensitive: placement draws
//!   worker indices from the seeded RNG, so permuting the index→machine
//!   mapping re-routes the same draws to different machines. That is a
//!   property of seeded sampling, not a scheduler asymmetry; the
//!   unconstrained case is exactly the one where symmetry is well-defined.
//! * **Probe relabeling** — probe ids are opaque labels; burning a block
//!   of ids before the run (shifting every id the policies ever see) must
//!   leave the run byte-identical.

use phoenix::prelude::*;
use phoenix::sim::{SimCtx, SimState, WorkerId};
use phoenix::traces::{Job, JobId, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALL_KINDS: [SchedulerKind; 5] = [
    SchedulerKind::Phoenix,
    SchedulerKind::EagleC,
    SchedulerKind::HawkC,
    SchedulerKind::SparrowC,
    SchedulerKind::YaqD,
];

const NODES: usize = 40;
const JOBS: usize = 150;
const UTIL: f64 = 0.7;
const SEED: u64 = 42;

fn yahoo_inputs() -> (Vec<AttributeVector>, Trace) {
    let profile = TraceProfile::yahoo();
    let mut rng = StdRng::seed_from_u64(1299);
    let cluster = MachinePopulation::generate(profile.population.clone(), NODES, &mut rng);
    let trace = TraceGenerator::new(profile, SEED).generate(JOBS, NODES, UTIL);
    (cluster.into_machines(), trace)
}

fn build_kind(kind: SchedulerKind) -> Box<dyn Scheduler> {
    let cutoff = TraceProfile::yahoo().short_cutoff_s();
    match kind {
        SchedulerKind::Phoenix => Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(cutoff))),
        SchedulerKind::EagleC => Box::new(EagleC::new(BaselineConfig::with_cutoff_s(cutoff))),
        SchedulerKind::HawkC => Box::new(HawkC::new(BaselineConfig::with_cutoff_s(cutoff))),
        SchedulerKind::SparrowC => Box::new(SparrowC::new(BaselineConfig::with_cutoff_s(cutoff))),
        SchedulerKind::YaqD => Box::new(YaqD::new(BaselineConfig::with_cutoff_s(cutoff))),
        other => panic!("not part of the metamorphic battery: {other:?}"),
    }
}

fn run_direct(
    config: SimConfig,
    machines: Vec<AttributeVector>,
    trace: &Trace,
    scheduler: Box<dyn Scheduler>,
    sink: Option<MemorySink>,
) -> SimResult {
    let mut sim = Simulation::new(
        config,
        FeasibilityIndex::new(machines),
        trace,
        scheduler,
        SEED,
    );
    if let Some(sink) = sink {
        sim.set_trace_sink(Box::new(sink));
    }
    sim.enable_audit(AuditConfig::default());
    let result = sim.run();
    let report = result.audit.as_ref().expect("audit enabled");
    assert!(report.is_clean(), "{}: {report}", result.scheduler);
    result
}

/// Rounds every arrival to an exact microsecond (the engine's resolution),
/// so a whole-second shift translates timestamps without re-rounding drift.
fn with_exact_arrivals(trace: &Trace, shift_s: f64) -> Trace {
    let jobs: Vec<Job> = trace
        .jobs()
        .iter()
        .map(|j| {
            let mut j = j.clone();
            j.arrival_s = (j.arrival_s * 1e6).round() / 1e6 + shift_s;
            j
        })
        .collect();
    Trace::new(trace.name().to_string(), jobs)
}

/// `scale_duration_by_clock` is the identity on a cluster running entirely
/// at the reference clock: same digest as leaving it off.
#[test]
fn clock_scaling_at_reference_clock_is_identity() {
    let (mut machines, trace) = yahoo_inputs();
    let reference_mhz = SimConfig::default().reference_clock_mhz;
    for m in &mut machines {
        m.cpu_clock_mhz = reference_mhz;
    }
    for kind in [SchedulerKind::Phoenix, SchedulerKind::EagleC] {
        let plain = run_direct(
            SimConfig::default(),
            machines.clone(),
            &trace,
            build_kind(kind),
            None,
        );
        let scaled_config = SimConfig {
            scale_duration_by_clock: true,
            ..SimConfig::default()
        };
        let scaled = run_direct(
            scaled_config,
            machines.clone(),
            &trace,
            build_kind(kind),
            None,
        );
        assert_eq!(
            plain.digest(),
            scaled.digest(),
            "{kind:?}: scaling by a 1.0 clock factor must be a no-op"
        );
    }
}

/// Shifting every arrival by a constant translates the whole run: same
/// counters, same busy time, same record stream with every timestamp moved
/// by exactly the shift, and a makespan larger by exactly the shift.
#[test]
fn uniform_time_shift_translates_the_run_exactly() {
    const SHIFT_S: f64 = 10.0;
    const SHIFT_US: u64 = 10_000_000;
    let (machines, raw_trace) = yahoo_inputs();
    let base_trace = with_exact_arrivals(&raw_trace, 0.0);
    let shifted_trace = with_exact_arrivals(&raw_trace, SHIFT_S);

    let base_sink = MemorySink::new(1 << 16);
    let base_handle = base_sink.handle();
    let base = run_direct(
        SimConfig::default(),
        machines.clone(),
        &base_trace,
        build_kind(SchedulerKind::Phoenix),
        Some(base_sink),
    );
    let shifted_sink = MemorySink::new(1 << 16);
    let shifted_handle = shifted_sink.handle();
    let shifted = run_direct(
        SimConfig::default(),
        machines,
        &shifted_trace,
        build_kind(SchedulerKind::Phoenix),
        Some(shifted_sink),
    );

    assert_eq!(base.counters, shifted.counters);
    assert_eq!(base.metrics.busy_us, shifted.metrics.busy_us);
    assert_eq!(
        base.metrics.makespan.as_micros() + SHIFT_US,
        shifted.metrics.makespan.as_micros(),
        "makespan must shift by exactly the arrival shift"
    );

    let base_records = MemorySink::records(&base_handle);
    let shifted_records = MemorySink::records(&shifted_handle);
    assert_eq!(base_records.len(), shifted_records.len());
    for (i, (a, b)) in base_records.iter().zip(&shifted_records).enumerate() {
        assert_eq!(
            a.kind_name(),
            b.kind_name(),
            "record {i} changed kind under a pure time shift"
        );
        assert_eq!(
            a.at_us() + SHIFT_US,
            b.at_us(),
            "record {i} ({}) did not shift by exactly {SHIFT_US} µs",
            a.kind_name()
        );
    }
}

/// For unconstrained workloads, permuting the order machines are handed to
/// the engine must not change any scheduler's result: worker indices are
/// then pure labels (no feasibility, no clock scaling), and all five
/// policies must treat them symmetrically.
#[test]
fn worker_permutation_leaves_unconstrained_runs_invariant() {
    let (machines, raw_trace) = yahoo_inputs();
    let jobs: Vec<Job> = raw_trace
        .jobs()
        .iter()
        .map(|j| {
            let mut j = j.clone();
            j.constraints = ConstraintSet::unconstrained();
            j
        })
        .collect();
    let trace = Trace::new(raw_trace.name().to_string(), jobs);

    let mut permuted = machines.clone();
    permuted.reverse();
    permuted.rotate_left(NODES / 3);

    for kind in ALL_KINDS {
        let original = run_direct(
            SimConfig::default(),
            machines.clone(),
            &trace,
            build_kind(kind),
            None,
        );
        let relabeled = run_direct(
            SimConfig::default(),
            permuted.clone(),
            &trace,
            build_kind(kind),
            None,
        );
        assert_eq!(
            original.digest(),
            relabeled.digest(),
            "{kind:?}: permuting worker creation order changed an unconstrained run"
        );
    }
}

/// Delegating wrapper that burns a block of probe ids before the first
/// placement, shifting every probe id its inner policy ever sees.
struct ProbeRelabeler {
    inner: Box<dyn Scheduler>,
    burn: u64,
}

impl Scheduler for ProbeRelabeler {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        while self.burn > 0 {
            // `new_probe` only advances the id counter: no RNG, no metrics.
            let _ = ctx.new_probe(job);
            self.burn -= 1;
        }
        self.inner.on_job_arrival(job, ctx);
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        self.inner.on_probe_enqueued(worker, ctx);
    }

    fn select_probe(&mut self, worker: WorkerId, state: &SimState) -> Option<usize> {
        self.inner.select_probe(worker, state)
    }

    fn on_task_finish(
        &mut self,
        worker: WorkerId,
        job: JobId,
        duration_us: u64,
        ctx: &mut SimCtx<'_>,
    ) {
        self.inner.on_task_finish(worker, job, duration_us, ctx);
    }

    fn on_job_complete(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        self.inner.on_job_complete(job, ctx);
    }

    fn on_wakeup(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        self.inner.on_wakeup(token, ctx);
    }

    fn on_probe_retry(&mut self, probe: phoenix::sim::Probe, ctx: &mut SimCtx<'_>) {
        self.inner.on_probe_retry(probe, ctx);
    }

    fn on_worker_crash(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        self.inner.on_worker_crash(worker, ctx);
    }

    fn on_worker_recover(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        self.inner.on_worker_recover(worker, ctx);
    }
}

/// Probe ids are opaque labels: offsetting every id by a large constant
/// (by burning a block of ids up front) leaves every scheduler's run — the
/// full record stream included — byte-identical.
#[test]
fn probe_relabeling_is_invisible() {
    for kind in ALL_KINDS {
        let (machines, trace) = yahoo_inputs();
        let plain_sink = MemorySink::new(1 << 16);
        let plain_handle = plain_sink.handle();
        let plain = run_direct(
            SimConfig::default(),
            machines.clone(),
            &trace,
            build_kind(kind),
            Some(plain_sink),
        );
        let relabeled_sink = MemorySink::new(1 << 16);
        let relabeled_handle = relabeled_sink.handle();
        let relabeled = run_direct(
            SimConfig::default(),
            machines,
            &trace,
            Box::new(ProbeRelabeler {
                inner: build_kind(kind),
                burn: 100_000,
            }),
            Some(relabeled_sink),
        );
        assert_eq!(
            plain.digest(),
            relabeled.digest(),
            "{kind:?}: probe ids leaked into scheduling decisions"
        );
        let plain_records = MemorySink::records(&plain_handle);
        let relabeled_records = MemorySink::records(&relabeled_handle);
        if let Some(diff) = first_trace_divergence(&plain_records, &relabeled_records) {
            panic!("{kind:?}: probe relabeling perturbed the record stream\n{diff}");
        }
    }
}
