//! Chaos liveness: every scheduler survives fault injection without losing
//! work, and faulty runs stay fully deterministic in their seed.
//!
//! This is the end-to-end contract of the fault-injection layer: crashes
//! kill tasks and drop queued probes, probes are lost and delayed in
//! flight, wakeups jitter — and still every task of every non-failed job
//! eventually completes (`lost_tasks == 0`), because each casualty re-enters
//! placement through the retry path and recoveries restore supply.
//!
//! The CI chaos job runs exactly this battery in release mode.

use phoenix::prelude::*;

const ALL_KINDS: [SchedulerKind; 5] = [
    SchedulerKind::Phoenix,
    SchedulerKind::EagleC,
    SchedulerKind::HawkC,
    SchedulerKind::SparrowC,
    SchedulerKind::YaqD,
];

fn spec(kind: SchedulerKind, seed: u64, faults: FaultPlan) -> RunSpec {
    let mut spec = RunSpec::new(TraceProfile::yahoo(), kind);
    spec.nodes = 60;
    spec.gen_nodes = 60;
    spec.jobs = 200;
    spec.gen_util = 0.7;
    spec.seed = seed;
    spec.record_task_waits = false;
    spec.faults = faults;
    // Debug builds run the chaos battery under the invariant auditor;
    // `assert_alive` checks the report (see golden_traces.rs for the
    // fault-free audited matrix).
    spec.audit = cfg!(debug_assertions);
    spec
}

fn assert_alive(kind: SchedulerKind, seed: u64, profile_name: &str, r: &SimResult) {
    let tag = format!("{} seed={seed} faults={profile_name}", kind.name());
    assert_eq!(r.incomplete_jobs, 0, "{tag}: every job must finish");
    assert_eq!(r.lost_tasks, 0, "{tag}: no task may be lost");
    assert_eq!(
        r.counters.jobs_completed + r.counters.jobs_failed,
        200,
        "{tag}: job conservation"
    );
    assert!(
        r.counters.worker_crashes > 0,
        "{tag}: fault injection must actually fire"
    );
    assert_eq!(
        r.counters.worker_crashes, r.counters.worker_recoveries,
        "{tag}: every crashed worker must recover (no outstanding work left)"
    );
    if let Some(report) = &r.audit {
        assert!(
            report.is_clean(),
            "{tag}: invariant violations under audit:\n{report}"
        );
    }
}

#[test]
fn reference_faults_lose_no_tasks_on_any_scheduler() {
    for kind in ALL_KINDS {
        for seed in [1u64, 2, 3] {
            let r = run_spec(&spec(kind, seed, FaultPlan::reference()));
            assert_alive(kind, seed, "reference", &r);
        }
    }
}

#[test]
fn heavy_faults_lose_no_tasks_on_any_scheduler() {
    for kind in ALL_KINDS {
        for seed in [1u64, 2, 3] {
            let r = run_spec(&spec(kind, seed, FaultPlan::heavy()));
            assert_alive(kind, seed, "heavy", &r);
            // The heavy profile exercises every fault mechanism.
            assert!(
                r.counters.tasks_killed > 0,
                "{} seed={seed}: crashes must kill running tasks",
                kind.name()
            );
            assert!(
                r.counters.probes_lost > 0,
                "{} seed={seed}: probe loss must fire",
                kind.name()
            );
            assert!(
                r.counters.probe_retries > 0,
                "{} seed={seed}: casualties must be retried",
                kind.name()
            );
        }
    }
}

#[test]
fn chaos_runs_are_deterministic_in_their_seed() {
    for kind in ALL_KINDS {
        let s = spec(kind, 7, FaultPlan::reference());
        let a = run_spec(&s);
        let b = run_spec(&s);
        assert_eq!(
            a.digest(),
            b.digest(),
            "{}: same seed, same faults => byte-identical result",
            kind.name()
        );
    }
}

#[test]
fn chaos_determinism_survives_parallel_execution() {
    let specs: Vec<RunSpec> = (1u64..=3)
        .map(|seed| spec(SchedulerKind::Phoenix, seed, FaultPlan::heavy()))
        .collect();
    let parallel = run_many(&specs);
    for (s, got) in specs.iter().zip(&parallel) {
        let sequential = run_spec(s);
        assert_eq!(
            sequential.digest(),
            got.digest(),
            "seed {}: thread interleaving must not leak into results",
            s.seed
        );
    }
}

#[test]
fn killed_work_is_requeued_not_duplicated() {
    // Task conservation under chaos: every completed task was placed
    // exactly once "successfully"; retries and kills only add placements,
    // never completions.
    let r = run_spec(&spec(SchedulerKind::Phoenix, 11, FaultPlan::heavy()));
    let c = &r.counters;
    assert!(c.tasks_killed > 0, "chaos must kill something");
    // Each killed/lost placement is compensated by at least one retry or
    // requeue; completions can never exceed total placement attempts.
    assert!(
        c.tasks_completed <= c.probes_sent + c.bound_placements + c.sbp_continuations,
        "{c:?}"
    );
    assert!(
        c.probe_retries + c.requeued_tasks >= c.tasks_killed,
        "every killed task must re-enter placement: {c:?}"
    );
}
