//! End-to-end integration tests spanning every crate: trace synthesis →
//! cluster generation → simulation under each scheduler → metric checks.

use phoenix::prelude::*;

fn spec(profile: TraceProfile, kind: SchedulerKind, util: f64, seed: u64) -> RunSpec {
    let nodes = (profile.default_nodes / 25).max(60);
    let mut spec = RunSpec::new(profile, kind);
    spec.nodes = nodes;
    spec.gen_nodes = nodes;
    spec.gen_util = util;
    spec.jobs = 2_000;
    spec.seed = seed;
    spec.record_task_waits = false;
    spec
}

const ALL_KINDS: [SchedulerKind; 5] = [
    SchedulerKind::Phoenix,
    SchedulerKind::EagleC,
    SchedulerKind::HawkC,
    SchedulerKind::SparrowC,
    SchedulerKind::YaqD,
];

#[test]
fn every_scheduler_completes_every_trace() {
    for profile in TraceProfile::all() {
        for kind in ALL_KINDS {
            let result = run_spec(&spec(profile.clone(), kind, 0.7, 1));
            assert_eq!(
                result.incomplete_jobs,
                0,
                "{} on {}",
                kind.name(),
                profile.name
            );
            assert_eq!(
                result.counters.jobs_completed + result.counters.jobs_failed,
                2_000,
                "{} on {}",
                kind.name(),
                profile.name
            );
        }
    }
}

#[test]
fn probe_conservation_holds_for_every_scheduler() {
    for kind in ALL_KINDS {
        let result = run_spec(&spec(TraceProfile::google(), kind, 0.85, 3));
        let c = result.counters;
        // Every speculative probe (network or SBP continuation) either
        // launched a task or died redundant; every bound placement launched
        // exactly one task.
        assert_eq!(
            c.probes_sent + c.bound_placements + c.sbp_continuations,
            c.tasks_completed + c.redundant_probes,
            "{}: {c:?}",
            kind.name()
        );
    }
}

#[test]
fn runs_are_deterministic_across_parallel_and_sequential_execution() {
    let specs: Vec<RunSpec> = (1..=3)
        .map(|s| spec(TraceProfile::yahoo(), SchedulerKind::Phoenix, 0.8, s))
        .collect();
    let parallel = run_many(&specs);
    for (s, got) in specs.iter().zip(&parallel) {
        let again = run_spec(s);
        assert_eq!(again.counters, got.counters, "seed {}", s.seed);
        assert_eq!(
            again.metrics.makespan, got.metrics.makespan,
            "seed {}",
            s.seed
        );
    }
}

#[test]
fn phoenix_beats_distributed_baselines_on_short_tails_under_load() {
    // The paper's headline orderings at high utilization. One seed at
    // small scale is noisy, so compare against generous slack: Phoenix
    // must clearly beat Hawk-C, Sparrow-C and Yaq-d.
    let phoenix = run_spec(&spec(
        TraceProfile::google(),
        SchedulerKind::Phoenix,
        0.9,
        5,
    ));
    let hawk = run_spec(&spec(TraceProfile::google(), SchedulerKind::HawkC, 0.9, 5));
    let sparrow = run_spec(&spec(
        TraceProfile::google(),
        SchedulerKind::SparrowC,
        0.9,
        5,
    ));
    let yaqd = run_spec(&spec(TraceProfile::google(), SchedulerKind::YaqD, 0.9, 5));
    let p99 = |r: &SimResult| r.class_response_percentile(JobClass::Short, 99.0);
    assert!(
        p99(&phoenix) * 1.3 < p99(&hawk),
        "phoenix {} vs hawk {}",
        p99(&phoenix),
        p99(&hawk)
    );
    assert!(
        p99(&phoenix) * 1.3 < p99(&sparrow),
        "phoenix {} vs sparrow {}",
        p99(&phoenix),
        p99(&sparrow)
    );
    assert!(
        p99(&phoenix) * 1.3 < p99(&yaqd),
        "phoenix {} vs yaq-d {}",
        p99(&phoenix),
        p99(&yaqd)
    );
}

#[test]
fn phoenix_does_not_lose_to_eagle_and_spares_long_jobs() {
    // At this reduced test scale the Phoenix/Eagle gap is noisy per seed;
    // compare seed-averaged tails (the paper averages five runs) and keep
    // a generous per-seed no-catastrophe bound.
    let mut phoenix_sum = 0.0;
    let mut eagle_sum = 0.0;
    for seed in 1..=3 {
        let phoenix = run_spec(&spec(
            TraceProfile::google(),
            SchedulerKind::Phoenix,
            0.9,
            seed,
        ));
        let eagle = run_spec(&spec(
            TraceProfile::google(),
            SchedulerKind::EagleC,
            0.9,
            seed,
        ));
        let pp = phoenix.class_response_percentile(JobClass::Short, 99.0);
        let ep = eagle.class_response_percentile(JobClass::Short, 99.0);
        phoenix_sum += pp;
        eagle_sum += ep;
        assert!(
            pp <= ep * 1.25,
            "seed {seed}: phoenix short p99 {pp} must not clearly lose to eagle {ep}"
        );
        // Fig. 8: long jobs unaffected.
        let pl = phoenix.class_response_percentile(JobClass::Long, 90.0);
        let el = eagle.class_response_percentile(JobClass::Long, 90.0);
        assert!(
            pl <= el * 1.2,
            "seed {seed}: phoenix long p90 {pl} vs eagle {el}"
        );
    }
    assert!(
        phoenix_sum <= eagle_sum * 1.05,
        "seed-averaged phoenix p99 {phoenix_sum} must not lose to eagle {eagle_sum}"
    );
}

#[test]
fn constrained_jobs_suffer_under_eagle_the_figure_2_premise() {
    let eagle = run_spec(&spec(TraceProfile::google(), SchedulerKind::EagleC, 0.9, 9));
    let constrained = eagle.response_percentile(
        LatencyKey::new(JobClass::Short, ConstraintStatus::Constrained),
        90.0,
    );
    let unconstrained = eagle.response_percentile(
        LatencyKey::new(JobClass::Short, ConstraintStatus::Unconstrained),
        90.0,
    );
    assert!(
        constrained > unconstrained,
        "constrained short jobs must be slower: {constrained} vs {unconstrained}"
    );
}

#[test]
fn utilization_scales_down_with_cluster_size() {
    // Fixed workload, growing cluster: measured utilization must fall.
    let base = spec(TraceProfile::yahoo(), SchedulerKind::EagleC, 0.9, 11);
    let small = run_spec(&base);
    let big = run_spec(&base.clone().with_nodes(base.nodes * 2));
    assert!(
        big.utilization() < small.utilization(),
        "{} !< {}",
        big.utilization(),
        small.utilization()
    );
}

#[test]
fn job_outcomes_match_aggregate_metrics() {
    let result = run_spec(&spec(
        TraceProfile::cloudera(),
        SchedulerKind::Phoenix,
        0.7,
        13,
    ));
    assert_eq!(result.job_outcomes.len(), 2_000);
    let completed = result
        .job_outcomes
        .iter()
        .filter(|o| o.response_s.is_some())
        .count() as u64;
    assert_eq!(completed, result.counters.jobs_completed);
    let failed = result.job_outcomes.iter().filter(|o| o.failed).count() as u64;
    assert_eq!(failed, result.counters.jobs_failed);
}
