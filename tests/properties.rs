//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;

use phoenix::constraints::{
    feasible_fraction, Constraint, ConstraintClass, ConstraintKind, ConstraintOp, ConstraintSet,
    MachinePopulation, PopulationProfile,
};
use phoenix::metrics::Distribution;
use phoenix::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_kind() -> impl Strategy<Value = ConstraintKind> {
    prop::sample::select(ConstraintKind::ALL.to_vec())
}

fn arb_op() -> impl Strategy<Value = ConstraintOp> {
    prop::sample::select(vec![ConstraintOp::Lt, ConstraintOp::Gt, ConstraintOp::Eq])
}

fn arb_class() -> impl Strategy<Value = ConstraintClass> {
    prop::sample::select(vec![ConstraintClass::Hard, ConstraintClass::Soft])
}

prop_compose! {
    fn arb_constraint()(
        kind in arb_kind(),
        op in arb_op(),
        value in 0u64..5_000,
        class in arb_class(),
    ) -> Constraint {
        Constraint::new(kind, op, value, class)
    }
}

fn arb_set() -> impl Strategy<Value = ConstraintSet> {
    prop::collection::vec(arb_constraint(), 0..6).prop_map(ConstraintSet::from_constraints)
}

fn reference_machines() -> Vec<phoenix::constraints::AttributeVector> {
    let mut rng = StdRng::seed_from_u64(1234);
    MachinePopulation::generate(PopulationProfile::google_like(), 300, &mut rng).into_machines()
}

proptest! {
    /// Removing constraints can only widen the feasible set.
    #[test]
    fn relaxation_is_monotone(set in arb_set()) {
        let machines = reference_machines();
        let full = feasible_fraction(&machines, &set);
        let hard = feasible_fraction(&machines, &set.hard_only());
        prop_assert!(hard >= full, "hard-only {hard} < full {full}");
        let mut i = 0;
        while let Some(relaxed) = set.relax_soft(i) {
            let f = feasible_fraction(&machines, &relaxed);
            prop_assert!(f >= full, "relaxed {f} < full {full}");
            i += 1;
            if i > 8 { break; }
        }
    }

    /// A set is satisfied exactly when every constraint is satisfied.
    #[test]
    fn satisfaction_is_conjunction(set in arb_set(), machine_idx in 0usize..300) {
        let machines = reference_machines();
        let m = &machines[machine_idx];
        let expected = set.iter().all(|c| c.satisfied_by(m));
        prop_assert_eq!(set.satisfied_by(m), expected);
    }

    /// Set equality ignores insertion order.
    #[test]
    fn set_equality_is_order_insensitive(cs in prop::collection::vec(arb_constraint(), 0..6)) {
        let forward = ConstraintSet::from_constraints(cs.clone());
        let mut reversed = cs;
        reversed.reverse();
        prop_assert_eq!(forward, ConstraintSet::from_constraints(reversed));
    }

    /// Percentiles are monotone in `p` and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(samples in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut d = Distribution::from_samples(samples.clone());
        let ps = [0.0, 10.0, 50.0, 90.0, 99.0, 100.0];
        let values: Vec<f64> = ps.iter().map(|&p| d.percentile(p)).collect();
        for w in values.windows(2) {
            prop_assert!(w[1] >= w[0], "{values:?}");
        }
        prop_assert_eq!(values[0], d.min());
        prop_assert_eq!(values[ps.len() - 1], d.max());
    }

    /// Merging distributions preserves the sample count and the extrema.
    #[test]
    fn distribution_merge_preserves_counts(
        a in prop::collection::vec(0.0f64..1e6, 0..100),
        b in prop::collection::vec(0.0f64..1e6, 0..100),
    ) {
        let mut merged = Distribution::from_samples(a.clone());
        merged.merge(&Distribution::from_samples(b.clone()));
        prop_assert_eq!(merged.len(), a.len() + b.len());
        let expected_max = a.iter().chain(&b).fold(0.0f64, |m, &x| m.max(x));
        if !merged.is_empty() {
            prop_assert!((merged.max() - expected_max).abs() < 1e-9);
        }
    }

    /// The trace generator respects job counts, classification and
    /// ordering for arbitrary small parameters.
    #[test]
    fn generated_traces_are_well_formed(
        jobs in 1usize..120,
        nodes in 5usize..80,
        util in 0.2f64..0.95,
        seed in 0u64..500,
    ) {
        let profile = TraceProfile::yahoo();
        let cutoff = profile.short_cutoff_s();
        let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
        prop_assert_eq!(trace.len(), jobs);
        let mut last = f64::NEG_INFINITY;
        for job in &trace {
            prop_assert!(job.arrival_s >= last, "arrivals sorted");
            last = job.arrival_s;
            prop_assert!(job.num_tasks() >= 1);
            prop_assert_eq!(job.estimated_task_duration_s <= cutoff, job.short);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full pipeline terminates with conservation for random small
    /// workloads and any scheduler.
    #[test]
    fn simulation_conserves_tasks(
        seed in 0u64..64,
        util in 0.3f64..0.95,
        kind_idx in 0usize..5,
    ) {
        let kinds = [
            SchedulerKind::Phoenix,
            SchedulerKind::EagleC,
            SchedulerKind::HawkC,
            SchedulerKind::SparrowC,
            SchedulerKind::YaqD,
        ];
        let mut spec = RunSpec::new(TraceProfile::yahoo(), kinds[kind_idx]);
        spec.nodes = 60;
        spec.gen_nodes = 60;
        spec.gen_util = util;
        spec.jobs = 150;
        spec.seed = seed;
        spec.record_task_waits = false;
        let result = run_spec(&spec);
        prop_assert_eq!(result.incomplete_jobs, 0);
        let c = result.counters;
        prop_assert_eq!(
            c.probes_sent + c.bound_placements + c.sbp_continuations,
            c.tasks_completed + c.redundant_probes
        );
    }
}
