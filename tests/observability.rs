//! Integration tests for the observability layer: the tracing and
//! profiling hooks must be zero-cost no-ops when disabled (byte-identical
//! digests), and when enabled must surface the run's decision points as
//! structured records without perturbing the simulation.

use phoenix::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// The golden-trace spec (Phoenix, yahoo profile, seed 42): small enough
/// for a test, contended enough that reorders, insertions, suppressions,
/// steals and migrations all fire (see `tests/golden/phoenix.json`).
fn phoenix_spec() -> RunSpec {
    let mut spec = RunSpec::new(TraceProfile::yahoo(), SchedulerKind::Phoenix);
    spec.nodes = 60;
    spec.gen_nodes = 60;
    spec.jobs = 200;
    spec.gen_util = 0.7;
    spec.seed = 42;
    spec.record_task_waits = false;
    spec
}

fn temp_trace_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "phoenix-observability-{tag}-{}.jsonl",
        std::process::id()
    ))
}

/// The acceptance property of the whole layer: attaching a trace sink
/// and/or the hot-path profiler changes nothing about the simulated run.
#[test]
fn tracing_and_profiling_leave_the_digest_untouched() {
    let baseline = run_spec(&phoenix_spec());

    let path = temp_trace_path("parity");
    let traced = run_spec(&phoenix_spec().with_trace_out(&path));
    assert_eq!(
        baseline.digest(),
        traced.digest(),
        "attaching a JSONL trace sink must not perturb the run"
    );
    std::fs::remove_file(&path).ok();

    let profiled = run_spec(&phoenix_spec().with_profiling());
    assert_eq!(
        baseline.digest(),
        profiled.digest(),
        "wall-clock profiling must not perturb the run"
    );
    assert!(baseline.profile.is_none(), "profile is opt-in");
    assert!(profiled.profile.is_some(), "profiling was requested");
}

/// The invariant auditor follows the same contract: it observes every
/// event but perturbs nothing, so an audited run is byte-identical to the
/// plain run — and on this pinned spec it must also find nothing.
#[test]
fn auditing_leaves_the_digest_untouched() {
    let mut plain_spec = phoenix_spec();
    plain_spec.audit = false;
    let baseline = run_spec(&plain_spec);
    assert!(baseline.audit.is_none(), "auditing is opt-in");

    let audited = run_spec(&plain_spec.clone().with_audit());
    assert_eq!(
        baseline.digest(),
        audited.digest(),
        "auditing must not perturb the run"
    );
    let report = audited.audit.as_ref().expect("auditing was requested");
    assert!(report.is_clean(), "{report}");
    assert!(report.events_audited > 0, "the auditor saw every event");
    assert!(
        report.placements_checked > 0 && report.ledger_checks > 0,
        "placement and ledger checks ran: {report}"
    );

    // Auditing composes with tracing: the tee keeps feeding the user's
    // sink while the auditor watches the same stream.
    let path = temp_trace_path("audit-tee");
    let both = run_spec(&plain_spec.clone().with_trace_out(&path).with_audit());
    assert_eq!(baseline.digest(), both.digest());
    let body = std::fs::read_to_string(&path).expect("trace file written through the tee");
    std::fs::remove_file(&path).ok();
    assert!(!body.is_empty(), "tee starved the user's sink");
}

/// `--trace-out` output is line-parseable JSONL and covers every record
/// family the contended Phoenix run exercises, with placement records in
/// exact correspondence with the probe counters.
#[test]
fn trace_out_emits_line_parseable_jsonl_with_all_record_families() {
    let path = temp_trace_path("records");
    let result = run_spec(&phoenix_spec().with_trace_out(&path));
    let body = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();

    let mut counts = std::collections::BTreeMap::new();
    let mut last_heartbeat = None;
    for line in body.lines() {
        assert!(
            line.starts_with("{\"type\":\"") && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
        assert!(
            line.contains("\"at_us\":"),
            "record lacks timestamp: {line}"
        );
        let ty = line["{\"type\":\"".len()..]
            .split('"')
            .next()
            .expect("type tag")
            .to_string();
        if ty == "heartbeat" {
            last_heartbeat = Some(line.to_string());
        }
        *counts.entry(ty).or_insert(0u64) += 1;
    }

    // Placement records correspond one-to-one with counted probe sends.
    let c = &result.counters;
    assert_eq!(
        counts.get("placement").copied().unwrap_or(0),
        c.probes_sent + c.bound_placements,
        "one placement record per probe/bound send"
    );
    // The contended golden spec fires every other family too.
    for family in [
        "reorder",
        "insertion",
        "suppression",
        "steal",
        "migration",
        "heartbeat",
    ] {
        assert!(
            counts.get(family).copied().unwrap_or(0) > 0,
            "expected at least one {family:?} record; got {counts:?}"
        );
    }

    // Heartbeat snapshots carry the monitor's view: per-kind CRV demand
    // and supply, per-worker load, and the queue-length histogram.
    let hb = last_heartbeat.expect("heartbeat record present");
    for field in [
        "\"crv_mode\":",
        "\"crv\":[",
        "\"workers\":[",
        "\"queue_histogram\":[",
    ] {
        assert!(hb.contains(field), "heartbeat lacks {field}: {hb}");
    }
    assert!(
        hb.contains("\"rho\":") && hb.contains("\"expected_wait_us\":"),
        "heartbeat worker loads carry rho and E[W]: {hb}"
    );
}

/// The in-memory ring sink captures records from a directly-driven
/// simulation and respects its capacity bound.
#[test]
fn memory_sink_captures_records_within_capacity() {
    let profile = TraceProfile::yahoo();
    let mut rng = StdRng::seed_from_u64(11);
    let cluster = MachinePopulation::generate(profile.population.clone(), 20, &mut rng);
    let trace = TraceGenerator::new(profile.clone(), 11).generate(50, 20, 0.7);

    let sink = MemorySink::new(64);
    let handle = sink.handle();
    let mut sim = Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &trace,
        Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(
            profile.short_cutoff_s(),
        ))),
        11,
    );
    sim.set_trace_sink(Box::new(sink));
    let result = sim.run();
    assert_eq!(result.incomplete_jobs, 0);

    let records = MemorySink::records(&handle);
    assert!(!records.is_empty(), "a busy run must emit records");
    assert!(records.len() <= 64, "ring respects its capacity");
    let mut prev = 0;
    for r in &records {
        assert!(r.at_us() >= prev, "records arrive in simulated-time order");
        prev = r.at_us();
        assert!(!r.kind_name().is_empty());
    }
}

/// The profiling report covers the engine hot paths the run exercised.
#[test]
fn profile_report_covers_exercised_hot_paths() {
    let result = run_spec(&phoenix_spec().with_profiling());
    let report = result.profile.as_ref().expect("profiling enabled");
    let dispatch = report.scope(ProfileScope::Dispatch);
    assert!(dispatch.calls > 0, "dispatch runs on every busy worker");
    let refresh = report.scope(ProfileScope::HeartbeatRefresh);
    assert!(refresh.calls > 0, "phoenix refreshes the CRV monitor");
    let steal = report.scope(ProfileScope::Steal);
    assert!(steal.calls > 0, "eagle-style stealing is on in phoenix");
    let rendered = report.to_string();
    for scope in ProfileScope::ALL {
        assert!(
            rendered.contains(scope.name()),
            "table lists {}",
            scope.name()
        );
    }
}
