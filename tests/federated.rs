//! Federated-engine acceptance tests.
//!
//! The load-bearing contract is the K=1 parity rule: a single-domain
//! federation with zero staleness must be **byte-identical** to the
//! centralized engine — same digest *and* the same event trace, for every
//! golden scheduler and seed. On top of that, partitioned runs (K > 1)
//! must stay fully deterministic in their seed, and federation must not
//! cost liveness: chaos runs with domains enabled still finish every task.
//!
//! The utilization regression rides along here because it needs the same
//! fault machinery: crashed-worker downtime must no longer be counted as
//! available capacity.

use phoenix::prelude::*;

const GOLDEN_KINDS: [SchedulerKind; 5] = [
    SchedulerKind::Phoenix,
    SchedulerKind::EagleC,
    SchedulerKind::HawkC,
    SchedulerKind::SparrowC,
    SchedulerKind::YaqD,
];

const SEEDS: [u64; 3] = [42, 7, 3];

fn spec(kind: SchedulerKind, seed: u64) -> RunSpec {
    let mut spec = RunSpec::new(TraceProfile::yahoo(), kind);
    spec.nodes = 60;
    spec.gen_nodes = 60;
    spec.jobs = 200;
    spec.gen_util = 0.7;
    spec.seed = seed;
    spec.record_task_waits = false;
    spec
}

/// Runs a spec with a memory trace sink attached, returning the result and
/// the captured event records.
fn run_traced(spec: &RunSpec) -> (SimResult, Vec<TraceRecord>) {
    use phoenix::constraints::{FeasibilityIndex, MachinePopulation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Mirrors `run_spec_timed`'s generation pipeline; both sides of a
    // parity comparison go through this one helper, so only the
    // federation config differs.
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
    let cluster =
        MachinePopulation::generate(spec.profile.population.clone(), spec.nodes, &mut rng);
    let trace = TraceGenerator::new(spec.profile.clone(), spec.gen_seed.unwrap_or(spec.seed))
        .generate(spec.jobs, spec.gen_nodes, spec.gen_util);
    let config = SimConfig {
        record_task_waits: spec.record_task_waits,
        faults: spec.faults,
        federation: spec.federation,
        ..SimConfig::default()
    };
    let index = FeasibilityIndex::new(cluster.into_machines());
    let cutoff = spec.profile.short_cutoff_s();
    let mut sim = Simulation::new(
        config,
        index,
        &trace,
        spec.scheduler.build(cutoff),
        spec.seed,
    );
    let sink = MemorySink::new(1 << 16);
    let handle = sink.handle();
    sim.set_trace_sink(Box::new(sink));
    let result = sim.run();
    (result, MemorySink::records(&handle))
}

/// The parity anchor: K=1 / staleness=0 federation is the centralized
/// engine bit for bit — digest and full event trace — across every golden
/// scheduler and seed.
#[test]
fn k1_zero_staleness_matches_centralized_exactly() {
    for kind in GOLDEN_KINDS {
        for seed in SEEDS {
            let base = spec(kind, seed);
            let federated = base
                .clone()
                .with_federation(FederationConfig::sharded(1, SimDuration::ZERO));
            let (central, central_records) = run_traced(&base);
            let (fed, fed_records) = run_traced(&federated);
            let tag = format!("{} seed={seed}", kind.name());
            if let Some(diff) = first_trace_divergence(&fed_records, &central_records) {
                panic!("{tag}: K=1 federation diverged from centralized run\n{diff}");
            }
            assert_eq!(fed.digest(), central.digest(), "{tag}: digest parity");
            // The single-domain bookkeeping ran (stats surface exists) but
            // never steered placement.
            let stats = fed.federation.expect("federation stats at K=1");
            assert_eq!(stats.gossip_rounds, 0, "{tag}: no gossip at K=1");
            assert_eq!(stats.remote_samples, 0, "{tag}");
            assert_eq!(stats.cluster_fallbacks, 0, "{tag}");
            assert!(central.federation.is_none(), "{tag}: off means off");
        }
    }
}

/// Partitioned runs are fully deterministic in their seed: two identical
/// K=4 invocations agree on the digest and the whole event trace, and the
/// gossip plane actually ran.
#[test]
fn partitioned_runs_replay_byte_identically() {
    for staleness in [SimDuration::ZERO, SimDuration::from_millis(200)] {
        let federated = spec(SchedulerKind::Phoenix, 42)
            .with_federation(FederationConfig::sharded(4, staleness));
        let (a, a_records) = run_traced(&federated);
        let (b, b_records) = run_traced(&federated);
        let tag = format!("K=4 staleness={}us", staleness.as_micros());
        if let Some(diff) = first_trace_divergence(&a_records, &b_records) {
            panic!("{tag}: same spec diverged across runs\n{diff}");
        }
        assert_eq!(a.digest(), b.digest(), "{tag}: digest reproducibility");
        assert_eq!(a.incomplete_jobs, 0, "{tag}: every job must finish");
        assert_eq!(a.lost_tasks, 0, "{tag}: no task may be lost");
        let stats = a.federation.expect("federation stats at K=4");
        assert!(stats.gossip_rounds > 0, "{tag}: gossip must fire");
        assert!(stats.home_samples > 0, "{tag}: home domain must serve");
        if staleness > SimDuration::ZERO {
            assert!(
                stats.batches_delivered > 0,
                "{tag}: delayed batches must deliver"
            );
        }
    }
}

/// Federation does not cost liveness under chaos: with domains enabled and
/// heavy fault injection, every task of every non-failed job still
/// completes, and crashed supply leaves the books (stats stay coherent).
#[test]
fn federated_chaos_loses_nothing() {
    for kind in GOLDEN_KINDS {
        for (k, faults) in [(4usize, FaultPlan::reference()), (16, FaultPlan::heavy())] {
            let s = spec(kind, 7)
                .with_faults(faults)
                .with_federation(FederationConfig::sharded(k, SimDuration::from_millis(200)));
            let r = run_spec(&s);
            let tag = format!("{} K={k}", kind.name());
            assert_eq!(r.incomplete_jobs, 0, "{tag}: every job must finish");
            assert_eq!(r.lost_tasks, 0, "{tag}: no task may be lost");
            assert!(
                r.counters.worker_crashes > 0,
                "{tag}: fault injection must actually fire"
            );
            assert_eq!(
                r.counters.worker_crashes, r.counters.worker_recoveries,
                "{tag}: every crashed worker must recover"
            );
        }
    }
}

/// The utilization bugfix, stated as a regression: under heavy faults the
/// corrected utilization (busy over *available* capacity) is strictly
/// above the uncorrected formula that counted crash downtime as available,
/// and still never exceeds 1. Digest-neutrality is pinned by the golden
/// fault snapshots, which predate the fix.
#[test]
fn utilization_excludes_crash_downtime_under_heavy_faults() {
    for seed in SEEDS {
        let r = run_spec(&spec(SchedulerKind::Phoenix, seed).with_faults(FaultPlan::heavy()));
        assert!(r.counters.worker_crashes > 0, "seed {seed}: faults fired");
        assert!(r.downtime_us > 0, "seed {seed}: downtime must be tracked");
        let capacity =
            r.metrics.makespan.as_micros() * r.workers as u64 * r.slots_per_worker.max(1) as u64;
        let uncorrected = r.metrics.busy_us as f64 / capacity as f64;
        let fixed = r.utilization();
        assert!(
            fixed > uncorrected,
            "seed {seed}: correcting for downtime must raise utilization \
             ({fixed} vs {uncorrected})"
        );
        assert!(fixed <= 1.0, "seed {seed}: utilization {fixed} above 1");
    }
}
