//! Golden digests for *faulted* runs: fixed-seed fingerprints per
//! scheduler under the `reference` and `heavy` fault profiles.
//!
//! The fault-free golden snapshots (`tests/golden/*.json`) cannot see a
//! behaviour change on the crash path, because `FaultPlan::none()` never
//! schedules a crash strike. These digests pin the crash/recover/retry
//! machinery itself, so engine refactors of that path (e.g. replacing the
//! O(jobs) outstanding-work scan in `schedule_next_crash` with an
//! incrementally maintained counter) are provably behaviour-neutral.
//!
//! Re-bless after an *intentional* behaviour change with:
//!
//! ```text
//! PHOENIX_BLESS=1 cargo test --test golden_faults
//! ```

use phoenix::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

const SEEDS: [u64; 2] = [42, 7];

fn spec(kind: SchedulerKind, seed: u64, faults: FaultPlan) -> RunSpec {
    let mut spec = RunSpec::new(TraceProfile::yahoo(), kind);
    spec.nodes = 60;
    spec.gen_nodes = 60;
    spec.jobs = 200;
    spec.gen_util = 0.7;
    spec.seed = seed;
    spec.record_task_waits = false;
    spec.faults = faults;
    spec
}

fn render(kind: SchedulerKind) -> String {
    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"scheduler\": \"{}\",", kind.name()).unwrap();
    writeln!(out, "  \"runs\": [").unwrap();
    let profiles: [(&str, FaultPlan); 2] = [
        ("reference", FaultPlan::reference()),
        ("heavy", FaultPlan::heavy()),
    ];
    let mut first = true;
    for (profile_name, faults) in profiles {
        for seed in SEEDS {
            let r = run_spec(&spec(kind, seed, faults));
            if !first {
                writeln!(out, ",").unwrap();
            }
            first = false;
            write!(
                out,
                "    {{\"faults\": \"{profile_name}\", \"seed\": {seed}, \
                 \"crashes\": {}, \"digest\": \"{:016x}\"}}",
                r.counters.worker_crashes,
                r.digest()
            )
            .unwrap();
        }
    }
    writeln!(out).unwrap();
    writeln!(out, "  ]").unwrap();
    writeln!(out, "}}").unwrap();
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}-faults.json"))
}

fn check(kind: SchedulerKind) {
    let got = render(kind);
    let path = golden_path(kind.name());
    if std::env::var_os("PHOENIX_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {path:?} ({e}); generate it with \
             `PHOENIX_BLESS=1 cargo test --test golden_faults`"
        )
    });
    assert_eq!(
        got,
        want,
        "{} faulted runs drifted from their golden digests; if intentional, \
         re-bless with `PHOENIX_BLESS=1 cargo test --test golden_faults`",
        kind.name()
    );
}

#[test]
fn golden_faulted_phoenix() {
    check(SchedulerKind::Phoenix);
}

#[test]
fn golden_faulted_eagle_c() {
    check(SchedulerKind::EagleC);
}

#[test]
fn golden_faulted_yaq_d() {
    check(SchedulerKind::YaqD);
}
