//! Golden-trace regression tests: fixed-seed snapshots per scheduler.
//!
//! Each test replays a small fixed-seed trace through one scheduler and
//! byte-compares a deterministic JSON rendering of the result against the
//! checked-in snapshot in `tests/golden/<scheduler>.json`. Any behavioural
//! drift — an extra RNG draw, a reordered event, a changed counter — shows
//! up as a diff here long before it is visible in aggregate figures.
//!
//! These runs use the default `SimConfig` (i.e. `FaultPlan::none()`), so
//! together they also pin the acceptance property of the fault-injection
//! layer: with faults disabled the simulator must remain byte-identical to
//! the pre-fault-layer engine.
//!
//! To re-bless after an *intentional* behaviour change:
//!
//! ```text
//! PHOENIX_BLESS=1 cargo test --test golden_traces
//! ```
//!
//! then review the snapshot diff like any other code change.

use phoenix::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Seeds replayed per scheduler (each is a separate snapshot entry).
const SEEDS: [u64; 2] = [42, 7];

fn spec(kind: SchedulerKind, seed: u64) -> RunSpec {
    let mut spec = RunSpec::new(TraceProfile::yahoo(), kind);
    spec.nodes = 60;
    spec.gen_nodes = 60;
    spec.jobs = 200;
    spec.gen_util = 0.7;
    spec.seed = seed;
    spec.record_task_waits = false;
    // Debug builds replay the goldens under the invariant auditor: the
    // digests must still match the release-blessed snapshots (the auditor
    // is observational), and the report must come back clean.
    spec.audit = cfg!(debug_assertions);
    spec
}

/// Deterministic JSON rendering of the regression-relevant result surface.
fn render(results: &[(u64, SimResult)]) -> String {
    let mut out = String::new();
    let name = &results[0].1.scheduler;
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"scheduler\": \"{name}\",").unwrap();
    writeln!(out, "  \"runs\": [").unwrap();
    for (i, (seed, r)) in results.iter().enumerate() {
        let c = &r.counters;
        writeln!(out, "    {{").unwrap();
        writeln!(out, "      \"seed\": {seed},").unwrap();
        writeln!(out, "      \"workers\": {},", r.workers).unwrap();
        writeln!(
            out,
            "      \"makespan_us\": {},",
            r.metrics.makespan.as_micros()
        )
        .unwrap();
        writeln!(out, "      \"busy_us\": {},", r.metrics.busy_us).unwrap();
        writeln!(out, "      \"incomplete_jobs\": {},", r.incomplete_jobs).unwrap();
        writeln!(out, "      \"lost_tasks\": {},", r.lost_tasks).unwrap();
        writeln!(out, "      \"digest\": \"{:016x}\",", r.digest()).unwrap();
        writeln!(out, "      \"counters\": {{").unwrap();
        let fields: [(&str, u64); 21] = [
            ("probes_sent", c.probes_sent),
            ("redundant_probes", c.redundant_probes),
            ("bound_placements", c.bound_placements),
            ("tasks_completed", c.tasks_completed),
            ("jobs_completed", c.jobs_completed),
            ("jobs_failed", c.jobs_failed),
            ("relaxed_tasks", c.relaxed_tasks),
            ("crv_reordered_tasks", c.crv_reordered_tasks),
            ("crv_insertions", c.crv_insertions),
            ("srpt_reordered_tasks", c.srpt_reordered_tasks),
            ("stolen_probes", c.stolen_probes),
            ("migrated_probes", c.migrated_probes),
            ("sbp_continuations", c.sbp_continuations),
            ("starvation_suppressions", c.starvation_suppressions),
            ("worker_crashes", c.worker_crashes),
            ("worker_recoveries", c.worker_recoveries),
            ("tasks_killed", c.tasks_killed),
            ("probes_lost", c.probes_lost),
            ("probe_retries", c.probe_retries),
            ("probes_delayed", c.probes_delayed),
            ("requeued_tasks", c.requeued_tasks),
        ];
        for (j, (key, value)) in fields.iter().enumerate() {
            let comma = if j + 1 < fields.len() { "," } else { "" };
            writeln!(out, "        \"{key}\": {value}{comma}").unwrap();
        }
        writeln!(out, "      }}").unwrap();
        let comma = if i + 1 < results.len() { "," } else { "" };
        writeln!(out, "    }}{comma}").unwrap();
    }
    writeln!(out, "  ]").unwrap();
    writeln!(out, "}}").unwrap();
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check(kind: SchedulerKind) {
    let results: Vec<(u64, SimResult)> = SEEDS
        .iter()
        .map(|&seed| (seed, run_spec(&spec(kind, seed))))
        .collect();
    for (seed, r) in &results {
        if let Some(report) = &r.audit {
            assert!(
                report.is_clean(),
                "{} seed {seed}: invariant violations under audit:\n{report}",
                kind.name()
            );
        }
    }
    let got = render(&results);
    let path = golden_path(kind.name());
    if std::env::var_os("PHOENIX_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {path:?} ({e}); generate it with \
             `PHOENIX_BLESS=1 cargo test --test golden_traces`"
        )
    });
    assert_eq!(
        got,
        want,
        "{} drifted from its golden snapshot; if the change is intentional, \
         re-bless with `PHOENIX_BLESS=1 cargo test --test golden_traces` and \
         review the diff",
        kind.name()
    );
}

#[test]
fn golden_phoenix() {
    check(SchedulerKind::Phoenix);
}

#[test]
fn golden_eagle_c() {
    check(SchedulerKind::EagleC);
}

#[test]
fn golden_hawk_c() {
    check(SchedulerKind::HawkC);
}

#[test]
fn golden_sparrow_c() {
    check(SchedulerKind::SparrowC);
}

#[test]
fn golden_yaq_d() {
    check(SchedulerKind::YaqD);
}

/// The fault-layer zero-cost contract, stated directly: an explicit
/// `FaultPlan::none()` changes nothing about a run (same digest as the
/// default config), and replaying the same seed is byte-identical.
#[test]
fn fault_free_runs_are_byte_identical() {
    let base = spec(SchedulerKind::Phoenix, 42);
    let a = run_spec(&base);
    let b = run_spec(&base.clone().with_faults(FaultPlan::none()));
    assert_eq!(a.digest(), b.digest(), "FaultPlan::none() must be a no-op");
    let c = run_spec(&base);
    assert_eq!(a.digest(), c.digest(), "same seed must replay identically");
}
