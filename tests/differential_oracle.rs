//! Differential oracle: the real engine vs the brute-force
//! [`ReferenceExecutor`] on proptest-generated tiny scenarios.
//!
//! The reference executor re-implements the engine's event loop and
//! dispatch semantics as naively as possible (flat event list scanned
//! linearly, no incremental ledgers, no touched-worker batching) and must
//! agree **event-for-event** with the real engine: same trace-record
//! stream, same result digest. Both drive the same policy code, so any
//! divergence pins a bug in the engine's mechanics — event ordering, tie
//! breaking, the dispatch loop — rather than in a scheduler.
//!
//! Three policies are differentially tested, as the audit-kit spec asks:
//! Random (the simplest placement), Eagle-C (SRPT-ordered queues and work
//! stealing) and Phoenix (CRV reordering, admission control, the full
//! machinery). 36 generated scenarios × 3 policies = 108 differential
//! runs, each also executed under the invariant auditor.

use phoenix::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Policies under differential test. `EagleC` is the SRPT representative:
/// its worker queues are SRPT-ordered and it steals work.
const POLICIES: [&str; 3] = ["random", "eagle-c", "phoenix"];

fn build_policy(name: &str, cutoff_s: f64) -> Box<dyn Scheduler> {
    match name {
        "random" => Box::new(phoenix::sim::RandomScheduler::new(2)),
        "eagle-c" => Box::new(EagleC::new(BaselineConfig::with_cutoff_s(cutoff_s))),
        "phoenix" => Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(cutoff_s))),
        other => panic!("unknown policy {other}"),
    }
}

/// One tiny scenario, well inside the reference executor's size caps.
#[derive(Debug, Clone)]
struct Scenario {
    nodes: usize,
    jobs: usize,
    util: f64,
    seed: u64,
}

fn build_sim(s: &Scenario, policy: &str, sink: MemorySink) -> Simulation {
    let profile = TraceProfile::yahoo();
    let cutoff = profile.short_cutoff_s();
    let mut rng = StdRng::seed_from_u64(s.seed.wrapping_mul(31).wrapping_add(5));
    let cluster = MachinePopulation::generate(profile.population.clone(), s.nodes, &mut rng);
    let trace = TraceGenerator::new(profile, s.seed).generate(s.jobs, s.nodes, s.util);
    let mut sim = Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &trace,
        build_policy(policy, cutoff),
        s.seed,
    );
    sim.set_trace_sink(Box::new(sink));
    sim
}

/// Runs one scenario through both executors and asserts event-for-event
/// agreement. The engine side additionally runs under the invariant
/// auditor (which must stay silent and must not perturb the digest).
fn assert_executors_agree(s: &Scenario, policy: &str) {
    let real_sink = MemorySink::new(1 << 16);
    let real_handle = real_sink.handle();
    let mut real_sim = build_sim(s, policy, real_sink);
    real_sim.enable_audit(AuditConfig::default());
    let real = real_sim.run();

    let ref_sink = MemorySink::new(1 << 16);
    let ref_handle = ref_sink.handle();
    let ref_sim = build_sim(s, policy, ref_sink);
    let reference = ReferenceExecutor::run(ref_sim);

    let report = real.audit.as_ref().expect("audit enabled");
    assert!(report.is_clean(), "{policy} {s:?}: {report}");

    let real_records = MemorySink::records(&real_handle);
    let ref_records = MemorySink::records(&ref_handle);
    if let Some(diff) = first_trace_divergence(&real_records, &ref_records) {
        panic!("{policy} {s:?}: executors diverged\n{diff}");
    }
    assert_eq!(
        real.digest(),
        reference.digest(),
        "{policy} {s:?}: identical event streams but different results"
    );
    assert_eq!(real.incomplete_jobs, 0, "{policy} {s:?}");
    assert_eq!(reference.incomplete_jobs, 0, "{policy} {s:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(36))]

    /// The engine and the naive reference executor agree event-for-event
    /// (and digest-for-digest) on arbitrary tiny fault-free scenarios, for
    /// all three differential policies.
    #[test]
    fn engine_matches_reference_executor(
        nodes in 2usize..17,
        jobs in 1usize..41,
        util in 0.2f64..0.9,
        seed in 0u64..10_000,
    ) {
        let s = Scenario { nodes, jobs, util, seed };
        for policy in POLICIES {
            assert_executors_agree(&s, policy);
        }
    }
}

/// A fixed contended scenario at the oracle's size caps, kept out of
/// proptest so a regression here fails with a stable name.
#[test]
fn engine_matches_reference_executor_at_size_caps() {
    let s = Scenario {
        nodes: ReferenceExecutor::MAX_WORKERS,
        jobs: ReferenceExecutor::MAX_JOBS,
        util: 0.85,
        seed: 42,
    };
    for policy in POLICIES {
        assert_executors_agree(&s, policy);
    }
}
