//! # Phoenix — a constraint-aware scheduler for heterogeneous datacenters
//!
//! A from-scratch Rust reproduction of *Phoenix: A Constraint-aware
//! Scheduler for Heterogeneous Datacenters* (Thinakaran et al., ICDCS
//! 2017), including every substrate the paper depends on:
//!
//! * a deterministic **trace-driven discrete-event cluster simulator**
//!   ([`sim`]) with heterogeneous workers, probe queues and late binding;
//! * the **constraint system** ([`constraints`]): machine attributes, task
//!   constraints, the Constraint Resource Vector (CRV), feasibility
//!   matching, and the Google-trace constraint synthesis model;
//! * **workload synthesis** ([`traces`]) for the Google, Cloudera and
//!   Yahoo cluster profiles with bursty arrivals and heavy-tailed task
//!   durations;
//! * the rebuilt **baseline schedulers** ([`schedulers`]): Sparrow-C,
//!   Hawk-C, Eagle-C and Yaq-d;
//! * **Phoenix itself** ([`core`]): the CRV monitor, the
//!   Pollaczek–Khinchine M/G/1 waiting-time estimator, CRV-based queue
//!   reordering, probe rescheduling and proactive admission control;
//! * the **experiment harness** ([`bench`]) regenerating every table and
//!   figure of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use phoenix::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A 100-worker heterogeneous cluster with the Google machine mix.
//! let profile = TraceProfile::google();
//! let mut rng = StdRng::seed_from_u64(42);
//! let cluster = MachinePopulation::generate(profile.population.clone(), 100, &mut rng);
//!
//! // A 200-job synthetic Google-like trace at moderate load.
//! let trace = TraceGenerator::new(profile.clone(), 42).generate(200, 100, 0.6);
//!
//! // Schedule it with Phoenix and inspect the result.
//! let result = Simulation::new(
//!     SimConfig::default(),
//!     FeasibilityIndex::new(cluster.into_machines()),
//!     &trace,
//!     Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(profile.short_cutoff_s()))),
//!     42,
//! )
//! .run();
//! assert_eq!(result.incomplete_jobs, 0);
//! println!("{result}");
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use phoenix_bench as bench;
pub use phoenix_constraints as constraints;
pub use phoenix_core as core;
pub use phoenix_metrics as metrics;
pub use phoenix_schedulers as schedulers;
pub use phoenix_sim as sim;
pub use phoenix_traces as traces;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use phoenix_bench::{run_many, run_spec, ObserveArgs, RunSpec, Scale, SchedulerKind};
    pub use phoenix_constraints::{
        AttributeVector, Constraint, ConstraintClass, ConstraintExpr, ConstraintKind,
        ConstraintModel, ConstraintOp, ConstraintSet, Crv, CrvDimension, FeasibilityIndex, Isa,
        MachinePopulation, PopulationProfile, VectorDemand,
    };
    pub use phoenix_core::{Phoenix, PhoenixConfig};
    pub use phoenix_metrics::{ConstraintStatus, Distribution, JobClass, LatencyKey};
    pub use phoenix_schedulers::{
        BaselineConfig, ChoosyC, EagleC, HawkC, MercuryC, MonolithicC, SparrowC, YaqD,
    };
    pub use phoenix_sim::{
        first_trace_divergence, AuditConfig, AuditReport, FaultPlan, FederationConfig,
        FederationStats, JsonlSink, MemorySink, ProfileReport, ProfileScope, ReferenceExecutor,
        Scheduler, SimConfig, SimDuration, SimResult, Simulation, TraceRecord, TraceSink,
    };
    pub use phoenix_traces::{Job, JobId, Trace, TraceGenerator, TraceProfile, TraceStats};
}
