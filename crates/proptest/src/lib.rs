//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships
//! the subset of the proptest API its property tests use: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`Just`/vec/select/
//! option strategies, and the `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case is reported with its generated
//!   inputs and the panic is re-raised as-is.
//! * **Deterministic seeding.** Case `i` of every test draws from a seed
//!   derived from the test's name and `i`, so failures reproduce exactly
//!   without a persistence file.
//! * Fewer cases by default (64 instead of 256) — these tests drive whole
//!   simulations and would otherwise dominate `cargo test` wall-clock.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

use rand::prelude::*;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

/// Object-safe strategy, used by [`BoxedStrategy`] and `prop_oneof!`.
trait DynStrategy {
    type Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// The `prop::` namespace mirrored from upstream.
pub mod prop {
    use super::*;

    /// Collection strategies.
    pub mod collection {
        use super::*;

        /// Acceptable sizes for generated collections.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                SizeRange {
                    min: exact,
                    max_exclusive: exact + 1,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    min: r.start,
                    max_exclusive: r.end,
                }
            }
        }

        /// Strategy for `Vec`s whose length is drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.random_range(self.size.min..self.size.max_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::*;

        /// Uniform choice from a fixed list.
        pub struct Select<T: Clone + Debug>(Vec<T>);

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.random_range(0..self.0.len())].clone()
            }
        }

        /// `prop::sample::select(values)`; panics on an empty list.
        pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select needs at least one value");
            Select(values)
        }
    }

    /// Option strategies.
    pub mod option {
        use super::*;

        /// `Option` wrapper with a 50% `Some` probability.
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.random::<bool>() {
                    Some(self.0.generate(rng))
                } else {
                    None
                }
            }
        }

        /// `prop::option::of(inner)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }
}

/// Test-runner plumbing used by the macros; not part of the public
/// upstream API.
pub mod runner {
    use super::*;

    /// Derives the deterministic seed of `case` for the named test.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Runs `body` once per case, reporting generated inputs on panic.
    pub fn run_cases(config: &ProptestConfig, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
        for case in 0..config.cases {
            let mut rng = TestRng::seed_from_u64(case_seed(test_name, case));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
            match result {
                Ok(()) => {}
                Err(payload) => {
                    eprintln!(
                        "proptest: {test_name} failed at case {case}/{}",
                        config.cases
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Declares property tests. Each argument is drawn from its strategy for
/// every case; the body runs with the bindings in scope.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; do not use directly.
#[macro_export]
macro_rules! __proptest_fns {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $config;
            let __pt_strategies = ( $( $strat, )+ );
            $crate::runner::run_cases(&__pt_config, stringify!($name), |__pt_rng| {
                let ( $( $arg, )+ ) = &__pt_strategies;
                $(let $arg = $crate::Strategy::generate($arg, __pt_rng);)+
                let __pt_desc = ::std::format!(
                    ::std::concat!($( ::std::stringify!($arg), " = {:?}; ", )+),
                    $( &$arg, )+
                );
                let __pt_body = move || $body;
                // Report inputs only when the body panics.
                let __pt_outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__pt_body),
                );
                if let ::std::result::Result::Err(__pt_payload) = __pt_outcome {
                    ::std::eprintln!("proptest inputs: {__pt_desc}");
                    ::std::panic::resume_unwind(__pt_payload);
                }
            });
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

/// Composes named strategies into a derived strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)
            ( $($arg:ident in $strat:expr),+ $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ( $( $strat, )+ ),
                move |( $( $arg, )+ )| -> $ret { $body },
            )
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::Union::new(::std::vec![
            $( $crate::Strategy::boxed($strat), )+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { ::std::assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::std::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_ne!($a, $b, $($fmt)*) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(u32),
        B,
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3u32..10,
            v in prop::collection::vec(0.0f64..1.0, 2..5),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn oneof_and_select_cover_arms(xs in prop::collection::vec(
            prop_oneof![
                (1u32..4).prop_map(Pick::A),
                Just(Pick::B),
            ],
            40..41,
        )) {
            prop_assert!(xs.iter().any(|p| matches!(p, Pick::A(_))));
            prop_assert!(xs.contains(&Pick::B));
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u64..10, b in 0u64..10) -> (u64, u64) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategies_apply_body(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::runner::case_seed;
        assert_eq!(case_seed("t", 3), case_seed("t", 3));
        assert_ne!(case_seed("t", 3), case_seed("t", 4));
        assert_ne!(case_seed("t", 3), case_seed("u", 3));
    }
}
