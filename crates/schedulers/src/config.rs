//! Shared configuration for the baseline schedulers.

use phoenix_sim::SimDuration;

/// Parameters shared by the distributed/hybrid baselines (and reused by
/// Phoenix, which extends Eagle).
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Speculative probes sent per task (§V-A: the paper finds 2 optimal).
    pub probe_ratio: u32,
    /// Short/long classification cutoff on estimated task duration.
    pub short_cutoff: SimDuration,
    /// Starvation bound: how many times a queued probe may be bypassed by
    /// reordering before it becomes un-bypassable (§V-A: 5).
    pub slack_threshold: u32,
    /// Fraction of workers reserved for short tasks (Hawk/Eagle partition);
    /// long jobs are never placed there.
    pub reserve_fraction: f64,
    /// Random victims an idle worker contacts per steal attempt.
    pub steal_attempts: u32,
    /// Yaq-d: bound on queued tasks per worker.
    pub queue_bound: usize,
    /// Yaq-d/central heartbeat for load updates (Yarn-style 5 s).
    pub heartbeat: SimDuration,
}

impl BaselineConfig {
    /// Paper defaults with a trace-specific short/long cutoff in seconds.
    pub fn with_cutoff_s(cutoff_s: f64) -> Self {
        BaselineConfig {
            short_cutoff: SimDuration::from_secs_f64(cutoff_s),
            ..Self::default()
        }
    }

    /// Whether an estimated task duration classifies a job as short.
    pub fn is_short(&self, estimated_task_us: u64) -> bool {
        estimated_task_us <= self.short_cutoff.as_micros()
    }

    /// Number of reserved (short-only) workers on a cluster of `n`.
    pub fn reserved_workers(&self, n: usize) -> usize {
        ((n as f64) * self.reserve_fraction).floor() as usize
    }
}

impl Default for BaselineConfig {
    /// Paper defaults: probe ratio 2, slack threshold 5, ~10 % short
    /// partition (Hawk's small-partition guideline), 5 s heartbeat.
    fn default() -> Self {
        BaselineConfig {
            probe_ratio: 2,
            short_cutoff: SimDuration::from_secs(950),
            slack_threshold: 5,
            reserve_fraction: 0.10,
            steal_attempts: 10,
            queue_bound: 10,
            heartbeat: SimDuration::from_secs(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = BaselineConfig::default();
        assert_eq!(c.probe_ratio, 2);
        assert_eq!(c.slack_threshold, 5);
    }

    #[test]
    fn short_classification() {
        let c = BaselineConfig::with_cutoff_s(10.0);
        assert!(c.is_short(SimDuration::from_secs(10).as_micros()));
        assert!(!c.is_short(SimDuration::from_secs(11).as_micros()));
    }

    #[test]
    fn reserved_worker_count() {
        let c = BaselineConfig::default();
        assert_eq!(c.reserved_workers(1000), 100);
        assert_eq!(c.reserved_workers(5), 0);
    }
}
