//! Mercury-C: hybrid control plane with *early* task binding.
//!
//! Mercury (Karanasos et al., ATC'15) splits the control plane like Hawk —
//! a central scheduler for "guaranteed" (long) containers, distributed
//! schedulers for "queueable" (short) containers — but binds queueable
//! tasks **early** into worker queues instead of using Sparrow-style
//! probes. Distributed placement picks the least-loaded of a few sampled
//! feasible workers using the load information distributed via heartbeats.
//! There is no queue reordering and no stealing (Table I of the Phoenix
//! paper places Mercury at hybrid/early with no reordering); Mercury's
//! load-shedding/re-queueing machinery is approximated by the bounded
//! queue preference shared with Yaq-d.

use phoenix_sim::{Scheduler, SimCtx};
use phoenix_traces::JobId;

use crate::central::CentralPlanner;
use crate::config::BaselineConfig;
use crate::placement::{estimated_queue_work_us, relaxation_slowdown};

/// The Mercury-C scheduler.
#[derive(Debug, Clone)]
pub struct MercuryC {
    config: BaselineConfig,
    planner: Option<CentralPlanner>,
}

impl MercuryC {
    /// Creates Mercury-C with the given shared configuration.
    pub fn new(config: BaselineConfig) -> Self {
        MercuryC {
            config,
            planner: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    fn place_short(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let set = ctx.job(job).effective_constraints.clone();
        let (set, slowdown) = if ctx.feasibility().count_feasible(&set) > 0 {
            (set, 1.0)
        } else {
            let hard = set.hard_only();
            if ctx.feasibility().count_feasible(&hard) == 0 {
                ctx.fail_job(job);
                return;
            }
            let slowdown = relaxation_slowdown(&set);
            ctx.job_mut(job).effective_constraints = hard.clone();
            (hard, slowdown)
        };
        let d = (self.config.probe_ratio as usize * 2).max(2);
        let bound = self.config.queue_bound;
        while ctx.job(job).has_pending() {
            let duration = ctx.job_mut(job).take_task();
            let candidates = ctx.sample_feasible_workers(&set, d);
            debug_assert!(!candidates.is_empty());
            let best = candidates
                .iter()
                .copied()
                .min_by_key(|&w| {
                    let over = usize::from(ctx.worker(w).queue_len() >= bound);
                    (over, estimated_queue_work_us(ctx.state(), w), w.0)
                })
                .expect("candidates non-empty");
            let mut probe = ctx.new_bound_probe(job, duration);
            probe.slowdown = slowdown;
            ctx.send_probe(best, probe);
        }
    }
}

impl Scheduler for MercuryC {
    fn name(&self) -> &str {
        "mercury-c"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        if self.planner.is_none() {
            let reserved = self.config.reserved_workers(ctx.num_workers());
            self.planner = Some(CentralPlanner::new(reserved));
        }
        let est = ctx.job(job).estimated_task_us;
        if self.config.is_short(est) {
            self.place_short(job, ctx);
        } else {
            let planner = self.planner.clone().expect("initialized above");
            planner.place_job(ctx, job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
    use phoenix_metrics::JobClass;
    use phoenix_sim::{SimConfig, Simulation};
    use phoenix_traces::{TraceGenerator, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(jobs: usize, nodes: usize, util: f64, seed: u64) -> phoenix_sim::SimResult {
        let profile = TraceProfile::cloudera();
        let cutoff = profile.short_cutoff_s();
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
        let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(MercuryC::new(BaselineConfig::with_cutoff_s(cutoff))),
            seed,
        )
        .run()
    }

    #[test]
    fn completes_all_jobs_early_bound() {
        let r = run(400, 100, 0.6, 1);
        assert_eq!(r.incomplete_jobs, 0);
        assert_eq!(r.counters.probes_sent, 0, "mercury early-binds everything");
        assert_eq!(r.counters.bound_placements, r.counters.tasks_completed);
        assert_eq!(r.counters.srpt_reordered_tasks, 0, "no reordering");
    }

    #[test]
    fn short_jobs_beat_monolithic_centralized_under_load() {
        // Mercury's distributed short-job path reacts faster than pure
        // central placement because the short partition shields it from
        // long work; at minimum it must not collapse.
        let r = run(600, 80, 0.9, 2);
        assert_eq!(r.incomplete_jobs, 0);
        let p99 = r.class_response_percentile(JobClass::Short, 99.0);
        assert!(p99.is_finite() && p99 > 0.0);
    }
}
