//! Choosy-C: constrained max-min fair (CMMF) centralized scheduling.
//!
//! Choosy (Ghodsi et al., EuroSys'13) extends max-min fairness to jobs with
//! placement constraints: whenever capacity frees up, it is offered to the
//! *least-allocated user* among those with a pending task able to run on
//! it. The paper's Table I classifies Choosy as hierarchical/early-binding
//! with a global queue, handling single-resource (slot) fairness under hard
//! constraints — and criticizes exactly that: optimizing a fairness metric
//! rather than job response times (§VII-D).
//!
//! This implementation keeps tasks in a central queue (worker queues stay
//! empty; binding happens the moment a slot frees), tracks per-user running
//! task counts, and awards each slot CMMF-style. Soft constraints are
//! relaxed up front when a job's full set is unsatisfiable, as in the
//! other `-C` baselines.

use std::collections::HashMap;

use phoenix_sim::{Scheduler, SimCtx, WorkerId};
use phoenix_traces::JobId;

use crate::config::BaselineConfig;
use crate::placement::relaxation_slowdown;

/// The Choosy-C scheduler.
#[derive(Debug, Clone, Default)]
pub struct ChoosyC {
    config: BaselineConfig,
    /// Jobs with unlaunched tasks, in arrival order.
    pending: Vec<JobId>,
    /// Running-task count per user (the allocation CMMF equalizes).
    allocation: HashMap<u32, u64>,
    /// Cumulative tasks served per user — the tie-breaker that keeps
    /// max-min meaningful at single-slot granularity (two users with zero
    /// *running* tasks are separated by who has been served more).
    served: HashMap<u32, u64>,
    /// Per-job slowdown from up-front soft relaxation.
    slowdown: HashMap<JobId, f64>,
    /// Placements sent but not yet arrived at their worker (network
    /// delay): those workers must not be offered further tasks.
    in_flight: HashMap<u32, u32>,
}

impl ChoosyC {
    /// Creates Choosy-C with the given shared configuration.
    pub fn new(config: BaselineConfig) -> Self {
        ChoosyC {
            config,
            ..Self::default()
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// Places one task of `job` on `worker` as a bound probe.
    fn place_one(&mut self, job: JobId, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        let duration = ctx.job_mut(job).take_task();
        let user = ctx.job(job).user;
        *self.allocation.entry(user).or_insert(0) += 1;
        *self.served.entry(user).or_insert(0) += 1;
        *self.in_flight.entry(worker.0).or_insert(0) += 1;
        let mut probe = ctx.new_bound_probe(job, duration);
        probe.slowdown = *self.slowdown.get(&job).unwrap_or(&1.0);
        ctx.send_probe(worker, probe);
    }

    /// Whether `worker` can accept a new assignment right now.
    fn worker_available(&self, worker: WorkerId, ctx: &SimCtx<'_>) -> bool {
        ctx.worker(worker).has_free_slot()
            && ctx.worker(worker).queue_len() == 0
            && *self.in_flight.get(&worker.0).unwrap_or(&0) == 0
    }

    /// Among pending jobs feasible on `worker`, the one whose user has the
    /// smallest allocation (FIFO within a user).
    fn poorest_feasible_job(&mut self, worker: WorkerId, ctx: &SimCtx<'_>) -> Option<JobId> {
        self.pending.retain(|&j| ctx.job(j).has_pending());
        let mut best: Option<(u64, u64, usize, JobId)> = None;
        for (order, &job) in self.pending.iter().enumerate() {
            let set = &ctx.job(job).effective_constraints;
            if !ctx.feasibility().is_feasible(worker.0, set) {
                continue;
            }
            let user = ctx.job(job).user;
            let alloc = *self.allocation.get(&user).unwrap_or(&0);
            let served = *self.served.get(&user).unwrap_or(&0);
            match best {
                Some((a, s, o, _)) if (a, s, o) <= (alloc, served, order) => {}
                _ => best = Some((alloc, served, order, job)),
            }
        }
        best.map(|(_, _, _, job)| job)
    }

    /// Greedy fill at arrival: offer every idle feasible worker one task,
    /// poorest user first.
    fn fill_idle_workers(&mut self, ctx: &mut SimCtx<'_>) {
        loop {
            // Find an idle worker that can serve some pending job.
            let mut placed = false;
            let idle: Vec<WorkerId> = (0..ctx.num_workers() as u32)
                .map(WorkerId)
                .filter(|&w| self.worker_available(w, ctx))
                .collect();
            for worker in idle {
                if let Some(job) = self.poorest_feasible_job(worker, ctx) {
                    self.place_one(job, worker, ctx);
                    placed = true;
                }
            }
            if !placed {
                return;
            }
        }
    }
}

impl Scheduler for ChoosyC {
    fn name(&self) -> &str {
        "choosy-c"
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, _ctx: &mut SimCtx<'_>) {
        if let Some(n) = self.in_flight.get_mut(&worker.0) {
            *n = n.saturating_sub(1);
        }
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        // Resolve the constraint level once (up-front soft relaxation).
        let set = ctx.job(job).effective_constraints.clone();
        if ctx.feasibility().count_feasible(&set) == 0 {
            let hard = set.hard_only();
            if ctx.feasibility().count_feasible(&hard) == 0 {
                ctx.fail_job(job);
                return;
            }
            self.slowdown.insert(job, relaxation_slowdown(&set));
            ctx.job_mut(job).effective_constraints = hard;
        }
        self.pending.push(job);
        self.fill_idle_workers(ctx);
    }

    fn on_task_finish(
        &mut self,
        worker: WorkerId,
        job: JobId,
        _duration_us: u64,
        ctx: &mut SimCtx<'_>,
    ) {
        let user = ctx.job(job).user;
        if let Some(a) = self.allocation.get_mut(&user) {
            *a = a.saturating_sub(1);
        }
        if ctx.job(job).is_complete() {
            self.slowdown.remove(&job);
        }
        // The freed slot goes to the poorest user able to use it.
        if self.worker_available(worker, ctx) {
            if let Some(next) = self.poorest_feasible_job(worker, ctx) {
                self.place_one(next, worker, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{
        AttributeVector, ConstraintSet, FeasibilityIndex, MachinePopulation,
    };
    use phoenix_sim::{SimConfig, SimResult, Simulation};
    use phoenix_traces::{Job, Trace, TraceGenerator, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(jobs: usize, nodes: usize, util: f64, seed: u64) -> SimResult {
        let profile = TraceProfile::yahoo();
        let cutoff = profile.short_cutoff_s();
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
        let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(ChoosyC::new(BaselineConfig::with_cutoff_s(cutoff))),
            seed,
        )
        .run()
    }

    #[test]
    fn completes_all_jobs_with_central_binding() {
        let r = run(400, 100, 0.6, 1);
        assert_eq!(r.incomplete_jobs, 0);
        assert_eq!(r.counters.probes_sent, 0, "choosy never probes");
        assert_eq!(r.counters.bound_placements, r.counters.tasks_completed);
    }

    #[test]
    fn slots_go_to_the_poorest_user() {
        // Two users: user 0 floods the cluster first; user 1 submits one
        // job while user 0 still has plenty queued. CMMF must serve user
        // 1's task at the very next free slot rather than draining user 0.
        let mk = |id: u32, arrival: f64, tasks: usize, user: u32| Job {
            id: phoenix_traces::JobId(id),
            arrival_s: arrival,
            task_durations_s: vec![10.0; tasks],
            estimated_task_duration_s: 10.0,
            constraints: ConstraintSet::unconstrained(),
            short: true,
            user,
        };
        // 1 worker; user 0 submits 10 tasks at t=0, user 1 one task at t=1.
        let trace = Trace::new("t", vec![mk(0, 0.0, 10, 0), mk(1, 1.0, 1, 1)]);
        let result = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(vec![AttributeVector::default()]),
            &trace,
            Box::new(ChoosyC::new(BaselineConfig::default())),
            1,
        )
        .run();
        assert_eq!(result.incomplete_jobs, 0);
        // User 1's single-task job runs right after the first task of user
        // 0 finishes: response ≈ 10 (head task) − 1 (arrival) + 10 ≈ 19 s,
        // not after user 0's whole backlog (≈ 100 s).
        let user1 = result
            .job_outcomes
            .iter()
            .find(|o| o.user == 1)
            .expect("present");
        let resp = user1.response_s.expect("completed");
        assert!(
            (15.0..25.0).contains(&resp),
            "CMMF must prioritize the poorer user: response {resp}"
        );
    }

    #[test]
    fn constrained_jobs_wait_for_their_machines() {
        let r = run(600, 80, 0.9, 3);
        assert_eq!(r.incomplete_jobs, 0);
        // Central queue: worker queues never grow.
        assert_eq!(r.counters.srpt_reordered_tasks, 0);
    }
}
