//! Monolithic-C: a Borg/Mesos-style fully centralized scheduler.
//!
//! The upper-left corner of the paper's design space (Fig. 1 / Table I):
//! a single global control plane that **early-binds every task** — long or
//! short — to the least-loaded feasible worker. No probes, no late binding,
//! no queue reordering, no stealing. Constraint handling is exact (the
//! central scheduler sees everything), which is the one advantage this
//! design has; its weakness is that short tasks commit to a queue at
//! arrival and cannot escape a bad pick, and that the single scheduler is
//! a scalability bottleneck in reality (not modelled — the simulator
//! charges only the network delay).

use phoenix_sim::{Scheduler, SimCtx, SimDuration, SimTime};
use phoenix_traces::JobId;

use crate::central::CentralPlanner;
use crate::config::BaselineConfig;

/// The Monolithic-C scheduler.
///
/// Unlike the probe-based designs, a monolithic scheduler's *control
/// plane* is the bottleneck: every placement decision runs through one
/// logical scheduler. We model this with a per-task decision cost — jobs
/// queue at the scheduler itself before any task reaches a worker. With
/// the default (10 ms/task) the control plane is invisible at the minutes-
/// scale task granularity of the evaluated traces; sweep it upward (see
/// the `sensitivity` binary) to watch the centralized design collapse —
/// the paper's §I scalability argument, measurable.
#[derive(Debug, Clone)]
pub struct MonolithicC {
    config: BaselineConfig,
    planner: CentralPlanner,
    decision_cost: SimDuration,
    scheduler_free_at: SimTime,
}

impl MonolithicC {
    /// Creates Monolithic-C with the given shared configuration and the
    /// default 10 ms/task decision cost.
    ///
    /// The short-task reservation is not used: a monolithic scheduler has
    /// no partition (every placement is globally planned).
    pub fn new(config: BaselineConfig) -> Self {
        Self::with_decision_cost(config, SimDuration::from_millis(10))
    }

    /// Creates Monolithic-C with an explicit per-task decision cost.
    pub fn with_decision_cost(config: BaselineConfig, decision_cost: SimDuration) -> Self {
        MonolithicC {
            config,
            planner: CentralPlanner::new(0),
            decision_cost,
            scheduler_free_at: SimTime::ZERO,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// The configured per-task decision cost.
    pub fn decision_cost(&self) -> SimDuration {
        self.decision_cost
    }
}

impl Scheduler for MonolithicC {
    fn name(&self) -> &str {
        "monolithic-c"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        // The job queues at the central scheduler: placement happens only
        // after the scheduler has worked through everything ahead of it.
        let tasks = ctx.job(job).num_tasks() as u64;
        let start = self.scheduler_free_at.max(ctx.now());
        let done = start + SimDuration(self.decision_cost.as_micros() * tasks);
        self.scheduler_free_at = done;
        let delay = done.since(ctx.now());
        if delay == SimDuration::ZERO {
            self.planner.place_job(ctx, job);
        } else {
            ctx.schedule_wakeup(delay, u64::from(job.0));
        }
    }

    fn on_wakeup(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        self.planner.place_job(ctx, JobId(token as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
    use phoenix_sim::{SimConfig, Simulation};
    use phoenix_traces::{TraceGenerator, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(jobs: usize, nodes: usize, util: f64, seed: u64) -> phoenix_sim::SimResult {
        let profile = TraceProfile::yahoo();
        let cutoff = profile.short_cutoff_s();
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
        let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(MonolithicC::new(BaselineConfig::with_cutoff_s(cutoff))),
            seed,
        )
        .run()
    }

    #[test]
    fn completes_everything_with_early_binding_only() {
        let r = run(300, 100, 0.6, 1);
        assert_eq!(r.incomplete_jobs, 0);
        assert_eq!(r.counters.probes_sent, 0, "no speculative probes");
        assert_eq!(r.counters.redundant_probes, 0);
        assert_eq!(r.counters.bound_placements, r.counters.tasks_completed);
    }

    #[test]
    fn no_reordering_or_stealing() {
        let r = run(400, 80, 0.85, 2);
        assert_eq!(r.counters.srpt_reordered_tasks, 0);
        assert_eq!(r.counters.stolen_probes, 0);
        assert_eq!(r.counters.sbp_continuations, 0);
    }

    #[test]
    fn decision_cost_queues_jobs_at_the_scheduler() {
        // With a decision cost comparable to task durations, the control
        // plane itself becomes the bottleneck and response times blow up —
        // the paper's centralized-scalability argument.
        let profile = TraceProfile::yahoo();
        let cutoff = profile.short_cutoff_s();
        let mut rng = StdRng::seed_from_u64(9);
        let cluster = MachinePopulation::generate(profile.population.clone(), 100, &mut rng);
        let machines = cluster.into_machines();
        let trace = TraceGenerator::new(profile, 9).generate(600, 100, 0.7);
        let run_with_cost = |cost_ms: u64| {
            Simulation::new(
                SimConfig::default(),
                FeasibilityIndex::new(machines.clone()),
                &trace,
                Box::new(MonolithicC::with_decision_cost(
                    BaselineConfig::with_cutoff_s(cutoff),
                    phoenix_sim::SimDuration::from_millis(cost_ms),
                )),
                9,
            )
            .run()
        };
        let cheap = run_with_cost(10);
        let expensive = run_with_cost(20_000); // 20 s per task decision
        assert_eq!(cheap.incomplete_jobs, 0);
        assert_eq!(expensive.incomplete_jobs, 0);
        let p50 = |r: &phoenix_sim::SimResult| {
            r.class_response_percentile(phoenix_metrics::JobClass::Short, 50.0)
        };
        assert!(
            p50(&expensive) > p50(&cheap) * 3.0,
            "control-plane saturation must dominate: {} vs {}",
            p50(&expensive),
            p50(&cheap)
        );
    }

    #[test]
    fn global_view_keeps_low_load_latencies_tight() {
        // With a global least-loaded view and light load, short jobs should
        // rarely queue at all.
        let r = run(200, 150, 0.3, 3);
        let p50 = r.class_response_percentile(phoenix_metrics::JobClass::Short, 50.0);
        // p50 should be close to pure execution time (tens of seconds).
        assert!(p50 < 200.0, "p50 {p50}");
    }
}
