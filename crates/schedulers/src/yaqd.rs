//! Yaq-d: distributed early binding into bounded queues with SRPT.
//!
//! Yaq-d (Rasley et al., EuroSys'16 — "Efficient queue management for
//! cluster scheduling") binds every task *early* to a specific worker
//! queue: for each task the scheduler samples a handful of candidate
//! workers, prefers those whose queue is under a length bound, and picks
//! the one with the least estimated queued work. Queues are reordered with
//! SRPT (bounded by the starvation slack). There is no late binding, no
//! stealing and no short/long split — which is why constrained bursts hurt
//! it (Fig. 2 of the Phoenix paper).

use phoenix_sim::{Scheduler, SimCtx, WorkerId};
use phoenix_traces::JobId;

use crate::config::BaselineConfig;
use crate::placement::{estimated_queue_work_us, relaxation_slowdown};
use crate::srpt::srpt_insert_tail;

/// The Yaq-d scheduler.
#[derive(Debug, Clone)]
pub struct YaqD {
    config: BaselineConfig,
}

impl YaqD {
    /// Creates Yaq-d with the given shared configuration.
    pub fn new(config: BaselineConfig) -> Self {
        YaqD { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// Candidate workers sampled per task.
    fn candidates_per_task(&self) -> usize {
        (self.config.probe_ratio as usize * 2).max(2)
    }
}

impl Scheduler for YaqD {
    fn name(&self) -> &str {
        "yaq-d"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let set = ctx.job(job).effective_constraints.clone();
        // Resolve the constraint level once per job.
        let (set, slowdown) = if ctx.feasibility().count_feasible(&set) > 0 {
            (set, 1.0)
        } else {
            let hard = set.hard_only();
            if ctx.feasibility().count_feasible(&hard) == 0 {
                ctx.fail_job(job);
                return;
            }
            let slowdown = relaxation_slowdown(&set);
            ctx.job_mut(job).effective_constraints = hard.clone();
            (hard, slowdown)
        };

        let d = self.candidates_per_task();
        let bound = self.config.queue_bound;
        while ctx.job(job).has_pending() {
            let duration = ctx.job_mut(job).take_task();
            let mut candidates = ctx.sample_feasible_workers(&set, d);
            if candidates.is_empty() {
                // Only reachable under fault injection: every feasible
                // worker is down right now. Bind to a dead worker anyway —
                // the engine bounces the probe into the retry path.
                debug_assert!(ctx.config().faults.is_active(), "feasibility checked above");
                candidates = ctx.sample_feasible_workers_any(&set, d);
            }
            // Prefer under-bound queues; among them, least estimated work.
            let best = candidates
                .iter()
                .copied()
                .min_by_key(|&w| {
                    let over = usize::from(ctx.worker(w).queue_len() >= bound);
                    (over, estimated_queue_work_us(ctx.state(), w), w.0)
                })
                .expect("candidates non-empty");
            let mut probe = ctx.new_bound_probe(job, duration);
            probe.slowdown = slowdown;
            ctx.send_probe(best, probe);
        }
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        srpt_insert_tail(ctx.state_mut(), worker, self.config.slack_threshold);
    }

    fn on_probe_retry(&mut self, probe: phoenix_sim::Probe, ctx: &mut SimCtx<'_>) {
        // Re-place with Yaq-d's own policy: least estimated work among
        // under-bound live candidates.
        let job = ctx.job(probe.job);
        if job.is_failed() || (!probe.is_bound() && !job.has_pending()) {
            return;
        }
        let set = job.effective_constraints.clone();
        let bound = self.config.queue_bound;
        let candidates = ctx.sample_feasible_workers(&set, self.candidates_per_task());
        let best = candidates.iter().copied().min_by_key(|&w| {
            let over = usize::from(ctx.worker(w).queue_len() >= bound);
            (over, estimated_queue_work_us(ctx.state(), w), w.0)
        });
        match best {
            Some(w) => ctx.resend_probe(w, probe),
            None => ctx.retry_probe_later(probe),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
    use phoenix_sim::{SimConfig, Simulation};
    use phoenix_traces::{TraceGenerator, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(jobs: usize, nodes: usize, util: f64, seed: u64) -> phoenix_sim::SimResult {
        let profile = TraceProfile::cloudera();
        let cutoff = profile.short_cutoff_s();
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
        let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(YaqD::new(BaselineConfig::with_cutoff_s(cutoff))),
            seed,
        )
        .run()
    }

    #[test]
    fn completes_all_jobs_with_early_binding_only() {
        let r = run(400, 100, 0.6, 1);
        assert_eq!(r.incomplete_jobs, 0);
        assert_eq!(
            r.counters.probes_sent, 0,
            "yaq-d never sends speculative probes"
        );
        assert_eq!(r.counters.redundant_probes, 0);
        assert!(r.counters.bound_placements > 0);
        assert_eq!(
            r.counters.bound_placements, r.counters.tasks_completed,
            "every bound placement runs exactly once"
        );
    }

    #[test]
    fn srpt_reordering_is_active_under_load() {
        let r = run(900, 60, 0.9, 2);
        assert!(r.counters.srpt_reordered_tasks > 0);
    }

    #[test]
    fn deterministic() {
        let a = run(200, 80, 0.7, 9);
        let b = run(200, 80, 0.7, 9);
        assert_eq!(a.counters, b.counters);
    }
}
