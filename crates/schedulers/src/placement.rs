//! Constraint-aware probe/task target selection.
//!
//! All the `-C` baselines handle constraints "trivially" (Table I): they
//! sample placement targets among the workers that satisfy the task's
//! constraint set, with no queue-state awareness. When *no* worker satisfies
//! the full set, the baselines fall back to the hard subset (otherwise the
//! job could never run); tasks placed that way execute with the relative
//! slowdown of the dropped soft constraints, mirroring the penalty Table II
//! associates with unsatisfied resource preferences.

use phoenix_constraints::{ConstraintModel, ConstraintSet, PlacementConstraint};
use phoenix_sim::{SimCtx, SimState, WorkerId};
use phoenix_traces::JobId;

/// How a job's constraints were satisfied at placement time.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Every constraint satisfied.
    Full(Vec<WorkerId>),
    /// Only the hard subset could be satisfied; tasks run with `slowdown`.
    HardOnly(Vec<WorkerId>, f64),
}

impl Placement {
    /// The selected workers.
    pub fn workers(&self) -> &[WorkerId] {
        match self {
            Placement::Full(w) | Placement::HardOnly(w, _) => w,
        }
    }

    /// The execution-time multiplier for tasks placed this way.
    pub fn slowdown(&self) -> f64 {
        match self {
            Placement::Full(_) => 1.0,
            Placement::HardOnly(_, s) => *s,
        }
    }
}

/// The slowdown applied when soft constraints are dropped: the maximum
/// Table II relative slowdown among the dropped kinds (1.0 if none).
pub fn relaxation_slowdown(set: &ConstraintSet) -> f64 {
    set.soft_constraints()
        .map(|c| ConstraintModel::relative_slowdown(c.kind))
        .fold(1.0, f64::max)
}

/// Reorders `targets` to honor a job-level affinity preference (§III-A):
///
/// * [`PlacementConstraint::Spread`] — fault tolerance: prefer one worker
///   per rack, round-robin across racks;
/// * [`PlacementConstraint::Colocate`] — data locality: prefer the rack
///   holding the most candidates.
///
/// Preferences are advisory (the paper's affinity constraints are
/// preferences, not requirements): every input worker is kept, only the
/// order changes — callers that consume a prefix therefore honor the
/// preference when capacity allows.
pub fn apply_placement_preference(
    state: &SimState,
    targets: Vec<WorkerId>,
    placement: PlacementConstraint,
) -> Vec<WorkerId> {
    if targets.len() < 2 || placement == PlacementConstraint::None {
        return targets;
    }
    let machines = state.feasibility.machines();
    // Group by rack with a linear probe: candidate lists are a handful of
    // workers, where a Vec beats hashing. Insertion order within a rack is
    // preserved (it is part of the deterministic output order).
    let mut racks: Vec<(u32, Vec<WorkerId>)> = Vec::new();
    for &w in &targets {
        let rack = machines[w.index()].rack;
        match racks.iter_mut().find(|(r, _)| *r == rack) {
            Some((_, members)) => members.push(w),
            None => racks.push((rack, vec![w])),
        }
    }
    match placement {
        PlacementConstraint::Spread => {
            // Deterministic rack order, then round-robin one worker per
            // rack per round.
            racks.sort_by_key(|(rack, _)| *rack);
            let mut out = Vec::with_capacity(targets.len());
            let mut round = 0usize;
            loop {
                let mut any = false;
                for (_, members) in &racks {
                    if let Some(&w) = members.get(round) {
                        out.push(w);
                        any = true;
                    }
                }
                if !any {
                    break;
                }
                round += 1;
            }
            out
        }
        PlacementConstraint::Colocate => {
            // Largest rack first (ties toward lower rack id).
            racks.sort_by_key(|(rack, members)| (std::cmp::Reverse(members.len()), *rack));
            racks.into_iter().flat_map(|(_, members)| members).collect()
        }
        PlacementConstraint::None => targets,
    }
}

/// Samples up to `count` distinct workers for a job's constraint set,
/// excluding workers for which `exclude` returns true, and ordering the
/// result to honor the set's affinity preference.
///
/// Fallback ladder:
/// 1. full constraint set, honoring `exclude`;
/// 2. full constraint set, ignoring `exclude` (the exclusion is advisory —
///    e.g. Eagle's divide — never correctness);
/// 3. hard constraints only (soft constraints dropped, slowdown applied);
/// 4. under fault injection only: the same two sets ignoring worker
///    aliveness — every feasible worker may be down mid-outage, and a probe
///    sent to a dead worker just bounces into the engine's retry path;
/// 5. `None` — the job is hard-unsatisfiable on this cluster.
pub fn choose_targets(
    ctx: &mut SimCtx<'_>,
    set: &ConstraintSet,
    count: usize,
    mut exclude: impl FnMut(u32) -> bool,
) -> Option<Placement> {
    // Affinity preferences profit from a wider candidate pool to pick
    // racks from.
    let sample = if set.placement() == PlacementConstraint::None {
        count
    } else {
        count * 2
    };
    let arrange = |state: &SimState, targets: Vec<WorkerId>| {
        apply_placement_preference(state, targets, set.placement())
    };
    let targets = ctx.sample_feasible_workers_excluding(set, sample, &mut exclude);
    if !targets.is_empty() {
        let targets = arrange(ctx.state(), targets);
        return Some(Placement::Full(targets));
    }
    let targets = ctx.sample_feasible_workers(set, sample);
    if !targets.is_empty() {
        let targets = arrange(ctx.state(), targets);
        return Some(Placement::Full(targets));
    }
    let hard = set.hard_only();
    let targets = ctx.sample_feasible_workers(&hard, sample);
    if !targets.is_empty() {
        let targets = arrange(ctx.state(), targets);
        return Some(Placement::HardOnly(targets, relaxation_slowdown(set)));
    }
    // Gated on fault injection: with faults disabled these rungs are never
    // reached for satisfiable jobs, and skipping them keeps unsatisfiable
    // jobs from consuming extra RNG draws.
    if ctx.config().faults.is_active() {
        let targets = ctx.sample_feasible_workers_any(set, sample);
        if !targets.is_empty() {
            let targets = arrange(ctx.state(), targets);
            return Some(Placement::Full(targets));
        }
        let targets = ctx.sample_feasible_workers_any(&hard, sample);
        if !targets.is_empty() {
            let targets = arrange(ctx.state(), targets);
            return Some(Placement::HardOnly(targets, relaxation_slowdown(set)));
        }
    }
    None
}

/// Sends `count` speculative probes for `job` round-robin over `placement`'s
/// workers, applying its slowdown, and records the effective constraint set
/// if soft constraints were dropped.
pub fn send_speculative_probes(
    ctx: &mut SimCtx<'_>,
    job: JobId,
    placement: &Placement,
    count: usize,
) {
    if let Placement::HardOnly(..) = placement {
        let hard = ctx.job(job).constraints.hard_only();
        ctx.job_mut(job).effective_constraints = hard;
    }
    let slowdown = placement.slowdown();
    let workers = placement.workers();
    for i in 0..count {
        let worker = workers[i % workers.len()];
        let mut probe = ctx.new_probe(job);
        probe.slowdown = slowdown;
        ctx.send_probe(worker, probe);
    }
}

/// Estimated work queued at a worker, microseconds: remaining runtime of the
/// executing task, plus bound task durations, plus the estimated durations
/// of speculative probes.
///
/// O(slots), not O(queue): both queue components are aggregates the worker
/// maintains incrementally ([`phoenix_sim::Worker::queued_bound_work_us`],
/// [`phoenix_sim::Worker::queued_spec_est_us`]).
pub fn estimated_queue_work_us(state: &SimState, worker: WorkerId) -> u64 {
    let w = &state.workers[worker.index()];
    let mut total = w.queued_bound_work_us() + w.queued_spec_est_us();
    for running in w.running_tasks() {
        total += running.finish_at.since(state.now).as_micros();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{
        Constraint, ConstraintKind, ConstraintOp, FeasibilityIndex, MachinePopulation,
    };
    use phoenix_sim::{RandomScheduler, SimConfig, Simulation};
    use phoenix_traces::{TraceGenerator, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn relaxation_slowdown_uses_max_table_ii_factor() {
        let set = ConstraintSet::from_constraints(vec![
            Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 2_500),
            Constraint::soft(ConstraintKind::EthernetSpeed, ConstraintOp::Gt, 900),
        ]);
        // Ethernet 1.91 > clock 1.76.
        assert!((relaxation_slowdown(&set) - 1.91).abs() < 1e-9);
        assert_eq!(relaxation_slowdown(&ConstraintSet::unconstrained()), 1.0);
    }

    #[test]
    fn placement_accessors() {
        let full = Placement::Full(vec![WorkerId(1)]);
        assert_eq!(full.slowdown(), 1.0);
        assert_eq!(full.workers(), &[WorkerId(1)]);
        let hard = Placement::HardOnly(vec![WorkerId(2)], 1.9);
        assert_eq!(hard.slowdown(), 1.9);
    }

    #[test]
    fn spread_prefers_distinct_racks() {
        use phoenix_constraints::AttributeVector;
        // 3 racks × 3 workers each.
        let machines: Vec<AttributeVector> = (0..9u32)
            .map(|i| AttributeVector::builder().rack(i / 3).build())
            .collect();
        let trace = phoenix_traces::Trace::new("t", vec![]);
        let state = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(RandomScheduler::new(1)),
            1,
        )
        .into_state_for_tests();
        // All of rack 0, then two from rack 1, one from rack 2.
        let targets = vec![0, 1, 2, 3, 4, 6].into_iter().map(WorkerId).collect();
        let spread = apply_placement_preference(
            &state,
            targets,
            phoenix_constraints::PlacementConstraint::Spread,
        );
        // First three picks cover all three racks.
        let racks: Vec<u32> = spread[..3]
            .iter()
            .map(|w| state.feasibility.machines()[w.index()].rack)
            .collect();
        let mut sorted = racks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "spread prefix must cover racks: {racks:?}");
        assert_eq!(spread.len(), 6, "no worker lost");
    }

    #[test]
    fn colocate_prefers_the_biggest_rack() {
        use phoenix_constraints::AttributeVector;
        let machines: Vec<AttributeVector> = (0..9u32)
            .map(|i| AttributeVector::builder().rack(i / 3).build())
            .collect();
        let trace = phoenix_traces::Trace::new("t", vec![]);
        let state = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(RandomScheduler::new(1)),
            1,
        )
        .into_state_for_tests();
        // One from rack 0, all three from rack 1.
        let targets = vec![0, 3, 4, 5].into_iter().map(WorkerId).collect();
        let colocated = apply_placement_preference(
            &state,
            targets,
            phoenix_constraints::PlacementConstraint::Colocate,
        );
        let first_racks: Vec<u32> = colocated[..3]
            .iter()
            .map(|w| state.feasibility.machines()[w.index()].rack)
            .collect();
        assert_eq!(first_racks, vec![1, 1, 1], "{colocated:?}");
        assert_eq!(colocated.len(), 4);
    }

    #[test]
    fn no_preference_is_identity() {
        use phoenix_constraints::AttributeVector;
        let machines: Vec<AttributeVector> = (0..4u32)
            .map(|i| AttributeVector::builder().rack(i).build())
            .collect();
        let trace = phoenix_traces::Trace::new("t", vec![]);
        let state = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(RandomScheduler::new(1)),
            1,
        )
        .into_state_for_tests();
        let targets: Vec<WorkerId> = vec![2, 0, 3].into_iter().map(WorkerId).collect();
        let same = apply_placement_preference(
            &state,
            targets.clone(),
            phoenix_constraints::PlacementConstraint::None,
        );
        assert_eq!(same, targets);
    }

    #[test]
    fn estimated_queue_work_accounts_running_bound_and_speculative() {
        // Build a tiny simulation to obtain a real SimState.
        let profile = TraceProfile::yahoo();
        let mut rng = StdRng::seed_from_u64(1);
        let cluster = MachinePopulation::generate(profile.population.clone(), 4, &mut rng);
        let trace = TraceGenerator::new(profile, 1).generate(3, 4, 0.3);
        let sim = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(RandomScheduler::new(1)),
            1,
        );
        // Fresh state: all queues empty.
        let state = sim.state();
        assert_eq!(estimated_queue_work_us(state, WorkerId(0)), 0);
    }
}
