//! SRPT queue ordering with a starvation bound.
//!
//! Eagle (and Yaq-d) reorder worker queues so that tasks with the Shortest
//! Remaining Processing Time run first, bounded by a per-probe *slack*: a
//! probe that has already been bypassed `slack_threshold` times cannot be
//! overtaken again (§IV-B, §V-A of the Phoenix paper; the same mechanism
//! appears in Eagle).
//!
//! The implementation reorders *on insertion*: the probe at the tail is
//! promoted to its SRPT position, never crossing a slack-exhausted probe or
//! the early-bound probes of the centralized path.

use phoenix_sim::{SimState, Worker, WorkerId};

/// Estimated service time of a queued probe, microseconds: the bound task's
/// duration for early-bound probes, the job's estimated task duration
/// (snapshotted on the probe at creation) for speculative ones.
pub fn probe_estimate_us(state: &SimState, probe: &phoenix_sim::Probe) -> u64 {
    let _ = state; // estimate now travels on the probe; signature kept stable
    probe.estimate_us()
}

/// Applies SRPT insertion to the tail probe of `worker`'s queue: promotes it
/// over queued probes with strictly larger estimates whose bypass budget
/// remains. Returns the number of probes bypassed (0 when no reordering
/// happened).
///
/// Call from [`phoenix_sim::Scheduler::on_probe_enqueued`], when the new
/// probe is guaranteed to sit at the tail.
pub fn srpt_insert_tail(state: &mut SimState, worker: WorkerId, slack_threshold: u32) -> usize {
    let tail = {
        let w = &state.workers[worker.index()];
        match w.queue_len() {
            0 => return 0,
            n => n - 1,
        }
    };
    let new_est = probe_estimate_us(state, &state.workers[worker.index()].queue()[tail]);
    // Find the promotion target: walk backwards from the tail while the
    // preceding probe is strictly longer and still bypassable.
    let mut to = tail;
    {
        let w = &state.workers[worker.index()];
        while to > 0 {
            let prev = &w.queue()[to - 1];
            let prev_est = prev.estimate_us();
            if prev_est > new_est && prev.bypass_count < slack_threshold {
                to -= 1;
            } else {
                break;
            }
        }
    }
    let moved = state.workers[worker.index()].promote(tail, to);
    if moved > 0 {
        state.metrics.counters.srpt_reordered_tasks += 1;
    } else if to == tail && tail > 0 {
        // Check whether the slack bound (rather than SRPT order) pinned the
        // probe: the predecessor was longer but exhausted.
        let w = &state.workers[worker.index()];
        let prev = &w.queue()[tail - 1];
        let prev_est = prev.estimate_us();
        if prev_est > new_est && prev.bypass_count >= slack_threshold {
            state.metrics.counters.starvation_suppressions += 1;
        }
    }
    moved
}

/// Whether a queue is SRPT-ordered *modulo* slack-pinned probes: every
/// adjacent inversion (a longer probe directly ahead of a shorter one) must
/// be explained by the longer probe having exhausted its bypass budget.
/// Used by tests and property checks.
pub fn is_srpt_ordered_modulo_slack(
    state: &SimState,
    worker: &Worker,
    slack_threshold: u32,
) -> bool {
    let q = worker.queue();
    for i in 1..q.len() {
        let prev = probe_estimate_us(state, &q[i - 1]);
        let cur = probe_estimate_us(state, &q[i]);
        if prev > cur && q[i - 1].bypass_count < slack_threshold {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation, PopulationProfile};
    use phoenix_sim::{Probe, ProbeId, SimConfig, SimTime, Simulation};
    use phoenix_traces::{Job, JobId, Trace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a state whose jobs 0..n have estimated durations `ests` (s).
    fn state_with_jobs(ests: &[f64]) -> phoenix_sim::SimState {
        let mut rng = StdRng::seed_from_u64(1);
        let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 2, &mut rng);
        let jobs: Vec<Job> = ests
            .iter()
            .enumerate()
            .map(|(i, &e)| Job {
                id: JobId(i as u32),
                arrival_s: 0.0,
                task_durations_s: vec![e],
                estimated_task_duration_s: e,
                constraints: Default::default(),
                short: true,
                user: 0,
            })
            .collect();
        let trace = Trace::new("t", jobs);
        let sim = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(phoenix_sim::RandomScheduler::new(1)),
            1,
        );
        sim.into_state_for_tests()
    }

    fn push_probe(state: &mut phoenix_sim::SimState, worker: WorkerId, job: u32) {
        let probe = Probe {
            id: ProbeId(job as u64),
            job: JobId(job),
            bound_duration_us: None,
            est_duration_us: state.jobs[job as usize].estimated_task_us,
            slowdown: 1.0,
            enqueued_at: SimTime::ZERO,
            bypass_count: 0,
            migrations: 0,
            retries: 0,
        };
        state.workers[worker.index()].enqueue(probe);
    }

    #[test]
    fn srpt_promotes_short_over_long() {
        let mut state = state_with_jobs(&[30.0, 20.0, 5.0]);
        let w = WorkerId(0);
        for j in 0..3 {
            push_probe(&mut state, w, j);
            srpt_insert_tail(&mut state, w, 5);
        }
        let order: Vec<u32> = state.workers[0].queue().iter().map(|p| p.job.0).collect();
        assert_eq!(order, vec![2, 1, 0], "shortest job first");
        assert!(state.metrics.counters.srpt_reordered_tasks >= 2);
        assert!(is_srpt_ordered_modulo_slack(&state, &state.workers[0], 5));
    }

    #[test]
    fn srpt_is_stable_for_equal_estimates() {
        let mut state = state_with_jobs(&[10.0, 10.0]);
        let w = WorkerId(0);
        push_probe(&mut state, w, 0);
        srpt_insert_tail(&mut state, w, 5);
        push_probe(&mut state, w, 1);
        srpt_insert_tail(&mut state, w, 5);
        let order: Vec<u32> = state.workers[0].queue().iter().map(|p| p.job.0).collect();
        assert_eq!(order, vec![0, 1], "FIFO among equals");
    }

    #[test]
    fn slack_threshold_pins_probes() {
        let mut state = state_with_jobs(&[100.0, 1.0, 2.0, 3.0]);
        let w = WorkerId(0);
        push_probe(&mut state, w, 0); // long probe at head
        srpt_insert_tail(&mut state, w, 2);
        // Two short probes bypass the long one, exhausting its slack of 2.
        for j in [1u32, 2] {
            push_probe(&mut state, w, j);
            srpt_insert_tail(&mut state, w, 2);
        }
        assert_eq!(state.workers[0].queue()[2].job.0, 0);
        assert_eq!(state.workers[0].queue()[2].bypass_count, 2);
        // A third short probe must NOT bypass it.
        push_probe(&mut state, w, 3);
        srpt_insert_tail(&mut state, w, 2);
        let order: Vec<u32> = state.workers[0].queue().iter().map(|p| p.job.0).collect();
        assert_eq!(order, vec![1, 2, 0, 3], "job 0 pinned by slack bound");
        assert_eq!(state.metrics.counters.starvation_suppressions, 1);
    }

    #[test]
    fn empty_queue_is_noop() {
        let mut state = state_with_jobs(&[1.0]);
        assert_eq!(srpt_insert_tail(&mut state, WorkerId(0), 5), 0);
    }
}
