//! Eagle-C: Hawk plus SSS, SBP and SRPT reordering.
//!
//! Eagle (Delgado et al., SoCC'16) extends Hawk's hybrid design with three
//! mechanisms — all reproduced here, all constraint-aware:
//!
//! * **Succinct State Sharing / divide**: the central scheduler shares a bit
//!   vector of workers occupied by long work; short-job probes avoid those
//!   workers, eliminating most head-of-line blocking.
//! * **Sticky Batch Probing (SBP)**: a worker that finishes a short task of
//!   a job with unlaunched tasks immediately serves the same job again,
//!   amortizing one probe over several tasks.
//! * **SRPT queue reordering** with a starvation bound: shorter estimated
//!   tasks are served first, but a probe bypassed `slack_threshold` times
//!   becomes un-bypassable.
//!
//! This is the paper's primary baseline (Phoenix is built on top of Eagle,
//! replacing SRPT with CRV-based reordering under contention).

use phoenix_sim::{Scheduler, SimCtx, SimState, WorkerId};
use phoenix_traces::JobId;

use crate::central::CentralPlanner;
use crate::config::BaselineConfig;
use crate::placement::{choose_targets, send_speculative_probes};
use crate::srpt::srpt_insert_tail;
use crate::sss::LongBusyMap;
use crate::stealing::try_steal;

/// The Eagle-C scheduler.
#[derive(Debug)]
pub struct EagleC {
    config: BaselineConfig,
    planner: Option<CentralPlanner>,
    long_busy: LongBusyMap,
    /// Disables SBP (for ablations).
    pub sticky_batch_probing: bool,
    /// Disables SRPT reordering (for ablations).
    pub srpt_reordering: bool,
}

impl EagleC {
    /// Creates Eagle-C with the given shared configuration.
    pub fn new(config: BaselineConfig) -> Self {
        EagleC {
            config,
            planner: None,
            long_busy: LongBusyMap::default(),
            sticky_batch_probing: true,
            srpt_reordering: true,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// The current long-busy map (SSS state).
    pub fn long_busy(&self) -> &LongBusyMap {
        &self.long_busy
    }

    fn ensure_initialized(&mut self, ctx: &SimCtx<'_>) {
        if self.long_busy.is_empty() && ctx.num_workers() > 0 {
            self.long_busy = LongBusyMap::new(ctx.num_workers());
            let reserved = self.config.reserved_workers(ctx.num_workers());
            self.planner = Some(CentralPlanner::new(reserved));
        }
    }

    fn is_short_job(&self, state_est_us: u64) -> bool {
        self.config.is_short(state_est_us)
    }

    /// Places a short job's probes, avoiding long-busy workers (divide).
    fn place_short(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let (set, tasks) = {
            let j = ctx.job(job);
            (j.effective_constraints.clone(), j.num_tasks())
        };
        let want = tasks * self.config.probe_ratio as usize;
        let long_busy = &self.long_busy;
        match choose_targets(ctx, &set, want, |w| long_busy.is_long_busy(WorkerId(w))) {
            Some(placement) => send_speculative_probes(ctx, job, &placement, want),
            None => ctx.fail_job(job),
        }
    }

    /// Places a long job through the central planner and records SSS state.
    fn place_long(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let planner = self.planner.clone().expect("initialized on first arrival");
        if let Some(placements) = planner.place_job(ctx, job) {
            for worker in placements {
                self.long_busy.add(worker);
            }
        }
    }
}

impl Scheduler for EagleC {
    fn name(&self) -> &str {
        "eagle-c"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        self.ensure_initialized(ctx);
        let est = ctx.job(job).estimated_task_us;
        if self.is_short_job(est) {
            self.place_short(job, ctx);
        } else {
            self.place_long(job, ctx);
        }
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        if self.srpt_reordering {
            srpt_insert_tail(ctx.state_mut(), worker, self.config.slack_threshold);
        }
    }

    fn select_probe(&mut self, worker: WorkerId, state: &SimState) -> Option<usize> {
        if state.workers[worker.index()].queue_len() == 0 {
            None
        } else {
            Some(0)
        }
    }

    fn on_task_finish(
        &mut self,
        worker: WorkerId,
        job: JobId,
        duration_us: u64,
        ctx: &mut SimCtx<'_>,
    ) {
        // SSS bookkeeping: a finished long task frees its long-busy mark.
        let est = ctx.job(job).estimated_task_us;
        let job_is_short = self.is_short_job(est);
        if !job_is_short {
            self.long_busy.release(worker);
        }
        let _ = duration_us;
        // Sticky batch probing: keep serving the same short job.
        if self.sticky_batch_probing && job_is_short && ctx.job(job).has_pending() {
            let probe = ctx.new_probe(job);
            ctx.counters_mut().sbp_continuations += 1;
            ctx.enqueue_front(worker, probe);
            ctx.touch(worker);
            return;
        }
        // Otherwise behave like Hawk: idle and empty → steal.
        if ctx.worker(worker).queue_len() == 0 {
            let stolen = try_steal(
                ctx,
                worker,
                self.config.steal_attempts,
                self.config.short_cutoff.as_micros(),
            );
            if stolen > 0 {
                ctx.touch(worker);
            }
        }
    }

    fn on_worker_crash(&mut self, worker: WorkerId, _ctx: &mut SimCtx<'_>) {
        // Every centrally-placed long task there died with the worker (and
        // its queued long probes were dropped): clear the whole SSS mark.
        // The map is sized lazily on first arrival; a crash may beat it.
        if !self.long_busy.is_empty() {
            self.long_busy.clear(worker);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
    use phoenix_metrics::JobClass;
    use phoenix_sim::{SimConfig, Simulation};
    use phoenix_traces::{TraceGenerator, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(
        jobs: usize,
        nodes: usize,
        util: f64,
        seed: u64,
    ) -> (
        Vec<phoenix_constraints::AttributeVector>,
        phoenix_traces::Trace,
        f64,
    ) {
        let profile = TraceProfile::yahoo();
        let cutoff = profile.short_cutoff_s();
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
        let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
        (cluster.into_machines(), trace, cutoff)
    }

    fn run_eagle(jobs: usize, nodes: usize, util: f64, seed: u64) -> phoenix_sim::SimResult {
        let (machines, trace, cutoff) = build(jobs, nodes, util, seed);
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(EagleC::new(BaselineConfig::with_cutoff_s(cutoff))),
            seed,
        )
        .run()
    }

    #[test]
    fn completes_all_jobs() {
        let r = run_eagle(400, 100, 0.6, 1);
        assert_eq!(r.incomplete_jobs, 0);
        assert_eq!(r.counters.jobs_completed + r.counters.jobs_failed, 400);
    }

    #[test]
    fn srpt_reordering_is_active() {
        let r = run_eagle(800, 60, 0.9, 2);
        assert!(
            r.counters.srpt_reordered_tasks > 0,
            "SRPT must reorder under load"
        );
    }

    #[test]
    fn sbp_reduces_probe_volume() {
        let (machines, trace, cutoff) = build(500, 80, 0.7, 3);
        let with_sbp = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines.clone()),
            &trace,
            Box::new(EagleC::new(BaselineConfig::with_cutoff_s(cutoff))),
            3,
        )
        .run();
        let mut eagle_no_sbp = EagleC::new(BaselineConfig::with_cutoff_s(cutoff));
        eagle_no_sbp.sticky_batch_probing = false;
        let without_sbp = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(eagle_no_sbp),
            3,
        )
        .run();
        // SBP serves extra tasks from existing probes; the network probe
        // count per launched task must not increase.
        assert!(
            with_sbp.counters.probes_sent <= without_sbp.counters.probes_sent,
            "SBP should not send more network probes"
        );
    }

    #[test]
    fn beats_hawk_for_short_job_tail_under_load() {
        let (machines, trace, cutoff) = build(1200, 60, 0.9, 5);
        let eagle = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines.clone()),
            &trace,
            Box::new(EagleC::new(BaselineConfig::with_cutoff_s(cutoff))),
            5,
        )
        .run();
        let hawk = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(crate::hawk::HawkC::new(BaselineConfig::with_cutoff_s(
                cutoff,
            ))),
            5,
        )
        .run();
        let ep99 = eagle.class_response_percentile(JobClass::Short, 99.0);
        let hp99 = hawk.class_response_percentile(JobClass::Short, 99.0);
        assert!(
            ep99 <= hp99,
            "eagle short p99 {ep99} must beat hawk {hp99} (paper's premise)"
        );
    }
}

#[cfg(test)]
mod sss_behavior_tests {
    use super::*;
    use phoenix_constraints::{AttributeVector, ConstraintSet, FeasibilityIndex};
    use phoenix_sim::{SimConfig, Simulation};
    use phoenix_traces::{Job, JobId, Trace};

    /// One long job fills workers; subsequent short probes must avoid the
    /// long-busy workers (SSS divide).
    #[test]
    fn short_probes_avoid_long_busy_workers() {
        let machines = vec![AttributeVector::default(); 10];
        let mut jobs = vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            // 5 long tasks occupy 5 of the 9 non-reserved workers.
            task_durations_s: vec![2_000.0; 5],
            estimated_task_duration_s: 2_000.0,
            constraints: ConstraintSet::unconstrained(),
            short: false,
            user: 0,
        }];
        for i in 1..40u32 {
            jobs.push(Job {
                id: JobId(i),
                arrival_s: 10.0 + f64::from(i),
                task_durations_s: vec![5.0],
                estimated_task_duration_s: 5.0,
                constraints: ConstraintSet::unconstrained(),
                short: true,
                user: 0,
            });
        }
        let trace = Trace::new("t", jobs);
        let result = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(EagleC::new(BaselineConfig::with_cutoff_s(950.0))),
            1,
        )
        .run();
        assert_eq!(result.incomplete_jobs, 0);
        // With divide working, no short job ever waits behind a 2,000 s
        // long task: worst-case short response stays far below it.
        let mut short = result
            .metrics
            .job_response
            .by_class(phoenix_metrics::JobClass::Short);
        assert!(
            short.max() < 500.0,
            "short jobs must dodge long-busy workers: max {}",
            short.max()
        );
    }
}
