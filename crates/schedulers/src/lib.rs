//! Baseline datacenter schedulers for the Phoenix reproduction.
//!
//! Phoenix's evaluation compares against constraint-extended versions of
//! three published schedulers plus Yaq-d (Fig. 2, Figs. 7–11):
//!
//! * [`SparrowC`] — Sparrow (SOSP'13): fully distributed batch sampling with
//!   late binding; FIFO worker queues; constraints handled "trivially" by
//!   sampling only among feasible workers.
//! * [`HawkC`] — Hawk (ATC'15): hybrid — centralized least-loaded placement
//!   for long jobs outside a reserved short-job partition, distributed
//!   probes for short jobs, plus random work stealing by idle workers.
//! * [`EagleC`] — Eagle (SoCC'16): Hawk plus Succinct State Sharing (short
//!   probes avoid workers occupied by long jobs), Sticky Batch Probing, and
//!   SRPT queue reordering with a starvation bound.
//! * [`YaqD`] — Yaq-d (EuroSys'16): distributed *early binding* into
//!   bounded-length worker queues with SRPT reordering.
//!
//! The building blocks (shared with `phoenix-core`):
//!
//! * [`config::BaselineConfig`] — probe ratio, short/long cutoff, slack
//!   threshold, partition and stealing parameters.
//! * [`placement`] — constraint-aware target selection with the fallback
//!   ladder the paper calls "trivial" handling.
//! * [`central::CentralPlanner`] — least-estimated-work placement for the
//!   centralized (long job) side of the hybrids.
//! * [`srpt`] — SRPT insertion with per-probe starvation (bypass) bounds.
//! * [`sss::LongBusyMap`] — Eagle's shared bit vector of long-occupied
//!   workers.
//! * [`stealing`] — Hawk's constraint-aware random work stealing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod central;
pub mod choosy;
pub mod config;
pub mod eagle;
pub mod hawk;
pub mod mercury;
pub mod monolithic;
pub mod placement;
pub mod sparrow;
pub mod srpt;
pub mod sss;
pub mod stealing;
pub mod yaqd;

pub use central::CentralPlanner;
pub use choosy::ChoosyC;
pub use config::BaselineConfig;
pub use eagle::EagleC;
pub use hawk::HawkC;
pub use mercury::MercuryC;
pub use monolithic::MonolithicC;
pub use placement::{
    apply_placement_preference, choose_targets, estimated_queue_work_us, Placement,
};
pub use sparrow::SparrowC;
pub use sss::LongBusyMap;
pub use yaqd::YaqD;
