//! The centralized placement path of the hybrid schedulers.
//!
//! Hawk, Eagle and Phoenix schedule **long jobs centrally**: every task is
//! early-bound to the feasible worker with the least estimated queued work,
//! skipping the partition reserved for short tasks. This module implements
//! that planner.

use phoenix_sim::{SimCtx, WorkerId};
use phoenix_traces::JobId;

use crate::placement::{estimated_queue_work_us, relaxation_slowdown};

/// Least-estimated-work centralized planner.
///
/// Stateless: load estimates are recomputed from the live simulation state
/// at each placement (the central scheduler of Hawk/Eagle has a global
/// view).
#[derive(Debug, Clone, Default)]
pub struct CentralPlanner {
    /// Workers with index below this bound are reserved for short tasks and
    /// never receive centrally-placed long tasks.
    pub reserved_workers: usize,
}

impl CentralPlanner {
    /// Creates a planner that skips the first `reserved_workers` workers.
    pub fn new(reserved_workers: usize) -> Self {
        CentralPlanner { reserved_workers }
    }

    /// Places every task of (long) `job` onto the least-loaded feasible
    /// workers outside the reserved partition, early-bound. Returns the
    /// worker chosen for each task (one entry per placed task), or `None`
    /// when the job is hard-unsatisfiable (the job is then failed).
    ///
    /// Placement spreads a job's tasks: each task goes to the currently
    /// least-loaded candidate, accounting for the work this very job has
    /// just queued.
    pub fn place_job(&self, ctx: &mut SimCtx<'_>, job: JobId) -> Option<Vec<WorkerId>> {
        let set = ctx.job(job).effective_constraints.clone();
        let mut slowdown = 1.0f64;
        let mut feasible: Vec<WorkerId> = ctx
            .feasibility()
            .feasible(&set)
            .iter()
            .map(|&w| WorkerId(w))
            .filter(|w| w.index() >= self.reserved_workers)
            .collect();
        if feasible.is_empty() {
            // Reserved partition may have swallowed every feasible worker;
            // correctness beats the partition rule.
            feasible = ctx
                .feasibility()
                .feasible(&set)
                .iter()
                .map(|&w| WorkerId(w))
                .collect();
        }
        if feasible.is_empty() {
            let hard = set.hard_only();
            feasible = ctx
                .feasibility()
                .feasible(&hard)
                .iter()
                .map(|&w| WorkerId(w))
                .collect();
            if feasible.is_empty() {
                ctx.fail_job(job);
                return None;
            }
            slowdown = relaxation_slowdown(&set);
            ctx.job_mut(job).effective_constraints = hard;
        }

        // Under fault injection, prefer live workers when any exist; if the
        // whole feasible set is down, keep it — probes bounced off dead
        // workers re-enter placement via the retry path. (Pure filter, no
        // RNG: draw-neutral when every worker is alive.)
        if ctx.config().faults.is_active() {
            let alive: Vec<WorkerId> = feasible
                .iter()
                .copied()
                .filter(|&w| ctx.worker(w).is_alive())
                .collect();
            if !alive.is_empty() {
                feasible = alive;
            }
        }

        // Load-ordered placement with per-placement adjustment: track the
        // extra work we assign within this job so its tasks spread.
        let mut loads: Vec<(u64, WorkerId)> = feasible
            .iter()
            .map(|&w| (estimated_queue_work_us(ctx.state(), w), w))
            .collect();
        let mut placed = Vec::with_capacity(ctx.job(job).pending_tasks());
        while ctx.job(job).has_pending() {
            let duration = ctx.job_mut(job).take_task();
            let effective = ((duration as f64) * slowdown).round() as u64;
            // Least-loaded candidate.
            let (best_idx, _) = loads
                .iter()
                .enumerate()
                .min_by_key(|(_, (load, w))| (*load, w.0))
                .expect("feasible is non-empty");
            let worker = loads[best_idx].1;
            loads[best_idx].0 += effective.max(1);
            let mut probe = ctx.new_bound_probe(job, duration);
            probe.slowdown = slowdown;
            ctx.send_probe(worker, probe);
            placed.push(worker);
        }
        Some(placed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation, PopulationProfile};
    use phoenix_sim::{Scheduler, SimConfig, Simulation};
    use phoenix_traces::{Job, JobId, Trace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A scheduler that places everything through the central planner.
    #[derive(Debug)]
    struct CentralOnly {
        planner: CentralPlanner,
    }

    impl Scheduler for CentralOnly {
        fn name(&self) -> &str {
            "central-only"
        }

        fn on_job_arrival(&mut self, job: JobId, ctx: &mut phoenix_sim::SimCtx<'_>) {
            self.planner.place_job(ctx, job);
        }
    }

    fn run(reserved: usize, jobs: Vec<Job>, nodes: usize) -> phoenix_sim::SimResult {
        let mut rng = StdRng::seed_from_u64(3);
        let cluster =
            MachinePopulation::generate(PopulationProfile::enterprise_like(), nodes, &mut rng);
        let trace = Trace::new("t", jobs);
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(CentralOnly {
                planner: CentralPlanner::new(reserved),
            }),
            3,
        )
        .run()
    }

    fn job(id: u32, tasks: usize, dur: f64) -> Job {
        Job {
            id: JobId(id),
            arrival_s: 0.0,
            task_durations_s: vec![dur; tasks],
            estimated_task_duration_s: dur,
            constraints: Default::default(),
            short: false,
            user: 0,
        }
    }

    #[test]
    fn all_tasks_complete_and_are_bound() {
        let result = run(0, vec![job(0, 20, 5.0), job(1, 10, 3.0)], 10);
        assert_eq!(result.counters.jobs_completed, 2);
        assert_eq!(result.counters.bound_placements, 30);
        assert_eq!(result.counters.probes_sent, 0);
        assert_eq!(result.incomplete_jobs, 0);
    }

    #[test]
    fn load_spreading_parallelizes_one_job() {
        // 10 equal tasks on 10 free workers must finish in ~1 task time,
        // not serially.
        let result = run(0, vec![job(0, 10, 10.0)], 10);
        let makespan = result.metrics.makespan.as_secs_f64();
        assert!(
            makespan < 12.0,
            "tasks must spread across workers, makespan {makespan}"
        );
    }

    #[test]
    fn reserved_partition_is_avoided() {
        // 4 of 8 workers reserved; jobs must still complete using the rest.
        let result = run(4, vec![job(0, 8, 2.0)], 8);
        assert_eq!(result.counters.jobs_completed, 1);
        // With only 4 usable workers and 8 tasks, makespan ~2 rounds.
        assert!(result.metrics.makespan.as_secs_f64() >= 4.0);
    }
}
