//! Hawk-C: hybrid scheduling with a short-task partition and work stealing.
//!
//! Hawk (Delgado et al., ATC'15):
//!
//! * **Long jobs** (estimated task duration above the cutoff) are placed by
//!   a centralized scheduler on the least-loaded feasible workers, never
//!   inside the partition reserved for short tasks.
//! * **Short jobs** are scheduled in a distributed fashion: `probe_ratio`
//!   probes per task on random feasible workers (anywhere in the cluster).
//! * **Work stealing**: a worker that goes idle with an empty queue contacts
//!   random victims and steals the short probes stuck behind a long task.
//!
//! Queues are FIFO (Table I: Hawk has no queue reordering). The `-C`
//! extension restricts sampling and stealing to constraint-feasible workers.

use phoenix_sim::{Scheduler, SimCtx, WorkerId};
use phoenix_traces::JobId;

use crate::central::CentralPlanner;
use crate::config::BaselineConfig;
use crate::placement::{choose_targets, send_speculative_probes};
use crate::stealing::try_steal;

/// The Hawk-C scheduler.
#[derive(Debug, Clone)]
pub struct HawkC {
    config: BaselineConfig,
    planner: Option<CentralPlanner>,
}

impl HawkC {
    /// Creates Hawk-C with the given shared configuration.
    pub fn new(config: BaselineConfig) -> Self {
        HawkC {
            config,
            planner: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    fn planner(&mut self, ctx: &SimCtx<'_>) -> CentralPlanner {
        if self.planner.is_none() {
            let reserved = self.config.reserved_workers(ctx.num_workers());
            self.planner = Some(CentralPlanner::new(reserved));
        }
        self.planner.clone().expect("planner just initialized")
    }
}

impl Scheduler for HawkC {
    fn name(&self) -> &str {
        "hawk-c"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let (set, tasks, est) = {
            let j = ctx.job(job);
            (
                j.effective_constraints.clone(),
                j.num_tasks(),
                j.estimated_task_us,
            )
        };
        if !self.config.is_short(est) {
            let planner = self.planner(ctx);
            planner.place_job(ctx, job);
            return;
        }
        let want = tasks * self.config.probe_ratio as usize;
        match choose_targets(ctx, &set, want, |_| false) {
            Some(placement) => send_speculative_probes(ctx, job, &placement, want),
            None => ctx.fail_job(job),
        }
    }

    fn on_task_finish(
        &mut self,
        worker: WorkerId,
        _job: JobId,
        _duration_us: u64,
        ctx: &mut SimCtx<'_>,
    ) {
        // Idle with an empty queue: go steal.
        if ctx.worker(worker).queue_len() == 0 {
            let stolen = try_steal(
                ctx,
                worker,
                self.config.steal_attempts,
                self.config.short_cutoff.as_micros(),
            );
            if stolen > 0 {
                ctx.touch(worker);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
    use phoenix_metrics::JobClass;
    use phoenix_sim::{SimConfig, Simulation};
    use phoenix_traces::{TraceGenerator, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(jobs: usize, nodes: usize, util: f64, seed: u64) -> phoenix_sim::SimResult {
        let profile = TraceProfile::yahoo();
        let cutoff = profile.short_cutoff_s();
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
        let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(HawkC::new(BaselineConfig::with_cutoff_s(cutoff))),
            seed,
        )
        .run()
    }

    #[test]
    fn completes_all_jobs() {
        let r = run(400, 100, 0.6, 1);
        assert_eq!(r.incomplete_jobs, 0);
        assert_eq!(r.counters.jobs_completed + r.counters.jobs_failed, 400);
    }

    #[test]
    fn long_jobs_are_centrally_bound_short_jobs_probed() {
        let r = run(500, 100, 0.5, 2);
        assert!(r.counters.bound_placements > 0, "long jobs early-bind");
        assert!(r.counters.probes_sent > 0, "short jobs probe");
    }

    #[test]
    fn stealing_happens_under_load() {
        let r = run(800, 60, 0.9, 3);
        assert!(
            r.counters.stolen_probes > 0,
            "idle workers must steal under load"
        );
    }

    #[test]
    fn beats_sparrow_for_short_jobs_under_load() {
        let profile = TraceProfile::yahoo();
        let cutoff = profile.short_cutoff_s();
        let mut rng = StdRng::seed_from_u64(7);
        let cluster = MachinePopulation::generate(profile.population.clone(), 60, &mut rng);
        let machines = cluster.into_machines();
        let trace = TraceGenerator::new(profile, 7).generate(900, 60, 0.85);
        let hawk = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines.clone()),
            &trace,
            Box::new(HawkC::new(BaselineConfig::with_cutoff_s(cutoff))),
            7,
        )
        .run();
        let sparrow = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(crate::sparrow::SparrowC::new(
                BaselineConfig::with_cutoff_s(cutoff),
            )),
            7,
        )
        .run();
        let hawk_p90 = hawk.class_response_percentile(JobClass::Short, 90.0);
        let sparrow_p90 = sparrow.class_response_percentile(JobClass::Short, 90.0);
        assert!(
            hawk_p90 < sparrow_p90 * 1.1,
            "hawk p90 {hawk_p90} should not lose clearly to sparrow {sparrow_p90}"
        );
    }
}

#[cfg(test)]
mod partition_tests {
    use super::*;
    use phoenix_constraints::{AttributeVector, ConstraintSet, FeasibilityIndex};
    use phoenix_sim::{SimConfig, Simulation, WorkerId};
    use phoenix_traces::{Job, JobId, Trace};

    /// Long tasks never land in the reserved short partition (first 10 %
    /// of worker ids).
    #[test]
    fn long_jobs_avoid_the_reserved_partition() {
        let machines = vec![AttributeVector::default(); 20]; // 2 reserved
        let jobs = vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![1_500.0; 18],
            estimated_task_duration_s: 1_500.0,
            constraints: ConstraintSet::unconstrained(),
            short: false,
            user: 0,
        }];
        let trace = Trace::new("t", jobs);
        // Drive the sim manually so we can inspect which workers got busy.
        let sim = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(HawkC::new(BaselineConfig::with_cutoff_s(950.0))),
            1,
        );
        let result = sim.run();
        assert_eq!(result.incomplete_jobs, 0);
        // 18 long tasks across 18 usable workers: exactly one wave, so the
        // makespan equals one task duration. Had any task been queued onto
        // the 18 usable workers twice (because the partition was violated
        // into by fewer available machines... ) the makespan would double.
        assert!(
            (result.metrics.makespan.as_secs_f64() - 1_500.0).abs() < 5.0,
            "18 tasks on 18 non-reserved workers must run in one wave: {}",
            result.metrics.makespan.as_secs_f64()
        );
        // Explicit check through the planner: reserved ids excluded.
        let _ = WorkerId(0);
    }
}
