//! Hawk's constraint-aware random work stealing.
//!
//! When a Hawk worker goes idle with an empty queue, it contacts randomly
//! chosen workers; if a victim is executing a *long* task with *short*
//! (speculative) probes stuck behind it, the thief steals the probes it can
//! itself satisfy (the "-C" constraint extension) and requeues them locally
//! after a network delay.

use phoenix_sim::{Probe, ProfileScope, SimCtx, TraceRecord, WorkerId};
use rand::Rng;

/// Attempts one steal for idle `thief`. Visits up to `attempts` random
/// victims; steals from the first victim that is running a long-estimate
/// task and has speculative probes the thief satisfies. Returns the number
/// of probes stolen.
///
/// `is_long_task` decides whether a victim's running task counts as long
/// (Hawk steals only from behind long tasks).
pub fn try_steal(
    ctx: &mut SimCtx<'_>,
    thief: WorkerId,
    attempts: u32,
    is_long_task_us: u64,
) -> usize {
    let n = ctx.num_workers();
    if n <= 1 {
        return 0;
    }
    let started = ctx.state().profiler().begin();
    for _ in 0..attempts {
        let victim = WorkerId(ctx.rng().random_range(0..n) as u32);
        if victim == thief {
            continue;
        }
        // Victim must be executing a long task (head-of-line blocking is
        // what stealing exists to fix).
        let long_blocked = ctx
            .worker(victim)
            .running_tasks()
            .iter()
            .any(|task| task.duration_us >= is_long_task_us);
        if !long_blocked || ctx.worker(victim).queue_len() == 0 {
            continue;
        }
        let stolen = steal_feasible_probes(ctx, victim, thief);
        if !stolen.is_empty() {
            let count = stolen.len();
            ctx.counters_mut().stolen_probes += count as u64;
            let at_us = ctx.now().as_micros();
            ctx.state_mut().tracer_mut().emit(|| TraceRecord::Steal {
                at_us,
                victim: victim.0,
                thief: thief.0,
                probes: count as u32,
            });
            for probe in stolen {
                ctx.transfer_probe(thief, probe);
            }
            ctx.state_mut()
                .profiler_mut()
                .end(ProfileScope::Steal, started);
            return count;
        }
    }
    ctx.state_mut()
        .profiler_mut()
        .end(ProfileScope::Steal, started);
    0
}

/// Removes from `victim`'s queue every *speculative* probe whose job's
/// effective constraints `thief` satisfies, returning them.
fn steal_feasible_probes(ctx: &mut SimCtx<'_>, victim: WorkerId, thief: WorkerId) -> Vec<Probe> {
    // Collect feasibility decisions first (immutable pass), then remove.
    let steal_ids: Vec<_> = ctx
        .worker(victim)
        .queue()
        .iter()
        .filter(|p| !p.is_bound())
        .filter(|p| {
            let set = &ctx.job(p.job).effective_constraints;
            ctx.feasibility().is_feasible(thief.0, set)
        })
        .map(|p| p.id)
        .collect();
    steal_ids
        .into_iter()
        .filter_map(|id| ctx.remove_probe_by_id(victim, id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation, PopulationProfile};
    use phoenix_sim::{Scheduler, SimConfig, SimTime, Simulation};
    use phoenix_traces::{Job, JobId, Trace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Places the long job's task on worker 0 (bound) and piles every short
    /// probe behind it, then steals from an idle worker on wakeup.
    #[derive(Debug, Default)]
    struct StealFixture {
        stole: usize,
    }

    impl Scheduler for StealFixture {
        fn name(&self) -> &str {
            "steal-fixture"
        }

        fn on_job_arrival(&mut self, job: JobId, ctx: &mut phoenix_sim::SimCtx<'_>) {
            let is_long = ctx.job(job).estimated_task_us > 1_000_000;
            if is_long {
                let d = ctx.job_mut(job).take_task();
                let probe = ctx.new_bound_probe(job, d);
                ctx.send_probe(WorkerId(0), probe);
            } else {
                // All short probes pile onto worker 0 behind the long task.
                let probe = ctx.new_probe(job);
                ctx.send_probe(WorkerId(0), probe);
                // An idle worker tries to steal shortly after.
                ctx.schedule_wakeup(phoenix_sim::SimDuration::from_millis(10), 1);
            }
        }

        fn on_wakeup(&mut self, _token: u64, ctx: &mut phoenix_sim::SimCtx<'_>) {
            self.stole += try_steal(ctx, WorkerId(1), 16, 1_000_000);
            ctx.touch(WorkerId(1));
        }
    }

    #[test]
    fn idle_worker_steals_short_probes_behind_long_task() {
        let mut rng = StdRng::seed_from_u64(5);
        let cluster =
            MachinePopulation::generate(PopulationProfile::enterprise_like(), 4, &mut rng);
        let mut jobs = vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![100.0],
            estimated_task_duration_s: 100.0,
            constraints: Default::default(),
            short: false,
            user: 0,
        }];
        for i in 1..4u32 {
            jobs.push(Job {
                id: JobId(i),
                arrival_s: 0.1,
                task_durations_s: vec![1.0],
                estimated_task_duration_s: 1.0,
                constraints: Default::default(),
                short: true,
                user: 0,
            });
        }
        let trace = Trace::new("t", jobs);
        let result = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(StealFixture::default()),
            5,
        )
        .run();
        assert!(result.counters.stolen_probes > 0, "steal must trigger");
        assert_eq!(result.incomplete_jobs, 0);
        // Short jobs finish long before the 100 s long task would free
        // worker 0 — i.e. they ran on the thief.
        let makespan = result.metrics.makespan;
        assert!(makespan >= SimTime::from_secs_f64(100.0));
        let mut short_resp = result
            .metrics
            .job_response
            .by_class(phoenix_metrics::JobClass::Short);
        assert!(
            short_resp.max() < 50.0,
            "stolen short jobs must not wait for the long task: {}",
            short_resp.max()
        );
    }
}
