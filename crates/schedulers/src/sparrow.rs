//! Sparrow-C: fully distributed batch sampling with late binding.
//!
//! Sparrow (Ousterhout et al., SOSP'13) schedules every job the same way —
//! it is agnostic of task runtimes — by placing `probe_ratio × m` probes on
//! randomly sampled workers and letting late binding resolve which queues
//! actually serve tasks. Worker queues are FIFO; there is no reordering and
//! no stealing. The `-C` extension (§III-B of the Phoenix paper) samples
//! only among workers satisfying the task's constraints.

use phoenix_sim::{Scheduler, SimCtx};
use phoenix_traces::JobId;

use crate::config::BaselineConfig;
use crate::placement::{choose_targets, send_speculative_probes};

/// The Sparrow-C scheduler.
#[derive(Debug, Clone)]
pub struct SparrowC {
    config: BaselineConfig,
}

impl SparrowC {
    /// Creates Sparrow-C with the given shared configuration.
    pub fn new(config: BaselineConfig) -> Self {
        SparrowC { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }
}

impl Scheduler for SparrowC {
    fn name(&self) -> &str {
        "sparrow-c"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let (set, tasks) = {
            let j = ctx.job(job);
            (j.effective_constraints.clone(), j.num_tasks())
        };
        let want = tasks * self.config.probe_ratio as usize;
        match choose_targets(ctx, &set, want, |_| false) {
            Some(placement) => send_speculative_probes(ctx, job, &placement, want),
            None => ctx.fail_job(job),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
    use phoenix_metrics::JobClass;
    use phoenix_sim::{SimConfig, Simulation};
    use phoenix_traces::{TraceGenerator, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(jobs: usize, nodes: usize, util: f64, seed: u64) -> phoenix_sim::SimResult {
        let profile = TraceProfile::yahoo();
        let cutoff = profile.short_cutoff_s();
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
        let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(SparrowC::new(BaselineConfig::with_cutoff_s(cutoff))),
            seed,
        )
        .run()
    }

    #[test]
    fn completes_all_jobs() {
        let r = run(300, 100, 0.5, 1);
        assert_eq!(r.incomplete_jobs, 0);
        assert_eq!(r.counters.jobs_completed + r.counters.jobs_failed, 300);
    }

    #[test]
    fn sends_probe_ratio_probes_per_task() {
        let r = run(100, 100, 0.3, 2);
        // Tasks completed counts only non-failed jobs; every completed task
        // came from a probe and the rest were redundant.
        assert_eq!(
            r.counters.probes_sent,
            r.counters.tasks_completed + r.counters.redundant_probes
        );
        assert!(
            r.counters.redundant_probes > 0,
            "probe_ratio 2 must create redundancy"
        );
    }

    #[test]
    fn no_reordering_or_stealing() {
        let r = run(200, 80, 0.7, 3);
        assert_eq!(r.counters.srpt_reordered_tasks, 0);
        assert_eq!(r.counters.crv_reordered_tasks, 0);
        assert_eq!(r.counters.stolen_probes, 0);
        assert_eq!(r.counters.bound_placements, 0, "sparrow never early-binds");
    }

    #[test]
    fn head_of_line_blocking_hurts_short_jobs_under_load() {
        // Sparrow's known weakness: short tasks queue behind long ones.
        let r = run(600, 40, 0.9, 4);
        let p99 = r.class_response_percentile(JobClass::Short, 99.0);
        let p50 = r.class_response_percentile(JobClass::Short, 50.0);
        assert!(
            p99 > 5.0 * p50,
            "expected heavy tail from head-of-line blocking: p50={p50} p99={p99}"
        );
    }
}
