//! Eagle's Succinct State Sharing (SSS).
//!
//! Eagle's central scheduler shares a bit vector marking workers occupied by
//! long jobs; distributed schedulers avoid sending short-job probes there
//! ("divide": short tasks never queue behind long ones). Phoenix reuses the
//! same mechanism for its probe placement (§IV-A).

use phoenix_sim::WorkerId;

/// A bit vector of workers currently holding long work (running or queued).
///
/// Counting (rather than boolean) occupancy handles multiple long tasks
/// bound to the same worker queue.
#[derive(Debug, Clone, Default)]
pub struct LongBusyMap {
    counts: Vec<u32>,
}

impl LongBusyMap {
    /// Creates a map for `n` workers, all clear.
    pub fn new(n: usize) -> Self {
        LongBusyMap { counts: vec![0; n] }
    }

    /// Marks one long task bound to `worker`.
    pub fn add(&mut self, worker: WorkerId) {
        self.counts[worker.index()] += 1;
    }

    /// Clears one long task from `worker` (when it completes).
    ///
    /// # Panics
    ///
    /// Panics if the worker had no long work recorded (an accounting bug).
    pub fn remove(&mut self, worker: WorkerId) {
        let c = &mut self.counts[worker.index()];
        assert!(*c > 0, "long-busy underflow on {worker}");
        *c -= 1;
    }

    /// Clears one long task from `worker` if any is recorded, saturating at
    /// zero. Used on task completion under fault injection: a long task
    /// re-placed through the crash/retry path was never re-counted (the SSS
    /// census is advisory), so its completion must not underflow the count
    /// of an unrelated placement.
    pub fn release(&mut self, worker: WorkerId) {
        let c = &mut self.counts[worker.index()];
        *c = c.saturating_sub(1);
    }

    /// Clears *all* long work recorded on `worker` (the worker crashed:
    /// running long tasks were killed and queued long probes dropped).
    /// Returns the number of cleared marks.
    pub fn clear(&mut self, worker: WorkerId) -> u32 {
        std::mem::take(&mut self.counts[worker.index()])
    }

    /// Whether `worker` holds any long work.
    pub fn is_long_busy(&self, worker: WorkerId) -> bool {
        self.counts[worker.index()] > 0
    }

    /// Number of long-busy workers.
    pub fn busy_count(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Number of workers tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the map tracks zero workers.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_cycle() {
        let mut m = LongBusyMap::new(4);
        assert!(!m.is_long_busy(WorkerId(2)));
        m.add(WorkerId(2));
        m.add(WorkerId(2));
        assert!(m.is_long_busy(WorkerId(2)));
        assert_eq!(m.busy_count(), 1);
        m.remove(WorkerId(2));
        assert!(m.is_long_busy(WorkerId(2)), "one long task remains");
        m.remove(WorkerId(2));
        assert!(!m.is_long_busy(WorkerId(2)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn remove_without_add_panics() {
        let mut m = LongBusyMap::new(2);
        m.remove(WorkerId(0));
    }

    #[test]
    fn release_saturates_and_clear_empties() {
        let mut m = LongBusyMap::new(3);
        m.release(WorkerId(1)); // no-op, not a panic
        assert!(!m.is_long_busy(WorkerId(1)));
        m.add(WorkerId(1));
        m.add(WorkerId(1));
        assert_eq!(m.clear(WorkerId(1)), 2);
        assert!(!m.is_long_busy(WorkerId(1)));
        assert_eq!(m.clear(WorkerId(1)), 0);
    }

    #[test]
    fn len_reports_cluster_size() {
        let m = LongBusyMap::new(7);
        assert_eq!(m.len(), 7);
        assert!(!m.is_empty());
        assert!(LongBusyMap::new(0).is_empty());
    }
}
