//! Property test: the starvation-slack bound the invariant auditor checks
//! globally (`bypass_count <= slack` for every queued probe, always),
//! pinned at the unit level for the SRPT insertion path. Every promotion
//! path guards `bypass_count < slack` before bumping, so no insert
//! sequence may ever push a probe past the bound.

use proptest::prelude::*;

use phoenix_constraints::{FeasibilityIndex, MachinePopulation, PopulationProfile};
use phoenix_schedulers::srpt::srpt_insert_tail;
use phoenix_sim::{Probe, ProbeId, SimConfig, SimTime, Simulation, WorkerId};
use phoenix_traces::{Job, JobId, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn srpt_insertion_respects_the_starvation_slack_bound(
        ests in prop::collection::vec(0.1f64..1_000.0, 1..40),
        preloaded_bypasses in prop::collection::vec(0u32..6, 1..40),
        slack in 1u32..6,
    ) {
        let mut rng = StdRng::seed_from_u64(7);
        let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 2, &mut rng);
        let jobs: Vec<Job> = ests
            .iter()
            .enumerate()
            .map(|(i, &e)| Job {
                id: JobId(i as u32),
                arrival_s: 0.0,
                task_durations_s: vec![e],
                estimated_task_duration_s: e,
                constraints: Default::default(),
                short: true,
                user: 0,
            })
            .collect();
        let mut state = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &Trace::new("t", jobs),
            Box::new(phoenix_sim::RandomScheduler::new(1)),
            1,
        )
        .into_state_for_tests();

        let w = WorkerId(0);
        for (i, _) in ests.iter().enumerate() {
            // Arrivals may find probes already part-way to starvation
            // (clamped inside the bound, as every engine path keeps them).
            let bypass_count = preloaded_bypasses
                .get(i)
                .copied()
                .unwrap_or(0)
                .min(slack);
            state.workers[0].enqueue(Probe {
                id: ProbeId(i as u64),
                job: JobId(i as u32),
                bound_duration_us: None,
                est_duration_us: state.jobs[i].estimated_task_us,
                slowdown: 1.0,
                enqueued_at: SimTime::ZERO,
                bypass_count,
                migrations: 0,
                retries: 0,
            });
            srpt_insert_tail(&mut state, w, slack);
            for p in state.workers[0].queue() {
                prop_assert!(
                    p.bypass_count <= slack,
                    "probe {} bypassed {} times, above the slack bound {}",
                    p.id,
                    p.bypass_count,
                    slack
                );
            }
        }
    }
}
