//! Property test: SRPT insertion keeps queues ordered modulo slack-pinned
//! probes for arbitrary insert sequences.

use proptest::prelude::*;

use phoenix_constraints::{FeasibilityIndex, MachinePopulation, PopulationProfile};
use phoenix_schedulers::srpt::{is_srpt_ordered_modulo_slack, srpt_insert_tail};
use phoenix_sim::{Probe, ProbeId, SimConfig, SimTime, Simulation, WorkerId};
use phoenix_traces::{Job, JobId, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn state_with_estimates(ests: &[f64]) -> phoenix_sim::SimState {
    let mut rng = StdRng::seed_from_u64(1);
    let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 2, &mut rng);
    let jobs: Vec<Job> = ests
        .iter()
        .enumerate()
        .map(|(i, &e)| Job {
            id: JobId(i as u32),
            arrival_s: 0.0,
            task_durations_s: vec![e],
            estimated_task_duration_s: e,
            constraints: Default::default(),
            short: true,
            user: 0,
        })
        .collect();
    Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &Trace::new("t", jobs),
        Box::new(phoenix_sim::RandomScheduler::new(1)),
        1,
    )
    .into_state_for_tests()
}

proptest! {
    #[test]
    fn srpt_insert_maintains_order_modulo_slack(
        ests in prop::collection::vec(0.1f64..1_000.0, 1..40),
        slack in 1u32..8,
    ) {
        let mut state = state_with_estimates(&ests);
        let w = WorkerId(0);
        for (i, _) in ests.iter().enumerate() {
            state.workers[0].enqueue(Probe {
                id: ProbeId(i as u64),
                job: JobId(i as u32),
                bound_duration_us: None,
                est_duration_us: state.jobs[i].estimated_task_us,
                slowdown: 1.0,
                enqueued_at: SimTime::ZERO,
                bypass_count: 0,
                migrations: 0,
                retries: 0,
            });
            srpt_insert_tail(&mut state, w, slack);
            prop_assert!(
                is_srpt_ordered_modulo_slack(&state, &state.workers[0], slack),
                "queue must stay SRPT-ordered modulo pinned probes"
            );
        }
        // Conservation: every inserted probe is still present exactly once.
        let mut ids: Vec<u64> = state.workers[0].queue().iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..ests.len() as u64).collect();
        prop_assert_eq!(ids, expected);
    }
}
