//! Property test for the incremental CRV ledger: after every randomized
//! queue/slot operation, the monitor table derived from the ledger must
//! equal a from-scratch full rescan.

use phoenix_constraints::{
    Constraint, ConstraintKind, ConstraintOp, ConstraintSet, FeasibilityIndex, MachinePopulation,
    PopulationProfile,
};
use phoenix_core::CrvMonitor;
use phoenix_sim::{
    Probe, ProbeId, RunningTask, SimConfig, SimState, SimTime, Simulation, WorkerId,
};
use phoenix_traces::{Job, JobId, Trace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WORKERS: usize = 16;

fn job_sets() -> Vec<ConstraintSet> {
    vec![
        ConstraintSet::unconstrained(),
        ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            4,
        )]),
        ConstraintSet::from_constraints(vec![Constraint::soft(
            ConstraintKind::EthernetSpeed,
            ConstraintOp::Gt,
            900,
        )]),
        ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::KernelVersion,
            ConstraintOp::Gt,
            300,
        )]),
        ConstraintSet::from_constraints(vec![
            Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 2),
            Constraint::soft(ConstraintKind::Memory, ConstraintOp::Gt, 8),
        ]),
        ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            4,
        )]),
    ]
}

fn build_state() -> SimState {
    let mut rng = StdRng::seed_from_u64(11);
    let cluster = MachinePopulation::generate(PopulationProfile::google_like(), WORKERS, &mut rng);
    let jobs: Vec<Job> = job_sets()
        .into_iter()
        .enumerate()
        .map(|(i, set)| Job {
            id: JobId(i as u32),
            arrival_s: 0.0,
            task_durations_s: vec![1.0; 4],
            estimated_task_duration_s: 1.0,
            constraints: set,
            short: true,
            user: 0,
        })
        .collect();
    Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &Trace::new("t", jobs),
        Box::new(phoenix_sim::RandomScheduler::new(1)),
        1,
    )
    .into_state_for_tests()
}

/// One randomized op against the ledger-aware state API; interpreted
/// modulo the current state so every sequence is valid.
fn apply_op(
    state: &mut SimState,
    op: u8,
    a: u16,
    b: u16,
    next_probe: &mut u64,
    next_seq: &mut u64,
) {
    let worker = WorkerId(u32::from(a) % WORKERS as u32);
    let n_jobs = state.jobs.len() as u64;
    let alive = state.workers[worker.index()].is_alive();
    match op {
        // Enqueue at the tail. The engine never delivers probes to dead
        // workers (arrivals bounce into the retry path), so mirror that.
        0 | 1 => {
            if !alive {
                return;
            }
            let probe = Probe {
                id: ProbeId(*next_probe),
                job: JobId((u64::from(b) % n_jobs) as u32),
                bound_duration_us: if op == 1 { Some(1_000) } else { None },
                est_duration_us: state.jobs[(u64::from(b) % n_jobs) as usize].estimated_task_us,
                slowdown: 1.0,
                enqueued_at: SimTime::ZERO,
                bypass_count: 0,
                migrations: 0,
                retries: 0,
            };
            *next_probe += 1;
            state.enqueue_probe(worker, probe);
        }
        // Enqueue at the front (sticky batch probing).
        2 => {
            if !alive {
                return;
            }
            let probe = Probe {
                id: ProbeId(*next_probe),
                job: JobId((u64::from(b) % n_jobs) as u32),
                bound_duration_us: None,
                est_duration_us: state.jobs[(u64::from(b) % n_jobs) as usize].estimated_task_us,
                slowdown: 1.0,
                enqueued_at: SimTime::ZERO,
                bypass_count: 0,
                migrations: 0,
                retries: 0,
            };
            *next_probe += 1;
            state.enqueue_probe_front(worker, probe);
        }
        // Remove one queued probe (dispatch / recall).
        3 => {
            let len = state.workers[worker.index()].queue_len();
            if len > 0 {
                let _ = state.remove_probe_at(worker, usize::from(b) % len);
            }
        }
        // Steal a matching subset.
        4 => {
            let residue = u64::from(b) % 3;
            let _ = state.steal_probes_if(worker, |p| p.id.0 % 3 == residue);
        }
        // Occupy a slot (idle → busy transition). Dead workers run nothing.
        5 => {
            if alive && state.workers[worker.index()].has_free_slot() {
                let seq = *next_seq;
                *next_seq += 1;
                state.start_task_on(
                    worker,
                    RunningTask {
                        job: JobId((u64::from(b) % n_jobs) as u32),
                        finish_at: SimTime::from_secs_f64(100.0),
                        duration_us: 1_000,
                        raw_duration_us: 1_000,
                        slowdown: 1.0,
                        bound: false,
                        seq,
                    },
                    SimTime::ZERO,
                );
            }
        }
        // Free a slot (busy → idle transition).
        6 => {
            if let Some(task) = state.workers[worker.index()].running().copied() {
                let _ = state.finish_task_on(worker, task.seq);
            }
        }
        // Pure reordering: must not need (or disturb) ledger accounting.
        7 => {
            let len = state.workers[worker.index()].queue_len();
            if len > 1 {
                state.workers[worker.index()].promote_to_front(usize::from(b) % len);
            }
        }
        // Crash: kills running tasks, drops queued probes, removes the
        // worker's idle supply.
        8 => {
            if alive {
                let _ = state.crash_worker(worker);
            }
        }
        // Recover: the worker's idle supply returns.
        _ => {
            if !alive {
                state.recover_worker(worker);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn incremental_table_matches_rescan_after_every_op(
        ops in prop::collection::vec((0u8..10, 0u16..64, 0u16..64), 0..60),
    ) {
        let mut state = build_state();
        let mut next_probe = 0u64;
        let mut next_seq = 0u64;
        for &(op, a, b) in &ops {
            apply_op(&mut state, op, a, b, &mut next_probe, &mut next_seq);
            let mut incremental = CrvMonitor::new();
            incremental.refresh_incremental(&state);
            let mut rescan = CrvMonitor::new();
            rescan.refresh_full_rescan(&state);
            prop_assert_eq!(incremental.table(), rescan.table());
            prop_assert_eq!(incremental.crv(), rescan.crv());
            prop_assert_eq!(
                incremental.snapshot().queued_probes,
                rescan.snapshot().queued_probes
            );
            prop_assert_eq!(
                incremental.snapshot().constrained_probes,
                rescan.snapshot().constrained_probes
            );
            prop_assert_eq!(
                incremental.snapshot().idle_workers,
                rescan.snapshot().idle_workers
            );
        }
    }
}
