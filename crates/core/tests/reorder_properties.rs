//! Property tests on Phoenix's CRV reordering: conservation, slack safety
//! and hot-first ordering for arbitrary queue contents.

use proptest::prelude::*;

use phoenix_constraints::{
    Constraint, ConstraintKind, ConstraintOp, ConstraintSet, Crv, CrvDimension, FeasibilityIndex,
    MachinePopulation, PopulationProfile,
};
use phoenix_core::crv_reorder_queue;
use phoenix_sim::{Probe, ProbeId, SimConfig, SimTime, Simulation, WorkerId};
use phoenix_traces::{Job, JobId, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// 0 = unconstrained, 1 = net-constrained (hot), 2 = cpu-constrained.
fn set_for(tag: u8) -> ConstraintSet {
    match tag % 3 {
        1 => ConstraintSet::from_constraints(vec![Constraint::soft(
            ConstraintKind::EthernetSpeed,
            ConstraintOp::Gt,
            900,
        )]),
        2 => ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            4,
        )]),
        _ => ConstraintSet::unconstrained(),
    }
}

proptest! {
    #[test]
    fn crv_reorder_is_safe_for_arbitrary_queues(
        tags in prop::collection::vec(0u8..3, 0..40),
        bypasses in prop::collection::vec(0u32..8, 0..40),
        slack in 1u32..8,
    ) {
        let mut rng = StdRng::seed_from_u64(1);
        let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 2, &mut rng);
        let jobs: Vec<Job> = tags
            .iter()
            .enumerate()
            .map(|(i, &tag)| Job {
                id: JobId(i as u32),
                arrival_s: 0.0,
                task_durations_s: vec![1.0],
                estimated_task_duration_s: 1.0,
                constraints: set_for(tag),
                short: true,
                user: 0,
            })
            .collect();
        let mut state = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &Trace::new("t", jobs),
            Box::new(phoenix_sim::RandomScheduler::new(1)),
            1,
        )
        .into_state_for_tests();
        for (i, &tag) in tags.iter().enumerate() {
            let _ = tag;
            state.workers[0].enqueue(Probe {
                id: ProbeId(i as u64),
                job: JobId(i as u32),
                bound_duration_us: None,
                est_duration_us: state.jobs[i].estimated_task_us,
                slowdown: 1.0,
                enqueued_at: SimTime::ZERO,
                bypass_count: *bypasses.get(i).unwrap_or(&0),
                migrations: 0,
                retries: 0,
            });
        }
        let pinned_before: Vec<u64> = state.workers[0]
            .queue()
            .iter()
            .filter(|p| p.bypass_count >= slack)
            .map(|p| p.id.0)
            .collect();
        let positions_before: Vec<usize> = pinned_before
            .iter()
            .map(|id| {
                state.workers[0]
                    .queue()
                    .iter()
                    .position(|p| p.id.0 == *id)
                    .expect("present")
            })
            .collect();

        let mut crv = Crv::zero();
        crv[CrvDimension::Net] = 3.0;
        crv_reorder_queue(&mut state, WorkerId(0), &crv, slack);

        // Conservation.
        let mut ids: Vec<u64> = state.workers[0].queue().iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..tags.len() as u64).collect();
        prop_assert_eq!(ids, expected);

        // Slack safety: pinned probes never move backward (nothing jumps
        // over them).
        for (id, before) in pinned_before.iter().zip(&positions_before) {
            let after = state.workers[0]
                .queue()
                .iter()
                .position(|p| p.id.0 == *id)
                .expect("still present");
            prop_assert!(after <= *before, "pinned probe {id} moved back");
        }
    }
}
