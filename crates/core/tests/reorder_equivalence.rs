//! Equivalence oracle for the O(moved) incremental CRV reorder pass.
//!
//! `crv_reorder_queue` used to find each hot probe's landing slot by
//! re-scanning `[insert_pos, i)` for the last pinned barrier — an O(n²)
//! walk. The incremental version maintains the barrier frontier in a
//! single pass. This suite replays the historical quadratic walk on a
//! pure model of the queue and demands exact agreement on:
//!
//! * the final probe order,
//! * every probe's bypass counter (promotions increment the probes they
//!   overtake, which is how barriers appear mid-pass),
//! * the promoted count and the `crv_reordered_tasks` /
//!   `starvation_suppressions` metrics,
//!
//! across randomized mixes of hot, cold, bound and slack-exhausted
//! (pinned) probes.

use proptest::prelude::*;

use phoenix_constraints::{
    Constraint, ConstraintKind, ConstraintOp, ConstraintSet, Crv, CrvDimension, FeasibilityIndex,
    MachinePopulation, PopulationProfile,
};
use phoenix_core::crv_reorder_queue;
use phoenix_sim::{Probe, ProbeId, SimConfig, SimTime, Simulation, WorkerId};
use phoenix_traces::{Job, JobId, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// 0 = unconstrained, 1 = net-constrained (hot dimension), 2 = cpu.
fn set_for(tag: u8) -> ConstraintSet {
    match tag % 3 {
        1 => ConstraintSet::from_constraints(vec![Constraint::soft(
            ConstraintKind::EthernetSpeed,
            ConstraintOp::Gt,
            900,
        )]),
        2 => ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            4,
        )]),
        _ => ConstraintSet::unconstrained(),
    }
}

/// Pure model of one queued probe: everything the reorder pass reads.
#[derive(Clone, Debug, PartialEq)]
struct ModelProbe {
    id: u64,
    hot: bool,
    bypass_count: u32,
}

/// The historical quadratic reference walk, verbatim semantics: per hot
/// probe, rescan `[insert_pos, i)` for the last pinned barrier, then
/// rotate the probe in front of everything it bypasses (incrementing
/// their counters, exactly like `Worker::promote`). Returns
/// `(promoted, suppressions)`.
fn reference_reorder(queue: &mut [ModelProbe], slack_threshold: u32) -> (usize, usize) {
    let len = queue.len();
    let mut promoted = 0usize;
    let mut suppressions = 0usize;
    let mut insert_pos = 0usize;
    for i in 0..len {
        if !queue[i].hot {
            continue;
        }
        if i == insert_pos {
            insert_pos += 1;
            continue;
        }
        let mut target = insert_pos;
        for (j, p) in queue.iter().enumerate().take(i).skip(insert_pos) {
            if p.bypass_count >= slack_threshold {
                target = j + 1;
            }
        }
        if target < i {
            for p in &mut queue[target..i] {
                p.bypass_count += 1;
            }
            queue[target..=i].rotate_right(1);
            promoted += 1;
            insert_pos = target + 1;
        } else {
            suppressions += 1;
            insert_pos = i + 1;
        }
    }
    (promoted, suppressions)
}

proptest! {
    #[test]
    fn incremental_reorder_matches_quadratic_reference(
        tags in prop::collection::vec(0u8..3, 0..48),
        bounds in prop::collection::vec(0u8..2, 0..48),
        bypasses in prop::collection::vec(0u32..8, 0..48),
        slack in 1u32..8,
    ) {
        let mut rng = StdRng::seed_from_u64(7);
        let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 2, &mut rng);
        let jobs: Vec<Job> = tags
            .iter()
            .enumerate()
            .map(|(i, &tag)| Job {
                id: JobId(i as u32),
                arrival_s: 0.0,
                task_durations_s: vec![1.0],
                estimated_task_duration_s: 1.0,
                constraints: set_for(tag),
                short: true,
                user: 0,
            })
            .collect();
        let mut state = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &Trace::new("t", jobs),
            Box::new(phoenix_sim::RandomScheduler::new(1)),
            1,
        )
        .into_state_for_tests();
        for i in 0..tags.len() {
            let bound = bounds.get(i).copied().unwrap_or(0) == 1;
            state.workers[0].enqueue(Probe {
                id: ProbeId(i as u64),
                job: JobId(i as u32),
                bound_duration_us: bound.then_some(1_000_000),
                est_duration_us: state.jobs[i].estimated_task_us,
                slowdown: 1.0,
                enqueued_at: SimTime::ZERO,
                bypass_count: *bypasses.get(i).unwrap_or(&0),
                migrations: 0,
                retries: 0,
            });
        }

        let mut crv = Crv::zero();
        crv[CrvDimension::Net] = 3.0;
        let (hot_dim, _) = crv.max_dimension();

        // Snapshot the model *through the engine's own eyes*: hotness is
        // `!bound && effective constraints demand the hot dimension`, the
        // same predicate the pass applies, so the oracle cannot drift if
        // constraint relaxation changes what "hot" means.
        let mut model: Vec<ModelProbe> = state.workers[0]
            .queue()
            .iter()
            .map(|p| ModelProbe {
                id: p.id.0,
                hot: !p.is_bound()
                    && state.jobs[p.job.0 as usize]
                        .effective_constraints
                        .iter()
                        .any(|c| c.kind.crv_dimension() == hot_dim),
                bypass_count: p.bypass_count,
            })
            .collect();

        let (ref_promoted, ref_suppressed) = reference_reorder(&mut model, slack);
        let promoted = crv_reorder_queue(&mut state, WorkerId(0), &crv, slack);

        prop_assert_eq!(promoted, ref_promoted, "promoted counts diverge");
        prop_assert_eq!(
            state.metrics.counters.crv_reordered_tasks as usize,
            ref_promoted,
            "crv_reordered_tasks diverges"
        );
        prop_assert_eq!(
            state.metrics.counters.starvation_suppressions as usize,
            ref_suppressed,
            "starvation_suppressions diverges"
        );
        let got: Vec<(u64, u32)> = state.workers[0]
            .queue()
            .iter()
            .map(|p| (p.id.0, p.bypass_count))
            .collect();
        let want: Vec<(u64, u32)> = model.iter().map(|p| (p.id, p.bypass_count)).collect();
        prop_assert_eq!(got, want, "final (order, bypass counters) diverge");
    }
}
