//! The CRV monitor: per-heartbeat demand/supply accounting
//! (`CRV_Monitor` + `CRV_Lookup_Table` of Fig. 5).

use std::collections::HashMap;

use phoenix_constraints::{Constraint, ConstraintKind, Crv, CrvTable};
use phoenix_sim::SimState;

/// Snapshot statistics produced by one monitor refresh.
#[derive(Debug, Clone, Default)]
pub struct MonitorSnapshot {
    /// Total queued probes inspected.
    pub queued_probes: usize,
    /// Queued probes belonging to constrained jobs.
    pub constrained_probes: usize,
    /// Idle workers at refresh time.
    pub idle_workers: usize,
}

/// The CRV monitor.
///
/// Every heartbeat it measures per-constraint-kind *demand* (queued tasks
/// of constrained jobs asking for the resource) and *supply* (idle workers
/// able to satisfy the queued constraint instances of that kind), maintains
/// the `CRV_Lookup_Table`, and exposes the aggregated six-dimensional CRV
/// ratio vector.
///
/// The default refresh reads the engine's incrementally maintained
/// [`phoenix_sim::CrvLedger`] — an O(kinds) aggregation. The historical
/// full-cluster rescan ([`CrvMonitor::refresh_full_rescan`]) is kept both
/// as an opt-out (`PhoenixConfig::incremental_monitor = false`) and as a
/// debug-assertions oracle: in debug builds every incremental refresh is
/// cross-checked against a from-scratch rescan and panics on divergence.
#[derive(Debug, Clone, Default)]
pub struct CrvMonitor {
    table: CrvTable,
    crv: Crv,
    snapshot: MonitorSnapshot,
}

impl CrvMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lookup table from the latest refresh.
    pub fn table(&self) -> &CrvTable {
        &self.table
    }

    /// The aggregated CRV ratio vector from the latest refresh.
    pub fn crv(&self) -> Crv {
        self.crv
    }

    /// Statistics of the latest refresh.
    pub fn snapshot(&self) -> &MonitorSnapshot {
        &self.snapshot
    }

    /// The most contended kind and its demand/supply ratio.
    pub fn max_ratio(&self) -> (ConstraintKind, f64) {
        self.table.max_ratio()
    }

    /// Refreshes the table from live simulation state using the incremental
    /// ledger (with the debug-builds rescan oracle).
    pub fn refresh(&mut self, state: &SimState) {
        self.refresh_with(state, true);
    }

    /// Refreshes either incrementally (O(kinds), ledger-backed) or via the
    /// historical full-cluster rescan.
    pub fn refresh_with(&mut self, state: &SimState, incremental: bool) {
        if incremental {
            self.refresh_incremental(state);
            #[cfg(debug_assertions)]
            self.oracle_cross_check(state);
        } else {
            self.refresh_full_rescan(state);
        }
    }

    /// O(kinds) refresh off the engine's incrementally maintained
    /// [`phoenix_sim::CrvLedger`].
    pub fn refresh_incremental(&mut self, state: &SimState) {
        let ledger = state.crv_ledger();
        self.table.reset_demand();
        for kind in ConstraintKind::ALL {
            self.table.add_demand(kind, ledger.demand(kind) as f64);
            self.table.set_supply(kind, ledger.idle_supply(kind) as f64);
        }
        self.crv = self.table.to_crv();
        self.snapshot = MonitorSnapshot {
            queued_probes: ledger.queued_probes(),
            constrained_probes: ledger.constrained_probes(),
            idle_workers: ledger.idle_workers(),
        };
    }

    /// Refreshes the table from a partitioned federation's
    /// eventually-consistent view: the per-kind demand/supply and queue
    /// aggregates summed over every domain's latest *installed* gossip
    /// summary ([`phoenix_sim::FederationState::visible_demand`] and
    /// friends). No rescan oracle runs on this path — the stale view is
    /// *supposed* to lag ground truth (that lag is the federation model,
    /// not a ledger bug), so cross-checking it against a live rescan
    /// would be a false alarm. Falls back to the incremental refresh when
    /// federation is off.
    pub fn refresh_federated(&mut self, state: &SimState) {
        let Some(fed) = state.federation() else {
            self.refresh_incremental(state);
            return;
        };
        self.table.reset_demand();
        for kind in ConstraintKind::ALL {
            self.table.add_demand(kind, fed.visible_demand(kind) as f64);
            self.table
                .set_supply(kind, fed.visible_idle_supply(kind) as f64);
        }
        self.crv = self.table.to_crv();
        self.snapshot = MonitorSnapshot {
            queued_probes: fed.visible_queued_probes(),
            constrained_probes: fed.visible_constrained_probes(),
            idle_workers: fed.visible_idle_workers(),
        };
    }

    /// Cross-checks the incremental tables against a from-scratch rescan;
    /// any divergence is a ledger-hook bug.
    #[cfg(debug_assertions)]
    fn oracle_cross_check(&self, state: &SimState) {
        let mut oracle = CrvMonitor::new();
        oracle.refresh_full_rescan(state);
        for kind in ConstraintKind::ALL {
            assert_eq!(
                self.table.demand(kind),
                oracle.table.demand(kind),
                "incremental CRV demand for {kind} diverged from full rescan"
            );
            assert_eq!(
                self.table.supply(kind),
                oracle.table.supply(kind),
                "incremental CRV supply for {kind} diverged from full rescan"
            );
        }
        assert_eq!(self.snapshot.queued_probes, oracle.snapshot.queued_probes);
        assert_eq!(
            self.snapshot.constrained_probes,
            oracle.snapshot.constrained_probes
        );
        assert_eq!(self.snapshot.idle_workers, oracle.snapshot.idle_workers);
    }

    /// Refreshes the table by scanning the whole cluster
    /// (O(workers × probes × constraints)).
    ///
    /// Demand: one unit per queued probe per constraint of its job's
    /// effective set. Supply: per kind, the number of *idle* workers
    /// satisfying at least one queued constraint instance of that kind.
    pub fn refresh_full_rescan(&mut self, state: &SimState) {
        self.table.reset_demand();
        let mut snapshot = MonitorSnapshot::default();

        // Pass 1: demand and the distinct constraint instances per kind.
        let mut instances: HashMap<Constraint, ()> = HashMap::new();
        for worker in &state.workers {
            for probe in worker.queue() {
                snapshot.queued_probes += 1;
                let job = &state.jobs[probe.job.0 as usize];
                let set = &job.effective_constraints;
                if set.is_unconstrained() {
                    continue;
                }
                snapshot.constrained_probes += 1;
                for c in set.iter() {
                    self.table.add_demand(c.kind, 1.0);
                    instances.entry(*c).or_insert(());
                }
            }
        }

        // Pass 2: idle workers.
        let idle: Vec<bool> = state
            .workers
            .iter()
            .map(|w| w.is_idle() && w.is_alive())
            .collect();
        snapshot.idle_workers = idle.iter().filter(|&&b| b).count();

        // Pass 3: supply per kind = idle workers satisfying any queued
        // instance of that kind.
        let mut satisfied = vec![0u16; state.workers.len()];
        let mut kind_mask: Vec<u16> = vec![0; ConstraintKind::COUNT];
        for (bit, kind) in ConstraintKind::ALL.iter().enumerate() {
            kind_mask[kind.index()] = 1 << bit;
        }
        for constraint in instances.keys() {
            let mask = kind_mask[constraint.kind.index()];
            for &w in state.feasibility.feasible_single(constraint).iter() {
                satisfied[w as usize] |= mask;
            }
        }
        for kind in ConstraintKind::ALL {
            let mask = kind_mask[kind.index()];
            let supply = satisfied
                .iter()
                .zip(idle.iter())
                .filter(|&(&s, &i)| i && (s & mask) != 0)
                .count();
            self.table.set_supply(kind, supply as f64);
        }

        self.crv = self.table.to_crv();
        self.snapshot = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{
        ConstraintOp, ConstraintSet, FeasibilityIndex, MachinePopulation, PopulationProfile,
    };
    use phoenix_sim::{Probe, ProbeId, SimConfig, SimTime, Simulation, WorkerId};
    use phoenix_traces::{Job, JobId, Trace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn state_with(nodes: usize, constraints: Vec<ConstraintSet>) -> phoenix_sim::SimState {
        state_with_config(nodes, constraints, SimConfig::default())
    }

    fn state_with_config(
        nodes: usize,
        constraints: Vec<ConstraintSet>,
        config: SimConfig,
    ) -> phoenix_sim::SimState {
        let mut rng = StdRng::seed_from_u64(1);
        let cluster =
            MachinePopulation::generate(PopulationProfile::google_like(), nodes, &mut rng);
        let jobs: Vec<Job> = constraints
            .into_iter()
            .enumerate()
            .map(|(i, set)| Job {
                id: JobId(i as u32),
                arrival_s: 0.0,
                task_durations_s: vec![1.0],
                estimated_task_duration_s: 1.0,
                constraints: set,
                short: true,
                user: 0,
            })
            .collect();
        let sim = Simulation::new(
            config,
            FeasibilityIndex::new(cluster.into_machines()),
            &Trace::new("t", jobs),
            Box::new(phoenix_sim::RandomScheduler::new(1)),
            1,
        );
        sim.into_state_for_tests()
    }

    fn enqueue(state: &mut phoenix_sim::SimState, worker: u32, job: u32) {
        state.enqueue_probe(
            WorkerId(worker),
            Probe {
                id: ProbeId(u64::from(job)),
                job: JobId(job),
                bound_duration_us: None,
                est_duration_us: state.jobs[job as usize].estimated_task_us,
                slowdown: 1.0,
                enqueued_at: SimTime::ZERO,
                bypass_count: 0,
                migrations: 0,
                retries: 0,
            },
        );
    }

    #[test]
    fn empty_state_has_zero_ratios() {
        let mut monitor = CrvMonitor::new();
        let state = state_with(10, vec![]);
        monitor.refresh(&state);
        assert_eq!(monitor.max_ratio().1, 0.0);
        assert_eq!(monitor.snapshot().queued_probes, 0);
        assert_eq!(monitor.snapshot().idle_workers, 10);
    }

    #[test]
    fn demand_counts_constrained_probes_per_kind() {
        let set = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            4,
        )]);
        let mut state = state_with(20, vec![set.clone(), set, ConstraintSet::unconstrained()]);
        enqueue(&mut state, 0, 0);
        enqueue(&mut state, 1, 1);
        enqueue(&mut state, 2, 2); // unconstrained
        let mut monitor = CrvMonitor::new();
        monitor.refresh(&state);
        assert_eq!(monitor.table().demand(ConstraintKind::NumCores), 2.0);
        assert_eq!(monitor.snapshot().queued_probes, 3);
        assert_eq!(monitor.snapshot().constrained_probes, 2);
        // Supply: idle workers with > 4 cores exist in a 20-node google mix.
        assert!(monitor.table().supply(ConstraintKind::NumCores) > 0.0);
        let (kind, ratio) = monitor.max_ratio();
        assert_eq!(kind, ConstraintKind::NumCores);
        assert!(ratio > 0.0);
    }

    #[test]
    fn supply_counts_only_idle_satisfying_workers() {
        let set = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            4,
        )]);
        let mut state = state_with(10, vec![set]);
        enqueue(&mut state, 0, 0);
        let mut monitor = CrvMonitor::new();
        monitor.refresh(&state);
        let supply_all_idle = monitor.table().supply(ConstraintKind::NumCores);
        // Make every worker busy: supply must drop to zero.
        let now = SimTime::ZERO;
        for i in 0..10u32 {
            state.start_task_on(
                WorkerId(i),
                phoenix_sim::worker::RunningTask {
                    job: JobId(0),
                    finish_at: SimTime::from_secs_f64(100.0),
                    duration_us: 100_000_000,
                    raw_duration_us: 100_000_000,
                    slowdown: 1.0,
                    bound: false,
                    seq: u64::from(i),
                },
                now,
            );
        }
        monitor.refresh(&state);
        assert!(supply_all_idle > 0.0);
        assert_eq!(monitor.table().supply(ConstraintKind::NumCores), 0.0);
        // Positive demand with zero supply → infinite contention.
        assert!(monitor.max_ratio().1.is_infinite());
    }

    #[test]
    fn incremental_matches_full_rescan() {
        let cpu = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            4,
        )]);
        let net = ConstraintSet::from_constraints(vec![Constraint::soft(
            ConstraintKind::EthernetSpeed,
            ConstraintOp::Gt,
            900,
        )]);
        let mut state = state_with(25, vec![cpu, net, ConstraintSet::unconstrained()]);
        enqueue(&mut state, 0, 0);
        enqueue(&mut state, 1, 1);
        enqueue(&mut state, 3, 2);
        state.start_task_on(
            WorkerId(2),
            phoenix_sim::worker::RunningTask {
                job: JobId(0),
                finish_at: SimTime::from_secs_f64(10.0),
                duration_us: 10_000_000,
                raw_duration_us: 10_000_000,
                slowdown: 1.0,
                bound: false,
                seq: 0,
            },
            SimTime::ZERO,
        );
        let mut incremental = CrvMonitor::new();
        incremental.refresh_incremental(&state);
        let mut rescan = CrvMonitor::new();
        rescan.refresh_full_rescan(&state);
        assert_eq!(incremental.table(), rescan.table());
        assert_eq!(incremental.crv(), rescan.crv());
        assert_eq!(
            incremental.snapshot().idle_workers,
            rescan.snapshot().idle_workers
        );
        // The opt-out path produces the same table too.
        let mut opted_out = CrvMonitor::new();
        opted_out.refresh_with(&state, false);
        assert_eq!(opted_out.table(), rescan.table());
    }

    /// The federated refresh reads *installed gossip summaries only*:
    /// demand enqueued after the last round is invisible until the next
    /// delivery, and with federation off it degrades to the incremental
    /// path.
    #[test]
    fn federated_refresh_sees_only_gossiped_state() {
        let set = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            4,
        )]);
        let config = SimConfig {
            federation: phoenix_sim::FederationConfig::sharded(2, phoenix_sim::SimDuration::ZERO),
            ..SimConfig::default()
        };
        let mut state = state_with_config(20, vec![set.clone()], config);
        enqueue(&mut state, 0, 0);
        let mut monitor = CrvMonitor::new();
        monitor.refresh_federated(&state);
        // No gossip round has run: the stale view is still empty even
        // though a live rescan would see the queued probe.
        assert_eq!(monitor.snapshot().queued_probes, 0);
        assert_eq!(monitor.table().demand(ConstraintKind::NumCores), 0.0);
        let mut live = CrvMonitor::new();
        live.refresh_incremental(&state);
        assert_eq!(live.snapshot().queued_probes, 1);
        // Federation off: refresh_federated falls back to the live ledger.
        let mut central = state_with(20, vec![set]);
        enqueue(&mut central, 0, 0);
        let mut fallback = CrvMonitor::new();
        fallback.refresh_federated(&central);
        assert_eq!(fallback.snapshot().queued_probes, 1);
        assert!(fallback.table().demand(ConstraintKind::NumCores) > 0.0);
    }

    #[test]
    fn crv_vector_tracks_hottest_kind_per_dimension() {
        let set = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::KernelVersion,
            ConstraintOp::Gt,
            300,
        )]);
        let mut state = state_with(30, vec![set]);
        enqueue(&mut state, 0, 0);
        let mut monitor = CrvMonitor::new();
        monitor.refresh(&state);
        let crv = monitor.crv();
        assert!(crv[phoenix_constraints::CrvDimension::Os] > 0.0);
        assert_eq!(crv[phoenix_constraints::CrvDimension::Net], 0.0);
    }
}
