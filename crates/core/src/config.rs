//! Phoenix configuration.

use phoenix_schedulers::BaselineConfig;
use phoenix_sim::SimDuration;

/// Phoenix parameters (§IV–§VI of the paper) on top of the shared baseline
/// configuration it inherits from Eagle.
#[derive(Debug, Clone, PartialEq)]
pub struct PhoenixConfig {
    /// Shared hybrid-scheduler parameters (probe ratio, cutoff, slack,
    /// partition, stealing).
    pub baseline: BaselineConfig,
    /// CRV monitor heartbeat (§VI-C: empirically set to 9 s).
    pub heartbeat: SimDuration,
    /// Demand/supply ratio beyond which a constraint kind counts as
    /// contended (`CRV_threshold`): ratio > 1 means more queued demand than
    /// idle supply.
    pub crv_threshold: f64,
    /// Expected-wait threshold beyond which a worker queue is reordered
    /// (`Qwait_threshold`).
    pub qwait_threshold: SimDuration,
    /// Enables proactive admission control (soft-constraint negotiation);
    /// disable for ablations.
    pub admission_control: bool,
    /// Enables CRV-based reordering; disable for ablations (leaving pure
    /// Eagle-style SRPT).
    pub crv_reordering: bool,
    /// Refresh the CRV monitor from the engine's incrementally maintained
    /// ledger (O(kinds) per heartbeat) instead of rescanning every worker
    /// queue. Both paths produce identical tables (debug builds cross-check
    /// them every heartbeat); disable only to measure the old rescan cost.
    pub incremental_monitor: bool,
}

impl PhoenixConfig {
    /// Paper defaults with a trace-specific short/long cutoff in seconds.
    pub fn with_cutoff_s(cutoff_s: f64) -> Self {
        PhoenixConfig {
            baseline: BaselineConfig::with_cutoff_s(cutoff_s),
            ..Self::default()
        }
    }
}

impl Default for PhoenixConfig {
    fn default() -> Self {
        PhoenixConfig {
            baseline: BaselineConfig::default(),
            heartbeat: SimDuration::from_secs(9),
            crv_threshold: 1.0,
            qwait_threshold: SimDuration::from_secs(30),
            admission_control: true,
            crv_reordering: true,
            incremental_monitor: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PhoenixConfig::default();
        assert_eq!(c.heartbeat, SimDuration::from_secs(9));
        assert_eq!(c.baseline.probe_ratio, 2);
        assert_eq!(c.baseline.slack_threshold, 5);
        assert!(c.admission_control && c.crv_reordering);
        assert!(c.incremental_monitor);
    }

    #[test]
    fn cutoff_helper_sets_baseline_cutoff() {
        let c = PhoenixConfig::with_cutoff_s(42.0);
        assert_eq!(c.baseline.short_cutoff, SimDuration::from_secs(42));
    }
}
