//! Proactive admission control: soft-constraint negotiation.
//!
//! When a job arrives whose full constraint set no worker can satisfy,
//! Phoenix *negotiates*: soft constraints are relaxed one at a time — the
//! most contended kind first, guided by the CRV lookup table — until
//! feasible workers appear (§IV, contribution 2). Tasks placed with relaxed
//! constraints run with the Table-II slowdown of the dropped kinds.
//! Hard constraints are never relaxed; a job whose hard subset is
//! unsatisfiable is failed.
//!
//! # Expression sets
//!
//! Sets carrying a compositional [`ConstraintExpr`] negotiate differently:
//! single-constraint removal is not meaningful on a tree. For a top-level
//! `Any`, admission picks the *cheapest satisfiable branch* — ranked by the
//! CRV contention of the kinds the branch demands — instead of dropping
//! soft constraints wholesale; otherwise it falls back to the whole
//! expression's hard relaxation (soft literals replaced by `true`).

use phoenix_constraints::{ConstraintExpr, ConstraintModel, ConstraintSet, CrvTable};
use phoenix_schedulers::Placement;
use phoenix_sim::SimCtx;

/// Outcome of a negotiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Negotiation {
    /// The placement to use.
    pub placement: Placement,
    /// The effective constraint set after relaxation (equal to the input
    /// set when nothing was relaxed).
    pub effective: ConstraintSet,
    /// Number of soft constraints dropped.
    pub relaxed: usize,
}

/// Negotiates placement targets for `set`, relaxing soft constraints in
/// descending order of CRV contention until feasible workers exist.
/// Returns `None` when even the hard subset is unsatisfiable.
///
/// `exclude` marks workers to avoid (advisory — ignored when it would make
/// placement impossible).
pub fn negotiate_targets(
    ctx: &mut SimCtx<'_>,
    set: &ConstraintSet,
    count: usize,
    table: &CrvTable,
    mut exclude: impl FnMut(u32) -> bool,
) -> Option<Negotiation> {
    if set.expr().is_some() {
        return negotiate_expr_targets(ctx, set, count, table, exclude);
    }
    let mut current = set.clone();
    let mut relaxed = 0usize;
    let mut slowdown = 1.0f64;
    loop {
        if ctx.feasibility().count_feasible(&current) > 0 {
            let targets = sample_targets(ctx, &current, count, &mut exclude);
            let placement = if relaxed == 0 {
                Placement::Full(targets)
            } else {
                Placement::HardOnly(targets, slowdown)
            };
            return Some(Negotiation {
                placement,
                effective: current,
                relaxed,
            });
        }
        // Pick the soft constraint with the most contended kind.
        let victim = current
            .soft_constraints()
            .max_by(|a, b| {
                let ra = table.ratio(a.kind);
                let rb = table.ratio(b.kind);
                ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied();
        let Some(victim) = victim else {
            // Nothing left to relax and still infeasible.
            return None;
        };
        slowdown = slowdown.max(ConstraintModel::relative_slowdown(victim.kind));
        current = current
            .relax_constraint(&victim)
            .expect("victim is a soft constraint of the set");
        relaxed += 1;
    }
}

/// The shared target-sampling ladder: prefer non-excluded feasible workers,
/// fall back to any feasible worker, and — only under fault injection —
/// to dead feasible workers (the engine bounces those probes into the
/// retry path). The caller must have checked `count_feasible > 0`.
fn sample_targets(
    ctx: &mut SimCtx<'_>,
    set: &ConstraintSet,
    count: usize,
    exclude: &mut impl FnMut(u32) -> bool,
) -> Vec<phoenix_sim::WorkerId> {
    let mut targets = ctx.sample_feasible_workers_excluding(set, count, exclude);
    if targets.is_empty() {
        targets = ctx.sample_feasible_workers(set, count);
    }
    if targets.is_empty() {
        debug_assert!(ctx.config().faults.is_active(), "feasibility checked above");
        targets = ctx.sample_feasible_workers_any(set, count);
    }
    debug_assert!(!targets.is_empty());
    targets
}

/// Negotiation for sets carrying a compositional expression.
///
/// 1. The full expression feasible → `Placement::Full`, nothing relaxed
///    (an `Any` compiles to the union of its branches, so a feasible
///    branch implies this).
/// 2. Top-level `Any`: among branches whose hard relaxation is feasible,
///    pick the *cheapest* — lowest summed CRV contention over the kinds
///    the branch demands, ties broken by fewer relaxed soft leaves, then
///    branch order. The job runs under that branch's hard relaxation with
///    the Table-II slowdown of the branch's own soft leaves only.
/// 3. Otherwise the whole expression's hard relaxation, if feasible.
/// 4. Else the job fails.
fn negotiate_expr_targets(
    ctx: &mut SimCtx<'_>,
    set: &ConstraintSet,
    count: usize,
    table: &CrvTable,
    mut exclude: impl FnMut(u32) -> bool,
) -> Option<Negotiation> {
    if ctx.feasibility().count_feasible(set) > 0 {
        let targets = sample_targets(ctx, set, count, &mut exclude);
        return Some(Negotiation {
            placement: Placement::Full(targets),
            effective: set.clone(),
            relaxed: 0,
        });
    }
    let expr = set
        .expr()
        .expect("caller checked the set carries an expression");
    if let ConstraintExpr::Any(branches) = expr {
        let mut best: Option<(f64, usize, usize, ConstraintSet, f64)> = None;
        for (i, branch) in branches.iter().enumerate() {
            let branch_set =
                ConstraintSet::from_expr(branch.hard_relaxation()).with_placement(set.placement());
            if ctx.feasibility().count_feasible(&branch_set) == 0 {
                continue;
            }
            // CRV-guided branch cost: the summed demand/supply contention
            // of the kinds this branch asks for. Infinite ratios (zero
            // supply) are already filtered by the feasibility check above
            // for hard kinds, but soft-relaxed branches stay comparable.
            let cost: f64 = branch
                .projection()
                .iter()
                .map(|c| table.ratio(c.kind))
                .sum();
            let relaxed = branch.count_soft_leaves();
            let candidate_key = (cost, relaxed, i);
            let better = match &best {
                None => true,
                Some((bc, br, bi, _, _)) => {
                    candidate_key
                        .partial_cmp(&(*bc, *br, *bi))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        == std::cmp::Ordering::Less
                }
            };
            if better {
                let slowdown = branch
                    .soft_leaf_kinds()
                    .iter()
                    .map(|&k| ConstraintModel::relative_slowdown(k))
                    .fold(1.0f64, f64::max);
                best = Some((cost, relaxed, i, branch_set, slowdown));
            }
        }
        if let Some((_, relaxed, _, branch_set, slowdown)) = best {
            let targets = sample_targets(ctx, &branch_set, count, &mut exclude);
            // Every branch was infeasible as written (stage 1 covers the
            // union), so running under a branch's hard relaxation always
            // counts as a negotiated placement.
            return Some(Negotiation {
                placement: Placement::HardOnly(targets, slowdown),
                effective: branch_set,
                relaxed: relaxed.max(1),
            });
        }
    }
    let hard = set.hard_only();
    if ctx.feasibility().count_feasible(&hard) > 0 {
        let targets = sample_targets(ctx, &hard, count, &mut exclude);
        let slowdown = expr
            .soft_leaf_kinds()
            .iter()
            .map(|&k| ConstraintModel::relative_slowdown(k))
            .fold(1.0f64, f64::max);
        return Some(Negotiation {
            placement: Placement::HardOnly(targets, slowdown),
            effective: hard,
            relaxed: expr.count_soft_leaves().max(1),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{
        AttributeVector, Constraint, ConstraintKind, ConstraintOp, FeasibilityIndex, Isa,
    };
    use phoenix_sim::{Scheduler, SimConfig, Simulation};
    use phoenix_traces::{Job, JobId, Trace};

    /// A probe scheduler that records negotiation outcomes.
    #[derive(Debug, Default)]
    struct Recorder {
        outcomes: Vec<Option<(usize, f64)>>,
    }

    impl Scheduler for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }

        fn on_job_arrival(&mut self, job: JobId, ctx: &mut phoenix_sim::SimCtx<'_>) {
            let set = ctx.job(job).constraints.clone();
            let table = CrvTable::new();
            match negotiate_targets(ctx, &set, 2, &table, |_| false) {
                Some(n) => {
                    self.outcomes
                        .push(Some((n.relaxed, n.placement.slowdown())));
                    let effective = n.effective;
                    ctx.job_mut(job).effective_constraints = effective;
                    let worker = n.placement.workers()[0];
                    let mut probe = ctx.new_probe(job);
                    probe.slowdown = n.placement.slowdown();
                    ctx.send_probe(worker, probe);
                }
                None => {
                    self.outcomes.push(None);
                    ctx.fail_job(job);
                }
            }
        }
    }

    /// Cluster: 4 identical x86 8-core machines at 2.2 GHz.
    fn uniform_cluster() -> Vec<AttributeVector> {
        (0..4).map(|_| AttributeVector::default()).collect()
    }

    fn run_with(
        constraints: Vec<Constraint>,
    ) -> (phoenix_sim::SimResult, Vec<Option<(usize, f64)>>) {
        let set = ConstraintSet::from_constraints(constraints);
        let jobs = vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![1.0],
            estimated_task_duration_s: 1.0,
            constraints: set,
            short: true,
            user: 0,
        }];
        let sim = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(uniform_cluster()),
            &Trace::new("t", jobs),
            Box::new(Recorder::default()),
            1,
        );
        // Scheduler is moved in; outcomes inspected via counters instead.
        let result = sim.run();
        // Recorder is consumed by the run; reconstruct expectations from
        // counters where needed. For direct outcome checks, re-run below.
        (result, Vec::new())
    }

    #[test]
    fn satisfiable_set_needs_no_relaxation() {
        let (result, _) = run_with(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            4,
        )]);
        assert_eq!(result.counters.jobs_completed, 1);
        assert_eq!(result.counters.relaxed_tasks, 0);
    }

    #[test]
    fn soft_constraint_is_negotiated_away() {
        // Clock > 3000 is unsatisfiable on the 2.2 GHz cluster but soft.
        let (result, _) = run_with(vec![
            Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 4),
            Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 3_000),
        ]);
        assert_eq!(result.counters.jobs_completed, 1);
        assert_eq!(result.counters.jobs_failed, 0);
        assert_eq!(
            result.counters.relaxed_tasks, 1,
            "task must run with a relaxation slowdown"
        );
    }

    #[test]
    fn hard_unsatisfiable_job_fails() {
        let (result, _) = run_with(vec![Constraint::hard(
            ConstraintKind::Architecture,
            ConstraintOp::Eq,
            Isa::Power as u64,
        )]);
        assert_eq!(result.counters.jobs_failed, 1);
        assert_eq!(result.counters.jobs_completed, 0);
    }

    #[test]
    fn most_contended_soft_constraint_is_relaxed_first() {
        // Direct unit-level check of victim ordering.
        let set = ConstraintSet::from_constraints(vec![
            Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 9_999),
            Constraint::soft(ConstraintKind::EthernetSpeed, ConstraintOp::Gt, 999_999),
        ]);
        let mut table = CrvTable::new();
        table.add_demand(ConstraintKind::EthernetSpeed, 100.0);
        table.set_supply(ConstraintKind::EthernetSpeed, 1.0);
        table.add_demand(ConstraintKind::CpuClockSpeed, 1.0);
        table.set_supply(ConstraintKind::CpuClockSpeed, 100.0);
        // Relax order: ethernet (ratio 100) before clock (0.01). Both are
        // unsatisfiable here, so both get relaxed; the negotiation must
        // terminate with the empty set (feasible on any cluster).
        let jobs = vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![1.0],
            estimated_task_duration_s: 1.0,
            constraints: set.clone(),
            short: true,
            user: 0,
        }];
        #[derive(Debug)]
        struct Check {
            table: CrvTable,
            set: ConstraintSet,
        }
        impl Scheduler for Check {
            fn name(&self) -> &str {
                "check"
            }
            fn on_job_arrival(&mut self, job: JobId, ctx: &mut phoenix_sim::SimCtx<'_>) {
                let n = negotiate_targets(ctx, &self.set, 1, &self.table, |_| false)
                    .expect("empty set is always feasible");
                assert_eq!(n.relaxed, 2);
                assert!(n.effective.is_empty());
                // Slowdown is the max of both kinds: ethernet 1.91.
                assert!((n.placement.slowdown() - 1.91).abs() < 1e-9);
                ctx.fail_job(job); // end the run quickly
            }
        }
        let sim = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(uniform_cluster()),
            &Trace::new("t", jobs),
            Box::new(Check { table, set }),
            1,
        );
        let result = sim.run();
        assert_eq!(result.counters.jobs_failed, 1);
    }

    /// Drives `negotiate_targets` once against the uniform 4-node cluster
    /// and hands the outcome (with the input set) to `verify`.
    fn negotiate_once(
        constraints: Vec<Constraint>,
        verify: impl Fn(&ConstraintSet, Option<&Negotiation>) + 'static,
    ) {
        struct Harness<F> {
            set: ConstraintSet,
            verify: F,
        }
        impl<F: Fn(&ConstraintSet, Option<&Negotiation>)> Scheduler for Harness<F> {
            fn name(&self) -> &str {
                "harness"
            }
            fn on_job_arrival(&mut self, job: JobId, ctx: &mut phoenix_sim::SimCtx<'_>) {
                let n = negotiate_targets(ctx, &self.set, 2, &CrvTable::new(), |_| false);
                (self.verify)(&self.set, n.as_ref());
                ctx.fail_job(job); // end the run quickly
            }
        }
        let set = ConstraintSet::from_constraints(constraints);
        let jobs = vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![1.0],
            estimated_task_duration_s: 1.0,
            constraints: set.clone(),
            short: true,
            user: 0,
        }];
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(uniform_cluster()),
            &Trace::new("t", jobs),
            Box::new(Harness { set, verify }),
            1,
        )
        .run();
    }

    /// Negotiation may only ever drop *soft* constraints: every hard
    /// constraint of the input set must survive into the effective set,
    /// even when several soft constraints are relaxed around it.
    #[test]
    fn negotiation_never_drops_a_hard_constraint() {
        negotiate_once(
            vec![
                Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 4),
                Constraint::hard(
                    ConstraintKind::Architecture,
                    ConstraintOp::Eq,
                    Isa::X86 as u64,
                ),
                // Both soft constraints are unsatisfiable on the 2.2 GHz
                // uniform cluster and must be negotiated away.
                Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 9_999),
                Constraint::soft(ConstraintKind::EthernetSpeed, ConstraintOp::Gt, 999_999),
            ],
            |input, n| {
                let n = n.expect("hard subset is satisfiable");
                assert_eq!(n.relaxed, 2, "both soft constraints relaxed");
                for hard in input.hard_constraints() {
                    assert!(
                        n.effective.iter().any(|c| c == hard),
                        "hard constraint dropped by negotiation: {hard:?}"
                    );
                }
                assert!(
                    n.effective.soft_constraints().next().is_none(),
                    "unsatisfiable soft constraints must all be gone"
                );
            },
        );
    }

    /// A set whose *hard* subset is unsatisfiable is rejected outright —
    /// never silently relaxed — no matter how many soft constraints could
    /// be dropped around it.
    #[test]
    fn infeasible_hard_subset_is_rejected_not_relaxed() {
        negotiate_once(
            vec![
                Constraint::hard(
                    ConstraintKind::Architecture,
                    ConstraintOp::Eq,
                    Isa::Power as u64,
                ),
                Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 9_999),
                Constraint::soft(ConstraintKind::NumCores, ConstraintOp::Gt, 4),
            ],
            |_, n| {
                assert!(
                    n.is_none(),
                    "an unsatisfiable hard constraint must fail the job, got {n:?}"
                );
            },
        );
    }
}
