//! Pollaczek–Khinchine M/G/1 waiting-time estimation (Equation 1).
//!
//! Phoenix estimates each worker queue's expected wait
//!
//! ```text
//! E[W] = ρ/(1−ρ) · E[S²] / (2·E[S])
//! ```
//!
//! where `ρ = λ·E[S]` is the offered load, `λ` the observed probe arrival
//! rate and `S` the observed service times (§IV-A: "μ ← Avg(last serviced
//! tasks); λ ← Avg(inter arrival rate)"). Statistics come from sliding
//! windows of the most recent observations per worker.

use std::cell::Cell;

use phoenix_sim::{SimDuration, SimTime, WorkerId};

/// Window length: how many recent observations feed each estimate.
const WINDOW: usize = 16;

/// A bounded window of recent samples with mean / second-moment queries.
#[derive(Debug, Clone)]
struct SampleWindow {
    samples: [f64; WINDOW],
    len: usize,
    next: usize,
}

impl SampleWindow {
    fn new() -> Self {
        SampleWindow {
            samples: [0.0; WINDOW],
            len: 0,
            next: 0,
        }
    }

    fn push(&mut self, x: f64) {
        self.samples[self.next] = x;
        self.next = (self.next + 1) % WINDOW;
        self.len = (self.len + 1).min(WINDOW);
    }

    fn mean(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        Some(self.samples[..self.len].iter().sum::<f64>() / self.len as f64)
    }

    fn second_moment(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        Some(self.samples[..self.len].iter().map(|x| x * x).sum::<f64>() / self.len as f64)
    }
}

#[derive(Debug, Clone)]
struct WorkerStats {
    last_arrival: Option<SimTime>,
    /// Arrivals observed *at* `last_arrival`'s instant: multi-task jobs
    /// probe in batches, and all probes of a batch land at the same
    /// simulated time.
    batch: u32,
    inter_arrivals: SampleWindow,
    services: SampleWindow,
    /// Memoized [`WaitEstimator::expected_wait`] result, cleared whenever a
    /// window gains a sample. The scheduler scores the same worker many
    /// times between observations (every migration candidate ranks up to
    /// six alternatives), and the windows only change on probe arrival /
    /// service completion. The memo stores the *computed* value, so a hit
    /// is bit-identical to a recompute.
    wait_memo: Cell<Option<Option<SimDuration>>>,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            last_arrival: None,
            batch: 0,
            inter_arrivals: SampleWindow::new(),
            services: SampleWindow::new(),
            wait_memo: Cell::new(None),
        }
    }
}

/// Per-worker P-K waiting-time estimator.
#[derive(Debug, Clone)]
pub struct WaitEstimator {
    workers: Vec<WorkerStats>,
    /// Load cap: ρ is clamped below 1 so the estimate stays finite; queues
    /// observed above saturation simply report a very large wait.
    rho_cap: f64,
}

impl WaitEstimator {
    /// Creates an estimator for `n` workers.
    pub fn new(n: usize) -> Self {
        WaitEstimator {
            workers: (0..n).map(|_| WorkerStats::new()).collect(),
            rho_cap: 0.999,
        }
    }

    /// Number of workers tracked.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the estimator tracks zero workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Records a probe/task arrival at `worker`.
    ///
    /// Same-timestamp arrivals are coalesced into one batch: a k-probe
    /// batch after a gap of `T` contributes a single inter-arrival sample
    /// of `T/k`, so λ tracks the per-probe arrival rate. Recording each
    /// batch member as its own arrival (the historical behaviour) pushed a
    /// `0.0` gap per extra probe, dragging `mean_gap` toward zero and
    /// pinning ρ at the cap for any worker that ever received a batch.
    pub fn record_arrival(&mut self, worker: WorkerId, now: SimTime) {
        let s = &mut self.workers[worker.index()];
        match s.last_arrival {
            None => {
                s.last_arrival = Some(now);
                s.batch = 1;
            }
            Some(last) if now == last => s.batch += 1,
            Some(last) => {
                s.inter_arrivals
                    .push(now.since(last).as_secs_f64() / f64::from(s.batch.max(1)));
                s.last_arrival = Some(now);
                s.batch = 1;
                s.wait_memo.set(None);
            }
        }
    }

    /// Records a completed service of `duration` at `worker`.
    pub fn record_service(&mut self, worker: WorkerId, duration: SimDuration) {
        let s = &mut self.workers[worker.index()];
        s.services.push(duration.as_secs_f64());
        s.wait_memo.set(None);
    }

    /// The offered load `ρ = λ·E[S]` observed at `worker`, clamped to the
    /// estimator's cap. `None` until both windows have data.
    pub fn rho(&self, worker: WorkerId) -> Option<f64> {
        let s = &self.workers[worker.index()];
        let mean_gap = s.inter_arrivals.mean()?;
        let mean_service = s.services.mean()?;
        if mean_gap <= 0.0 {
            return Some(self.rho_cap);
        }
        Some((mean_service / mean_gap).min(self.rho_cap))
    }

    /// The P-K expected waiting time at `worker` (Equation 1), or `None`
    /// until enough observations exist.
    pub fn expected_wait(&self, worker: WorkerId) -> Option<SimDuration> {
        let s = &self.workers[worker.index()];
        if let Some(memo) = s.wait_memo.get() {
            return memo;
        }
        let wait = self.expected_wait_uncached(worker);
        s.wait_memo.set(Some(wait));
        wait
    }

    fn expected_wait_uncached(&self, worker: WorkerId) -> Option<SimDuration> {
        let s = &self.workers[worker.index()];
        let rho = self.rho(worker)?;
        let es = s.services.mean()?;
        let es2 = s.services.second_moment()?;
        if es <= 0.0 {
            return Some(SimDuration::ZERO);
        }
        let wait = rho / (1.0 - rho) * es2 / (2.0 * es);
        Some(SimDuration::from_secs_f64(wait))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(est: &mut WaitEstimator, gap_s: f64, service_s: f64, n: usize) {
        let w = WorkerId(0);
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            est.record_arrival(w, t);
            est.record_service(w, SimDuration::from_secs_f64(service_s));
            t += SimDuration::from_secs_f64(gap_s);
        }
    }

    #[test]
    fn no_data_yields_none() {
        let est = WaitEstimator::new(2);
        assert!(est.expected_wait(WorkerId(0)).is_none());
        assert!(est.rho(WorkerId(1)).is_none());
    }

    #[test]
    fn deterministic_arrivals_match_md1_closed_form() {
        // Deterministic service S, deterministic gaps: E[S²] = S², so
        // E[W] = ρ/(1-ρ) · S/2.
        let mut est = WaitEstimator::new(1);
        feed(&mut est, 2.0, 1.0, 32);
        let rho = est.rho(WorkerId(0)).unwrap();
        assert!((rho - 0.5).abs() < 1e-9);
        let w = est.expected_wait(WorkerId(0)).unwrap().as_secs_f64();
        assert!((w - 0.5).abs() < 1e-6, "E[W] {w} != 0.5");
    }

    #[test]
    fn heavier_load_waits_longer() {
        let mut light = WaitEstimator::new(1);
        feed(&mut light, 4.0, 1.0, 32);
        let mut heavy = WaitEstimator::new(1);
        feed(&mut heavy, 1.25, 1.0, 32);
        let wl = light.expected_wait(WorkerId(0)).unwrap();
        let wh = heavy.expected_wait(WorkerId(0)).unwrap();
        assert!(wh > wl, "heavier load must wait longer: {wh} vs {wl}");
    }

    #[test]
    fn saturation_is_capped_not_infinite() {
        let mut est = WaitEstimator::new(1);
        // Arrivals faster than service: ρ would exceed 1.
        feed(&mut est, 0.5, 2.0, 32);
        let rho = est.rho(WorkerId(0)).unwrap();
        assert!(rho < 1.0);
        let w = est.expected_wait(WorkerId(0)).unwrap();
        assert!(w.as_secs_f64() > 100.0, "saturated queue reports huge wait");
        assert!(w.as_secs_f64().is_finite());
    }

    #[test]
    fn variance_increases_wait_at_equal_load() {
        // Same mean service and load, but bimodal service times have a
        // larger second moment → longer P-K wait.
        let w = WorkerId(0);
        let mut uniform = WaitEstimator::new(1);
        feed(&mut uniform, 2.0, 1.0, 32);
        let mut bimodal = WaitEstimator::new(1);
        let mut t = SimTime::ZERO;
        for i in 0..32 {
            bimodal.record_arrival(w, t);
            let s = if i % 2 == 0 { 0.1 } else { 1.9 };
            bimodal.record_service(w, SimDuration::from_secs_f64(s));
            t += SimDuration::from_secs_f64(2.0);
        }
        let wu = uniform.expected_wait(w).unwrap();
        let wb = bimodal.expected_wait(w).unwrap();
        assert!(wb > wu, "variance must increase wait: {wb} vs {wu}");
    }

    #[test]
    fn batched_arrivals_measure_the_batch_rate() {
        // 4-probe batches every 8 s with 1 s services: per-probe λ = 0.5/s,
        // so ρ = E[S]·λ = 0.5 — not the saturation cap the old per-probe
        // 0.0-gap samples produced.
        let w = WorkerId(0);
        let mut est = WaitEstimator::new(1);
        let mut t = SimTime::ZERO;
        for _ in 0..16 {
            for _ in 0..4 {
                est.record_arrival(w, t);
                est.record_service(w, SimDuration::from_secs_f64(1.0));
            }
            t += SimDuration::from_secs_f64(8.0);
        }
        let rho = est.rho(w).unwrap();
        assert!(
            (rho - 0.5).abs() < 1e-9,
            "rho {rho} must match the batch arrival rate, not the cap"
        );
        // And the wait stays finite/moderate: ρ/(1-ρ)·E[S²]/(2E[S]) = 0.5.
        let wait = est.expected_wait(w).unwrap().as_secs_f64();
        assert!((wait - 0.5).abs() < 1e-6, "E[W] {wait}");
    }

    #[test]
    fn single_arrivals_are_unaffected_by_batch_coalescing() {
        // Distinct-timestamp arrivals must behave exactly as before the
        // batch fix: gap/1 per arrival.
        let mut est = WaitEstimator::new(1);
        feed(&mut est, 2.0, 1.0, 32);
        assert!((est.rho(WorkerId(0)).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn window_is_sliding() {
        let mut est = WaitEstimator::new(1);
        // Old slow services scroll out of the window.
        feed(&mut est, 2.0, 10.0, WINDOW);
        feed(&mut est, 2.0, 0.1, WINDOW);
        let rho = est.rho(WorkerId(0)).unwrap();
        assert!(rho < 0.1, "old samples must be forgotten, rho {rho}");
    }
}

#[cfg(test)]
mod estimator_property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// E[W] is monotone in offered load for fixed service-time shape.
        #[test]
        fn wait_is_monotone_in_load(
            service_s in 0.5f64..50.0,
            gap_fast in 0.1f64..0.9,
        ) {
            // gap_fast scales the service time: rho = service/gap.
            let w = WorkerId(0);
            let feed = |gap: f64| {
                let mut est = WaitEstimator::new(1);
                let mut t = SimTime::ZERO;
                for _ in 0..32 {
                    est.record_arrival(w, t);
                    est.record_service(w, SimDuration::from_secs_f64(service_s));
                    t += SimDuration::from_secs_f64(gap);
                }
                est.expected_wait(w).expect("fed").as_secs_f64()
            };
            // Light load: gap = service / 0.3; heavier: gap = service / gap_fast'
            let light = feed(service_s / 0.3);
            let heavy = feed(service_s / (0.3 + gap_fast * 0.6));
            prop_assert!(heavy >= light, "heavy {heavy} < light {light}");
        }

        /// The estimate matches the closed-form P-K value for deterministic
        /// arrivals and services.
        #[test]
        fn matches_closed_form_pk(
            service_s in 0.5f64..20.0,
            rho in 0.05f64..0.9,
        ) {
            let w = WorkerId(0);
            let gap = service_s / rho;
            let mut est = WaitEstimator::new(1);
            let mut t = SimTime::ZERO;
            for _ in 0..32 {
                est.record_arrival(w, t);
                est.record_service(w, SimDuration::from_secs_f64(service_s));
                t += SimDuration::from_secs_f64(gap);
            }
            let measured = est.expected_wait(w).expect("fed").as_secs_f64();
            // Deterministic S: E[W] = rho/(1-rho) * S/2.
            let theory = rho / (1.0 - rho) * service_s / 2.0;
            prop_assert!(
                (measured - theory).abs() <= theory * 0.01 + 1e-6,
                "measured {measured} vs theory {theory}"
            );
        }
    }
}
