//! Phoenix: a constraint-aware hybrid scheduler for heterogeneous
//! datacenters (ICDCS 2017) — the paper's primary contribution.
//!
//! Phoenix is built on top of Eagle's hybrid design (centralized placement
//! for long jobs, distributed probes with late binding for short jobs,
//! Succinct State Sharing, Sticky Batch Probing, work stealing) and adds
//! three constraint-aware mechanisms:
//!
//! * **The CRV monitor** ([`monitor::CrvMonitor`]) — every heartbeat
//!   (9 s, §VI-C) it recomputes, for every constraint kind, the ratio of
//!   *demand* (queued constrained tasks asking for the resource) to
//!   *supply* (idle workers able to provide it), aggregated into the
//!   six-dimensional Constraint Resource Vector
//!   `<cpu, mem, disk, os, clock, net>`.
//! * **The M/G/1 waiting-time estimator** ([`estimator::WaitEstimator`]) —
//!   a Pollaczek–Khinchine estimate of each worker queue's expected wait
//!   `E[W] = ρ/(1−ρ) · E[S²]/(2E[S])` from observed probe inter-arrival
//!   times and service times (Equation 1 of the paper).
//! * **CRV-based queue reordering** ([`reorder`]) — when some constraint
//!   kind's demand/supply ratio exceeds `CRV_threshold` *and* a worker's
//!   `E[W]` exceeds `Qwait_threshold`, the worker's queue is reordered so
//!   that tasks demanding the most-contended dimension run first, bounded
//!   by the starvation slack (Algorithm 1). Otherwise Phoenix keeps Eagle's
//!   SRPT ordering.
//!
//! A **proactive admission controller** ([`admission`]) negotiates away
//!   soft constraints — most-contended first — when a job's full constraint
//!   set has no feasible worker.
//!
//! # Example
//!
//! ```
//! use phoenix_core::{Phoenix, PhoenixConfig};
//! use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
//! use phoenix_sim::{SimConfig, Simulation};
//! use phoenix_traces::{TraceGenerator, TraceProfile};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let profile = TraceProfile::google();
//! let cutoff = profile.short_cutoff_s();
//! let mut rng = StdRng::seed_from_u64(1);
//! let cluster = MachinePopulation::generate(profile.population.clone(), 100, &mut rng);
//! let trace = TraceGenerator::new(profile, 1).generate(200, 100, 0.6);
//! let result = Simulation::new(
//!     SimConfig::default(),
//!     FeasibilityIndex::new(cluster.into_machines()),
//!     &trace,
//!     Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(cutoff))),
//!     1,
//! )
//! .run();
//! assert_eq!(result.incomplete_jobs, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod config;
pub mod estimator;
pub mod monitor;
pub mod reorder;
pub mod scheduler;

pub use admission::{negotiate_targets, Negotiation};
pub use config::PhoenixConfig;
pub use estimator::WaitEstimator;
pub use monitor::CrvMonitor;
pub use reorder::{crv_insert_tail, crv_reorder_queue};
pub use scheduler::Phoenix;
