//! CRV-based queue reordering (Algorithm 1 of the paper).
//!
//! When contention is detected (some constraint kind's demand/supply ratio
//! above `CRV_threshold` and the worker's `E[W]` above `Qwait_threshold`),
//! the worker queue is stably partitioned so that probes demanding the
//! most-contended CRV dimension run first — draining the hot resource's
//! backlog and cutting the cascading delays of Fig. 3. The starvation slack
//! bounds how many times any probe can be bypassed.

use phoenix_constraints::{Crv, CrvDimension};
use phoenix_sim::{SimState, TraceRecord, WorkerId};

/// Whether a probe's job demands the given CRV dimension.
fn demands_dimension(state: &SimState, probe: &phoenix_sim::Probe, dim: CrvDimension) -> bool {
    let set = &state.jobs[probe.job.0 as usize].effective_constraints;
    set.iter().any(|c| c.kind.crv_dimension() == dim)
}

/// Reorders `worker`'s queue so probes demanding `crv`'s most-contended
/// dimension come first (stable among themselves), without bypassing any
/// probe whose bypass budget (`slack_threshold`) is exhausted. Returns the
/// number of probes promoted.
///
/// Mirrors `CRV_based_reordering` in Algorithm 1: `Max_CRV ← getMax(CRV)`,
/// promote tasks matching the max dimension, bounded by the slack check.
///
/// The pass is O(queue + moved items): instead of re-scanning
/// `[insert_pos, i)` for the last pinned barrier per hot probe (the
/// historical quadratic walk, kept as a reference oracle by the
/// `reorder_equivalence` proptest suite), a single forward walk maintains
/// the barrier frontier incrementally. Two facts keep it exact:
///
/// * a promotion always lands *after* the last known barrier, so the
///   rotation never shifts a previously recorded barrier; and
/// * the only barriers a promotion can create are among the probes it
///   bypasses (their bypass budget may run out mid-pass), which
///   [`phoenix_sim::Worker::promote_tracking_pins`] reports from the same
///   loop that increments them.
pub fn crv_reorder_queue(
    state: &mut SimState,
    worker: WorkerId,
    crv: &Crv,
    slack_threshold: u32,
) -> usize {
    let (hot_dim, hot_ratio) = crv.max_dimension();
    if hot_ratio <= 0.0 {
        return 0;
    }
    let len = state.workers[worker.index()].queue_len();
    let mut promoted = 0usize;
    // `insert_pos`: where the next hot probe should land (just after the
    // hot prefix built so far).
    let mut insert_pos = 0usize;
    // Barrier frontier: one past the last pinned (slack-exhausted) probe
    // seen so far. A hot probe may only land just after the last pinned
    // barrier; barriers at or before `insert_pos` are neutralized by the
    // `max` below, exactly like the reference walk ignoring `j <
    // insert_pos`.
    let mut barrier = 0usize;
    for i in 0..len {
        let (is_hot, is_pinned) = {
            let probe = &state.workers[worker.index()].queue()[i];
            // Only speculative (short-job) probes are promoted: Phoenix
            // must not accelerate long jobs at short jobs' expense (Fig. 8
            // shows long-job response times unchanged).
            (
                !probe.is_bound() && demands_dimension(state, probe, hot_dim),
                probe.bypass_count >= slack_threshold,
            )
        };
        if !is_hot {
            if is_pinned {
                barrier = i + 1;
            }
            continue;
        }
        if i == insert_pos {
            insert_pos += 1;
            continue;
        }
        let target = insert_pos.max(barrier);
        if target < i {
            let (_, newly_pinned) =
                state.workers[worker.index()].promote_tracking_pins(i, target, slack_threshold);
            if let Some(pos) = newly_pinned {
                barrier = pos + 1;
            }
            state.metrics.counters.crv_reordered_tasks += 1;
            promoted += 1;
            insert_pos = target + 1;
        } else {
            state.metrics.counters.starvation_suppressions += 1;
            let at_us = state.now.as_micros();
            state.tracer_mut().emit(|| TraceRecord::Suppression {
                at_us,
                worker: worker.0,
            });
            insert_pos = i + 1;
        }
    }
    if promoted > 0 {
        let at_us = state.now.as_micros();
        state.tracer_mut().emit(|| TraceRecord::Reorder {
            at_us,
            worker: worker.0,
            promoted: promoted as u32,
        });
    }
    promoted
}

/// CRV-aware insertion for the tail probe of `worker`'s queue, used while
/// the cluster is in CRV contention mode: probes demanding the hot
/// dimension have absolute priority over those that do not; within each
/// priority class the order is SRPT. Bound (long) probes never gain
/// priority. The starvation slack bounds every bypass. Returns the number
/// of probes bypassed.
pub fn crv_insert_tail(
    state: &mut SimState,
    worker: WorkerId,
    crv: &Crv,
    slack_threshold: u32,
) -> usize {
    let (hot_dim, hot_ratio) = crv.max_dimension();
    // Gate identically to `crv_reorder_queue`: with no contended dimension
    // the cluster is not in CRV mode, so the tail keeps plain FIFO order.
    // Without this gate the rank below degenerates to pure SRPT and kept
    // bypassing on estimates even when contention gating said "off".
    if hot_ratio <= 0.0 {
        return 0;
    }
    let tail = {
        let w = &state.workers[worker.index()];
        match w.queue_len() {
            0 => return 0,
            n => n - 1,
        }
    };
    let probe_rank = |state: &SimState, p: &phoenix_sim::Probe| -> (u8, u64) {
        let hot = hot_ratio > 0.0 && !p.is_bound() && demands_dimension(state, p, hot_dim);
        let est = p.estimate_us();
        (u8::from(!hot), est) // hot probes rank lower (earlier)
    };
    let new_rank = probe_rank(state, &state.workers[worker.index()].queue()[tail]);
    let mut to = tail;
    // Whether the walk stopped at a probe the new one *outranks* but whose
    // bypass budget is exhausted — the same starvation suppression
    // `crv_reorder_queue` accounts for.
    let mut suppressed = false;
    {
        let w = &state.workers[worker.index()];
        while to > 0 {
            let prev = &w.queue()[to - 1];
            if probe_rank(state, prev) <= new_rank {
                break;
            }
            if prev.bypass_count >= slack_threshold {
                suppressed = true;
                break;
            }
            to -= 1;
        }
    }
    let moved = state.workers[worker.index()].promote(tail, to);
    let at_us = state.now.as_micros();
    if moved > 0 {
        state.metrics.counters.crv_insertions += 1;
        state.tracer_mut().emit(|| TraceRecord::Insertion {
            at_us,
            worker: worker.0,
            bypassed: moved as u32,
        });
    }
    if suppressed {
        state.metrics.counters.starvation_suppressions += 1;
        state.tracer_mut().emit(|| TraceRecord::Suppression {
            at_us,
            worker: worker.0,
        });
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{
        Constraint, ConstraintKind, ConstraintOp, ConstraintSet, FeasibilityIndex,
        MachinePopulation, PopulationProfile,
    };
    use phoenix_sim::{Probe, ProbeId, SimConfig, SimTime, Simulation};
    use phoenix_traces::{Job, JobId, Trace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Jobs 0.. get the given constraint sets; probes for all of them are
    /// queued in order on worker 0.
    fn state_with_queue(sets: Vec<ConstraintSet>) -> phoenix_sim::SimState {
        let mut rng = StdRng::seed_from_u64(1);
        let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 4, &mut rng);
        let jobs: Vec<Job> = sets
            .into_iter()
            .enumerate()
            .map(|(i, set)| Job {
                id: JobId(i as u32),
                arrival_s: 0.0,
                task_durations_s: vec![1.0],
                estimated_task_duration_s: 1.0,
                constraints: set,
                short: true,
                user: 0,
            })
            .collect();
        let n = jobs.len();
        let mut state = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &Trace::new("t", jobs),
            Box::new(phoenix_sim::RandomScheduler::new(1)),
            1,
        )
        .into_state_for_tests();
        for i in 0..n {
            state.workers[0].enqueue(Probe {
                id: ProbeId(i as u64),
                job: JobId(i as u32),
                bound_duration_us: None,
                est_duration_us: 1_000_000,
                slowdown: 1.0,
                enqueued_at: SimTime::ZERO,
                bypass_count: 0,
                migrations: 0,
                retries: 0,
            });
        }
        state
    }

    fn net_set() -> ConstraintSet {
        ConstraintSet::from_constraints(vec![Constraint::soft(
            ConstraintKind::EthernetSpeed,
            ConstraintOp::Gt,
            900,
        )])
    }

    fn cpu_set() -> ConstraintSet {
        ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            4,
        )])
    }

    fn hot_net() -> Crv {
        let mut crv = Crv::zero();
        crv[CrvDimension::Net] = 5.0;
        crv[CrvDimension::Cpu] = 0.5;
        crv
    }

    fn order(state: &phoenix_sim::SimState) -> Vec<u32> {
        state.workers[0].queue().iter().map(|p| p.job.0).collect()
    }

    #[test]
    fn hot_probes_move_to_front_stably() {
        let mut state = state_with_queue(vec![
            cpu_set(),
            net_set(),
            ConstraintSet::unconstrained(),
            net_set(),
        ]);
        let promoted = crv_reorder_queue(&mut state, WorkerId(0), &hot_net(), 5);
        assert_eq!(promoted, 2);
        assert_eq!(order(&state), vec![1, 3, 0, 2], "net probes first, stable");
        assert_eq!(state.metrics.counters.crv_reordered_tasks, 2);
    }

    #[test]
    fn already_ordered_queue_is_untouched() {
        let mut state = state_with_queue(vec![net_set(), net_set(), cpu_set()]);
        let promoted = crv_reorder_queue(&mut state, WorkerId(0), &hot_net(), 5);
        assert_eq!(promoted, 0);
        assert_eq!(order(&state), vec![0, 1, 2]);
    }

    #[test]
    fn zero_crv_is_noop() {
        let mut state = state_with_queue(vec![cpu_set(), net_set()]);
        let promoted = crv_reorder_queue(&mut state, WorkerId(0), &Crv::zero(), 5);
        assert_eq!(promoted, 0);
        assert_eq!(order(&state), vec![0, 1]);
    }

    #[test]
    fn pinned_probes_are_never_bypassed() {
        let mut state = state_with_queue(vec![cpu_set(), net_set()]);
        // Exhaust the cold probe's slack.
        state.workers[0].queue_mut()[0].bypass_count = 5;
        let promoted = crv_reorder_queue(&mut state, WorkerId(0), &hot_net(), 5);
        assert_eq!(promoted, 0, "pinned barrier blocks promotion");
        assert_eq!(order(&state), vec![0, 1]);
        assert_eq!(state.metrics.counters.starvation_suppressions, 1);
    }

    #[test]
    fn promotion_lands_after_pinned_barrier() {
        let mut state = state_with_queue(vec![
            cpu_set(),                      // pinned barrier
            ConstraintSet::unconstrained(), // bypassable
            net_set(),                      // hot
        ]);
        state.workers[0].queue_mut()[0].bypass_count = 5;
        let promoted = crv_reorder_queue(&mut state, WorkerId(0), &hot_net(), 5);
        assert_eq!(promoted, 1);
        assert_eq!(order(&state), vec![0, 2, 1], "hot lands after barrier");
        // The bypassed unconstrained probe gained a bypass count.
        assert_eq!(state.workers[0].queue()[2].bypass_count, 1);
    }

    #[test]
    fn insert_tail_counts_suppression_like_reorder() {
        // A slack-exhausted cold probe blocks the new hot tail probe:
        // crv_insert_tail must account the starvation suppression exactly
        // as crv_reorder_queue does.
        let mut state = state_with_queue(vec![cpu_set(), net_set()]);
        state.workers[0].queue_mut()[0].bypass_count = 5;
        let moved = crv_insert_tail(&mut state, WorkerId(0), &hot_net(), 5);
        assert_eq!(moved, 0);
        assert_eq!(order(&state), vec![0, 1]);
        assert_eq!(state.metrics.counters.starvation_suppressions, 1);
        assert_eq!(state.metrics.counters.crv_insertions, 0);
    }

    #[test]
    fn insert_tail_partial_move_still_counts_suppression() {
        // The hot tail bypasses one cold probe, then hits a pinned barrier:
        // both the insertion and the suppression are recorded.
        let mut state = state_with_queue(vec![
            cpu_set(),                      // pinned barrier
            ConstraintSet::unconstrained(), // bypassable
            net_set(),                      // hot tail
        ]);
        state.workers[0].queue_mut()[0].bypass_count = 5;
        let moved = crv_insert_tail(&mut state, WorkerId(0), &hot_net(), 5);
        assert_eq!(moved, 1);
        assert_eq!(order(&state), vec![0, 2, 1]);
        assert_eq!(state.metrics.counters.crv_insertions, 1);
        assert_eq!(state.metrics.counters.starvation_suppressions, 1);
    }

    #[test]
    fn insert_tail_stopping_on_rank_is_not_suppression() {
        // The walk stopping because the previous probe ranks equal/lower is
        // orderly SRPT behaviour, not starvation suppression.
        let mut state = state_with_queue(vec![net_set(), net_set()]);
        let moved = crv_insert_tail(&mut state, WorkerId(0), &hot_net(), 5);
        assert_eq!(moved, 0);
        assert_eq!(state.metrics.counters.starvation_suppressions, 0);
    }

    #[test]
    fn insert_tail_gates_off_without_contention() {
        // With no contended dimension both reorder entry points must be
        // no-ops. Before the gate, crv_insert_tail degenerated to pure
        // SRPT here and would bypass the slower head probes.
        let mut state = state_with_queue(vec![
            ConstraintSet::unconstrained(),
            ConstraintSet::unconstrained(),
            net_set(),
        ]);
        // Give the tail a far shorter estimate than the queued probes so
        // an SRPT walk would promote it to the front.
        state.workers[0].queue_mut()[2].est_duration_us = 1;
        let moved = crv_insert_tail(&mut state, WorkerId(0), &Crv::zero(), 5);
        assert_eq!(moved, 0, "no bypasses while contention gating is off");
        assert_eq!(order(&state), vec![0, 1, 2], "tail keeps FIFO position");
        assert_eq!(
            crv_reorder_queue(&mut state, WorkerId(0), &Crv::zero(), 5),
            0,
            "both entry points gate on the same condition"
        );
    }

    #[test]
    fn reordering_preserves_probe_multiset() {
        let mut state = state_with_queue(vec![
            net_set(),
            cpu_set(),
            net_set(),
            ConstraintSet::unconstrained(),
            cpu_set(),
        ]);
        let before: Vec<u64> = state.workers[0].queue().iter().map(|p| p.id.0).collect();
        crv_reorder_queue(&mut state, WorkerId(0), &hot_net(), 5);
        let mut after: Vec<u64> = state.workers[0].queue().iter().map(|p| p.id.0).collect();
        after.sort_unstable();
        let mut sorted_before = before;
        sorted_before.sort_unstable();
        assert_eq!(after, sorted_before, "no probe lost or duplicated");
    }
}
