//! The Phoenix scheduler (Fig. 5 + Algorithm 1).
//!
//! Phoenix = Eagle's hybrid machinery (centralized long-job placement with
//! a short partition, distributed short-job probes avoiding long-busy
//! workers, sticky batch probing, SRPT with a starvation bound, work
//! stealing) **plus** the CRV control loop:
//!
//! * every heartbeat the [`CrvMonitor`] refreshes the demand/supply lookup
//!   table and the [`WaitEstimator`] provides per-worker `E[W]`;
//! * when the hottest constraint kind's ratio exceeds `CRV_threshold`,
//!   every worker whose `E[W]` exceeds `Qwait_threshold` has its queue
//!   reordered by CRV ([`crv_reorder_queue`]) instead of SRPT;
//! * probe placement negotiates soft constraints via
//!   [`negotiate_targets`] when a job's full set is unsatisfiable.

use phoenix_constraints::ConstraintKind;
use phoenix_schedulers::{
    srpt::srpt_insert_tail, stealing::try_steal, CentralPlanner, LongBusyMap,
};
use phoenix_sim::{
    KindCrv, ProfileScope, Scheduler, SimCtx, SimDuration, TraceRecord, WorkerId, WorkerLoad,
};
use phoenix_traces::JobId;

use crate::admission::negotiate_targets;
use crate::config::PhoenixConfig;
use crate::estimator::WaitEstimator;
use crate::monitor::CrvMonitor;
use crate::reorder::{crv_insert_tail, crv_reorder_queue};

/// Maximum times one probe may be migrated between queues.
const MAX_MIGRATIONS: u8 = 2;

const HEARTBEAT_TOKEN: u64 = 0;

/// The Phoenix constraint-aware hybrid scheduler.
#[derive(Debug)]
pub struct Phoenix {
    config: PhoenixConfig,
    monitor: CrvMonitor,
    estimator: WaitEstimator,
    planner: Option<CentralPlanner>,
    long_busy: LongBusyMap,
    heartbeat_scheduled: bool,
    /// True while the CRV trigger condition held at the last heartbeat —
    /// during such windows queues are CRV-ordered rather than SRPT-ordered.
    crv_mode: bool,
}

impl Phoenix {
    /// Creates Phoenix with the given configuration.
    pub fn new(config: PhoenixConfig) -> Self {
        Phoenix {
            config,
            monitor: CrvMonitor::new(),
            estimator: WaitEstimator::new(0),
            planner: None,
            long_busy: LongBusyMap::default(),
            heartbeat_scheduled: false,
            crv_mode: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PhoenixConfig {
        &self.config
    }

    /// The CRV monitor (read access for instrumentation).
    pub fn monitor(&self) -> &CrvMonitor {
        &self.monitor
    }

    /// Whether the last heartbeat found the cluster in CRV contention mode.
    pub fn in_crv_mode(&self) -> bool {
        self.crv_mode
    }

    fn ensure_initialized(&mut self, ctx: &mut SimCtx<'_>) {
        if self.long_busy.is_empty() && ctx.num_workers() > 0 {
            let n = ctx.num_workers();
            self.long_busy = LongBusyMap::new(n);
            self.estimator = WaitEstimator::new(n);
            let reserved = self.config.baseline.reserved_workers(n);
            self.planner = Some(CentralPlanner::new(reserved));
        }
        if !self.heartbeat_scheduled {
            ctx.schedule_wakeup(self.config.heartbeat, HEARTBEAT_TOKEN);
            self.heartbeat_scheduled = true;
        }
    }

    /// Ranks candidate workers for a constrained job by estimated queue
    /// wait, combining the CRV monitor's aggregated queue view with the
    /// per-worker P-K estimate, and returns the `want` best.
    fn pick_least_wait(
        &self,
        ctx: &SimCtx<'_>,
        mut candidates: Vec<WorkerId>,
        want: usize,
    ) -> Vec<WorkerId> {
        // Dead workers look attractively empty; prefer live ones whenever
        // any exist (pure filter — identical when every worker is alive).
        if candidates.iter().any(|&w| ctx.worker(w).is_alive()) {
            candidates.retain(|&w| ctx.worker(w).is_alive());
        }
        let mut scored: Vec<(u64, WorkerId)> = candidates
            .into_iter()
            .map(|w| {
                let queued = phoenix_schedulers::estimated_queue_work_us(ctx.state(), w);
                let pk = self.estimator.expected_wait(w).map_or(0, |d| d.as_micros());
                (queued + pk, w)
            })
            .collect();
        scored.sort_by_key(|&(score, w)| (score, w.0));
        scored.into_iter().take(want).map(|(_, w)| w).collect()
    }

    fn place_short(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let (set, tasks, constrained) = {
            let j = ctx.job(job);
            (
                j.effective_constraints.clone(),
                j.num_tasks(),
                j.is_constrained(),
            )
        };
        let want = tasks * self.config.baseline.probe_ratio as usize;
        // Constrained jobs fight over few feasible workers; Phoenix
        // oversamples candidates and sends probes to the queues with the
        // least estimated wait (§IV-A). Unconstrained jobs keep Eagle's
        // random placement — the cluster at large balances them already.
        let sample = if constrained { want * 3 } else { want };
        let negotiation = if self.config.admission_control {
            let long_busy = &self.long_busy;
            negotiate_targets(ctx, &set, sample, self.monitor.table(), |w| {
                long_busy.is_long_busy(WorkerId(w))
            })
        } else {
            // Ablation: fall back to the baselines' trivial ladder.
            let long_busy = &self.long_busy;
            phoenix_schedulers::choose_targets(ctx, &set, sample, |w| {
                long_busy.is_long_busy(WorkerId(w))
            })
            .map(|placement| crate::admission::Negotiation {
                effective: match &placement {
                    phoenix_schedulers::Placement::Full(_) => set.clone(),
                    phoenix_schedulers::Placement::HardOnly(..) => set.hard_only(),
                },
                relaxed: usize::from(matches!(
                    placement,
                    phoenix_schedulers::Placement::HardOnly(..)
                )),
                placement,
            })
        };
        let Some(negotiation) = negotiation else {
            ctx.fail_job(job);
            return;
        };
        if negotiation.relaxed > 0 {
            ctx.job_mut(job).effective_constraints = negotiation.effective;
        }
        let slowdown = negotiation.placement.slowdown();
        let workers = if constrained {
            // For small constraint classes the monitor knows every feasible
            // worker (the `CRV_Lookup_Table` caches the class lists); rank
            // the whole class. For large classes rank the random sample.
            let effective = &ctx.job(job).effective_constraints;
            let class = ctx.feasibility().feasible(effective);
            let candidates: Vec<WorkerId> = if class.len() <= 256 {
                class.iter().map(|&w| WorkerId(w)).collect()
            } else {
                negotiation.placement.workers().to_vec()
            };
            let ranked = self.pick_least_wait(ctx, candidates, want);
            // Honor the job's affinity preference among the equally-good
            // low-wait candidates.
            phoenix_schedulers::apply_placement_preference(
                ctx.state(),
                ranked,
                ctx.job(job).effective_constraints.placement(),
            )
        } else {
            negotiation.placement.workers().to_vec()
        };
        for i in 0..want {
            let worker = workers[i % workers.len()];
            let mut probe = ctx.new_probe(job);
            probe.slowdown = slowdown;
            ctx.send_probe(worker, probe);
        }
    }

    fn place_long(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let planner = self.planner.clone().expect("initialized on first arrival");
        if let Some(placements) = planner.place_job(ctx, job) {
            for worker in placements {
                self.long_busy.add(worker);
            }
        }
    }

    /// Dynamic probe rescheduling: during contention, constrained probes
    /// stuck deep in over-threshold queues are recalled and re-sent to the
    /// feasible worker with the least estimated wait (§VII-B: Phoenix
    /// "dynamically rescheduling the probes of constrained tasks based on
    /// CRV"). Bounded per probe by [`MAX_MIGRATIONS`].
    fn migrate_stuck_probes(&mut self, ctx: &mut SimCtx<'_>) {
        let qwait_us = self.config.qwait_threshold.as_micros();
        for i in 0..ctx.num_workers() {
            let worker = WorkerId(i as u32);
            if ctx.worker(worker).queue_len() < 2 {
                continue;
            }
            // Collect migration candidates: speculative constrained probes
            // whose estimated wait here exceeds the threshold. One pass
            // accumulates the prefix wait (running remainder plus estimated
            // durations ahead) instead of re-walking the prefix per
            // candidate — same values as `queue_wait_ahead_us` at each
            // index, O(queue) per worker instead of O(queue²).
            let candidates: Vec<(phoenix_sim::ProbeId, phoenix_traces::JobId, u64)> = {
                let state = ctx.state();
                let w = &state.workers[worker.index()];
                let mut ahead_us: u64 = w
                    .running_tasks()
                    .iter()
                    .map(|t| t.finish_at.since(state.now).as_micros())
                    .sum();
                let mut candidates = Vec::new();
                for p in w.queue() {
                    let job = &state.jobs[p.job.0 as usize];
                    if !p.is_bound()
                        && p.migrations < MAX_MIGRATIONS
                        && job.is_constrained()
                        && job.has_pending()
                        && ahead_us > qwait_us
                    {
                        candidates.push((p.id, p.job, ahead_us));
                    }
                    ahead_us += p.estimate_us();
                }
                candidates
            };
            for (probe_id, job, wait_here) in candidates {
                let set = ctx.job(job).effective_constraints.clone();
                let alternatives =
                    ctx.sample_feasible_workers_excluding(&set, 6, |w| w == worker.0);
                let best = self
                    .pick_least_wait(ctx, alternatives, 1)
                    .into_iter()
                    .next();
                let Some(best) = best else { continue };
                let wait_there = phoenix_schedulers::estimated_queue_work_us(ctx.state(), best);
                // Only migrate for a clear improvement (at least halving
                // the wait) to avoid thrashing.
                if wait_there * 2 < wait_here {
                    if let Some(mut probe) = ctx.remove_probe_by_id(worker, probe_id) {
                        probe.migrations += 1;
                        ctx.counters_mut().migrated_probes += 1;
                        let at_us = ctx.now().as_micros();
                        ctx.state_mut()
                            .tracer_mut()
                            .emit(|| TraceRecord::Migration {
                                at_us,
                                job: job.0,
                                from: worker.0,
                                to: best.0,
                            });
                        ctx.transfer_probe(best, probe);
                        ctx.touch(worker);
                    }
                }
            }
        }
    }

    /// Builds the per-heartbeat monitor snapshot record: per-kind CRV
    /// demand/supply, per-worker ρ and `E[W]`, and the queue-length
    /// histogram. Only called when a trace sink is attached.
    fn heartbeat_snapshot(&self, ctx: &SimCtx<'_>) -> TraceRecord {
        let table = self.monitor.table();
        let crv: Vec<KindCrv> = ConstraintKind::ALL
            .iter()
            .map(|&kind| KindCrv {
                kind,
                demand: table.demand(kind),
                supply: table.supply(kind),
            })
            .filter(|c| c.demand > 0.0 || c.supply > 0.0)
            .collect();
        let workers: Vec<WorkerLoad> = (0..ctx.num_workers())
            .filter_map(|i| {
                let w = WorkerId(i as u32);
                let rho = self.estimator.rho(w)?;
                let expected_wait_us = self.estimator.expected_wait(w).map_or(0, |d| d.as_micros());
                Some(WorkerLoad {
                    worker: w.0,
                    rho,
                    expected_wait_us,
                })
            })
            .collect();
        let queue_histogram =
            phoenix_sim::trace::queue_histogram(ctx.state().workers.iter().map(|w| w.queue_len()));
        TraceRecord::Heartbeat {
            at_us: ctx.now().as_micros(),
            crv_mode: self.crv_mode,
            crv,
            workers,
            queue_histogram,
        }
    }

    fn heartbeat(&mut self, ctx: &mut SimCtx<'_>) {
        let started = ctx.state().profiler().begin();
        // A partitioned federation's coordinator sees only gossip: refresh
        // from the installed (stale) summaries. Centralized runs — and
        // single-domain federations, which must stay byte-identical to
        // them — keep the ledger/rescan path.
        let partitioned = ctx
            .state()
            .federation()
            .is_some_and(|f| f.config().is_partitioned());
        if partitioned {
            self.monitor.refresh_federated(ctx.state());
        } else {
            self.monitor
                .refresh_with(ctx.state(), self.config.incremental_monitor);
        }
        ctx.state_mut()
            .profiler_mut()
            .end(ProfileScope::HeartbeatRefresh, started);
        let (_, max_ratio) = self.monitor.max_ratio();
        self.crv_mode = self.config.crv_reordering && max_ratio > self.config.crv_threshold;
        if ctx.state().tracer().enabled() {
            let record = self.heartbeat_snapshot(ctx);
            ctx.state_mut().tracer_mut().emit_record(record);
        }
        if self.crv_mode {
            let started = ctx.state().profiler().begin();
            let crv = self.monitor.crv();
            let qwait = self.config.qwait_threshold;
            let slack = self.config.baseline.slack_threshold;
            for i in 0..ctx.num_workers() {
                let worker = WorkerId(i as u32);
                if ctx.worker(worker).queue_len() < 2 {
                    continue;
                }
                let over = self
                    .estimator
                    .expected_wait(worker)
                    .is_some_and(|w| w > qwait);
                if over {
                    crv_reorder_queue(ctx.state_mut(), worker, &crv, slack);
                }
            }
            self.migrate_stuck_probes(ctx);
            ctx.state_mut()
                .profiler_mut()
                .end(ProfileScope::Reorder, started);
        }
        // Keep the loop alive only while there is outstanding work.
        let busy = ctx
            .state()
            .workers
            .iter()
            .any(|w| !w.is_idle() || w.queue_len() > 0)
            || ctx.jobs().iter().any(|j| j.has_pending());
        if busy {
            ctx.schedule_wakeup(self.config.heartbeat, HEARTBEAT_TOKEN);
        } else {
            self.heartbeat_scheduled = false;
        }
    }
}

impl Scheduler for Phoenix {
    fn name(&self) -> &str {
        "phoenix"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        self.ensure_initialized(ctx);
        let est = ctx.job(job).estimated_task_us;
        if self.config.baseline.is_short(est) {
            self.place_short(job, ctx);
        } else {
            self.place_long(job, ctx);
        }
    }

    fn on_wakeup(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        if token == HEARTBEAT_TOKEN {
            self.heartbeat(ctx);
        }
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        self.estimator.record_arrival(worker, ctx.now());
        // §IV-A: "Phoenix opportunistically adapts itself to the CRV based
        // reordering from SRPT during peak loads" — during contention
        // windows the insertion discipline itself becomes CRV-priority
        // (hot-dimension probes first, SRPT within a priority class);
        // otherwise it is plain SRPT, exactly like Eagle.
        if self.crv_mode {
            let crv = self.monitor.crv();
            crv_insert_tail(
                ctx.state_mut(),
                worker,
                &crv,
                self.config.baseline.slack_threshold,
            );
        } else {
            srpt_insert_tail(
                ctx.state_mut(),
                worker,
                self.config.baseline.slack_threshold,
            );
        }
    }

    fn on_task_finish(
        &mut self,
        worker: WorkerId,
        job: JobId,
        duration_us: u64,
        ctx: &mut SimCtx<'_>,
    ) {
        self.estimator
            .record_service(worker, SimDuration(duration_us));
        let est = ctx.job(job).estimated_task_us;
        let job_is_short = self.config.baseline.is_short(est);
        if !job_is_short {
            self.long_busy.release(worker);
        }
        // Sticky batch probing (inherited from Eagle).
        if job_is_short && ctx.job(job).has_pending() {
            let probe = ctx.new_probe(job);
            ctx.counters_mut().sbp_continuations += 1;
            ctx.enqueue_front(worker, probe);
            ctx.touch(worker);
            return;
        }
        if ctx.worker(worker).queue_len() == 0 {
            let stolen = try_steal(
                ctx,
                worker,
                self.config.baseline.steal_attempts,
                self.config.baseline.short_cutoff.as_micros(),
            );
            if stolen > 0 {
                ctx.touch(worker);
            }
        }
    }

    fn on_probe_retry(&mut self, probe: phoenix_sim::Probe, ctx: &mut SimCtx<'_>) {
        // Re-place with Phoenix's wait-aware policy: sample live feasible
        // workers and pick the least estimated wait.
        let job = ctx.job(probe.job);
        if job.is_failed() || (!probe.is_bound() && !job.has_pending()) {
            if !probe.is_bound() && !job.is_failed() {
                ctx.counters_mut().redundant_probes += 1;
            }
            return;
        }
        let set = job.effective_constraints.clone();
        let candidates = ctx.sample_feasible_workers(&set, 4);
        match self.pick_least_wait(ctx, candidates, 1).into_iter().next() {
            Some(w) => ctx.resend_probe(w, probe),
            None => ctx.retry_probe_later(probe),
        }
    }

    fn on_worker_crash(&mut self, worker: WorkerId, _ctx: &mut SimCtx<'_>) {
        // Every centrally-placed long task there died with the worker (and
        // its queued long probes were dropped): clear the whole SSS mark.
        // The map is sized lazily on first arrival; a crash may beat it.
        if !self.long_busy.is_empty() {
            self.long_busy.clear(worker);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
    use phoenix_metrics::JobClass;
    use phoenix_schedulers::{BaselineConfig, EagleC};
    use phoenix_sim::{SimConfig, Simulation};
    use phoenix_traces::{TraceGenerator, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(
        jobs: usize,
        nodes: usize,
        util: f64,
        seed: u64,
    ) -> (
        Vec<phoenix_constraints::AttributeVector>,
        phoenix_traces::Trace,
        f64,
    ) {
        let profile = TraceProfile::google();
        let cutoff = profile.short_cutoff_s();
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
        let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
        (cluster.into_machines(), trace, cutoff)
    }

    fn run_phoenix(jobs: usize, nodes: usize, util: f64, seed: u64) -> phoenix_sim::SimResult {
        let (machines, trace, cutoff) = build(jobs, nodes, util, seed);
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(cutoff))),
            seed,
        )
        .run()
    }

    #[test]
    fn completes_all_jobs() {
        let r = run_phoenix(400, 120, 0.7, 1);
        assert_eq!(r.incomplete_jobs, 0);
        assert_eq!(r.counters.jobs_completed + r.counters.jobs_failed, 400);
    }

    #[test]
    fn deterministic() {
        let a = run_phoenix(200, 80, 0.8, 5);
        let b = run_phoenix(200, 80, 0.8, 5);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.metrics.makespan, b.metrics.makespan);
    }

    #[test]
    fn incremental_and_rescan_monitors_give_identical_runs() {
        // Same seed, monitor knob flipped: the incremental ledger and the
        // full rescan must produce identical tables, hence identical
        // scheduling decisions and headline results.
        let (machines, trace, cutoff) = build(600, 60, 0.9, 13);
        let incremental = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines.clone()),
            &trace,
            Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(cutoff))),
            13,
        )
        .run();
        let mut config = PhoenixConfig::with_cutoff_s(cutoff);
        config.incremental_monitor = false;
        let rescan = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(Phoenix::new(config)),
            13,
        )
        .run();
        assert_eq!(incremental.counters, rescan.counters);
        assert_eq!(incremental.metrics.makespan, rescan.metrics.makespan);
    }

    #[test]
    fn crv_reordering_fires_under_contention() {
        let r = run_phoenix(1500, 60, 0.92, 2);
        assert!(
            r.counters.crv_reordered_tasks > 0,
            "CRV reordering must trigger at ~90% utilization: {:?}",
            r.counters
        );
    }

    #[test]
    fn admission_control_negotiates_rather_than_failing() {
        // Phoenix vs Eagle on the same trace: Phoenix's negotiation must
        // fail no more jobs than the baseline ladder (both end at
        // hard-only, but Phoenix may stop earlier).
        let (machines, trace, cutoff) = build(400, 50, 0.7, 3);
        let phoenix = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines.clone()),
            &trace,
            Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(cutoff))),
            3,
        )
        .run();
        let eagle = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(EagleC::new(BaselineConfig::with_cutoff_s(cutoff))),
            3,
        )
        .run();
        assert!(phoenix.counters.jobs_failed <= eagle.counters.jobs_failed);
    }

    #[test]
    fn improves_constrained_short_tail_over_eagle_under_load() {
        // The headline claim (Fig. 7): at high utilization Phoenix improves
        // short-job p99 response over Eagle-C. Scaled down, we only require
        // Phoenix not to lose, and to win on the constrained cell.
        let (machines, trace, cutoff) = build(2000, 80, 0.9, 7);
        let phoenix = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines.clone()),
            &trace,
            Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(cutoff))),
            7,
        )
        .run();
        let eagle = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(EagleC::new(BaselineConfig::with_cutoff_s(cutoff))),
            7,
        )
        .run();
        let pp99 = phoenix.class_response_percentile(JobClass::Short, 99.0);
        let ep99 = eagle.class_response_percentile(JobClass::Short, 99.0);
        assert!(
            pp99 <= ep99 * 1.05,
            "phoenix short p99 {pp99} must not lose to eagle {ep99}"
        );
    }

    #[test]
    fn long_jobs_are_not_hurt() {
        let (machines, trace, cutoff) = build(1000, 80, 0.85, 9);
        let phoenix = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines.clone()),
            &trace,
            Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(cutoff))),
            9,
        )
        .run();
        let eagle = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(EagleC::new(BaselineConfig::with_cutoff_s(cutoff))),
            9,
        )
        .run();
        let pl = phoenix.class_response_percentile(JobClass::Long, 90.0);
        let el = eagle.class_response_percentile(JobClass::Long, 90.0);
        assert!(
            pl <= el * 1.25,
            "phoenix long p90 {pl} must stay close to eagle {el} (Fig. 8)"
        );
    }

    #[test]
    fn ablation_flags_disable_mechanisms() {
        let (machines, trace, cutoff) = build(800, 60, 0.9, 11);
        let mut config = PhoenixConfig::with_cutoff_s(cutoff);
        config.crv_reordering = false;
        let r = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines),
            &trace,
            Box::new(Phoenix::new(config)),
            11,
        )
        .run();
        assert_eq!(r.counters.crv_reordered_tasks, 0);
    }
}
