//! Property tests for the Pollaczek–Khinchine `E[W]` estimator (the paper's
//! Equation 1): exact agreement with the closed-form M/M/1 wait for
//! exponential service, and monotonicity in both offered load ρ and
//! service-time variance.

use phoenix_metrics::queueing::{mg1_mean_wait, mm1_mean_wait, rho, ServiceMoments};
use proptest::prelude::*;

proptest! {
    /// For exponential service, P-K collapses to the closed-form M/M/1
    /// wait `ρ/(1−ρ)·E[S]`.
    #[test]
    fn pk_matches_closed_form_mm1_for_exponential_service(
        mean_service in 0.01f64..100.0,
        target_rho in 0.01f64..0.99,
    ) {
        let lambda = target_rho / mean_service;
        let service = ServiceMoments::exponential(mean_service);
        let pk = mg1_mean_wait(lambda, &service);
        let r = rho(lambda, &service);
        let closed_form = r / (1.0 - r) * mean_service;
        prop_assert!(
            (pk - closed_form).abs() <= 1e-9 * closed_form.max(1.0),
            "P-K {pk} vs closed-form M/M/1 {closed_form} at rho {r}"
        );
        prop_assert!((pk - mm1_mean_wait(lambda, mean_service)).abs() == 0.0);
    }

    /// `E[W]` is non-decreasing in ρ (raising the arrival rate at fixed
    /// service moments can only lengthen the wait), and stays finite
    /// strictly below saturation.
    #[test]
    fn pk_is_monotone_in_rho(
        mean_service in 0.01f64..100.0,
        scv in 0.0f64..4.0,
        rho_lo in 0.01f64..0.98,
        rho_step in 0.001f64..0.5,
    ) {
        let rho_hi = (rho_lo + rho_step).min(0.995);
        let service = ServiceMoments {
            mean: mean_service,
            second_moment: (1.0 + scv) * mean_service * mean_service,
        };
        let lo = mg1_mean_wait(rho_lo / mean_service, &service);
        let hi = mg1_mean_wait(rho_hi / mean_service, &service);
        prop_assert!(lo.is_finite() && hi.is_finite(), "finite below saturation");
        prop_assert!(lo >= 0.0);
        prop_assert!(hi >= lo, "E[W] decreased as rho rose: {lo} -> {hi}");
    }

    /// At fixed mean service time and arrival rate, `E[W]` is
    /// non-decreasing in the service-time variance (second moment): more
    /// variable service means longer waits, with deterministic service as
    /// the floor.
    #[test]
    fn pk_is_monotone_in_service_variance(
        mean_service in 0.01f64..100.0,
        target_rho in 0.01f64..0.99,
        scv_lo in 0.0f64..4.0,
        scv_step in 0.0f64..4.0,
    ) {
        let lambda = target_rho / mean_service;
        let m2 = |scv: f64| (1.0 + scv) * mean_service * mean_service;
        let lo = mg1_mean_wait(lambda, &ServiceMoments { mean: mean_service, second_moment: m2(scv_lo) });
        let hi = mg1_mean_wait(lambda, &ServiceMoments { mean: mean_service, second_moment: m2(scv_lo + scv_step) });
        prop_assert!(hi >= lo, "E[W] decreased as variance rose: {lo} -> {hi}");
        let floor = mg1_mean_wait(lambda, &ServiceMoments::deterministic(mean_service));
        prop_assert!(lo >= floor - 1e-12 * floor.abs(), "deterministic service is the floor");
    }
}
