//! Exact sample distributions with percentile and CDF queries.

use std::cell::Cell;
use std::fmt;

/// One point of an empirical CDF: `fraction` of samples are `<= value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Sample value (x axis).
    pub value: f64,
    /// Cumulative fraction in `(0, 1]` (y axis).
    pub fraction: f64,
}

/// An exact (store-everything) sample distribution.
///
/// The simulator records hundreds of thousands of job latencies per run;
/// storing them exactly keeps tail percentiles faithful, which is the whole
/// point of the paper. Sorting is deferred and memoized: queries sort once
/// and reuse the order until the next insertion.
#[derive(Debug, Clone, Default)]
pub struct Distribution {
    samples: Vec<f64>,
    sorted: Cell<bool>,
}

impl Distribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a distribution from existing samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        Distribution {
            samples,
            sorted: Cell::new(false),
        }
    }

    /// Records one sample.
    ///
    /// Non-finite samples are ignored (they would poison percentiles).
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted.set(false);
        }
    }

    /// Merges all samples of `other` into `self`.
    pub fn merge(&mut self, other: &Distribution) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted.set(false);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted.get() {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted.set(true);
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`) with linear interpolation
    /// between closest ranks. Returns 0.0 for an empty distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 1 {
            return self.samples[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let w = rank - lo as f64;
            self.samples[lo] * (1.0 - w) + self.samples[hi] * w
        }
    }

    /// The median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Largest sample; 0.0 when empty.
    pub fn max(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.samples.last().expect("non-empty")
    }

    /// Smallest sample; 0.0 when empty.
    pub fn min(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        self.samples[0]
    }

    /// Sample variance (population variance, `N` denominator); 0.0 when
    /// fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / self.samples.len() as f64
    }

    /// The empirical CDF downsampled to at most `points` evenly spaced
    /// points (always including the maximum). Empty when no samples.
    pub fn cdf(&mut self, points: usize) -> Vec<CdfPoint> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        // Integer rank arithmetic: exactly `min(points, n)` ranks
        // `ceil(j·n/m)`, strictly increasing (since n ≥ m) and ending at
        // rank `n`, so the maximum is always the final point and the last
        // fraction is exactly 1.0. The previous float-step accumulation
        // (`i += step; i as usize`) drifted at non-integral `n/points`,
        // emitting duplicate ranks and skipping others.
        let m = points.min(n);
        (1..=m)
            .map(|j| {
                let rank = (j * n).div_ceil(m);
                CdfPoint {
                    value: self.samples[rank - 1],
                    fraction: rank as f64 / n as f64,
                }
            })
            .collect()
    }

    /// Fraction of samples `<= value`; 0.0 when empty.
    pub fn fraction_below(&mut self, value: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|&x| x <= value);
        n as f64 / self.samples.len() as f64
    }

    /// Read-only view of the raw samples (insertion or sorted order,
    /// whichever is current).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl FromIterator<f64> for Distribution {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut d = Distribution::new();
        for x in iter {
            d.record(x);
        }
        d
    }
}

impl Extend<f64> for Distribution {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = self.clone();
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            d.len(),
            d.mean(),
            d.percentile(50.0),
            d.percentile(90.0),
            d.percentile(99.0),
            d.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut d: Distribution = (1..=100).map(f64::from).collect();
        assert_eq!(d.percentile(0.0), 1.0);
        assert_eq!(d.percentile(100.0), 100.0);
        assert_eq!(d.percentile(50.0), 50.5);
        assert!((d.percentile(99.0) - 99.01).abs() < 0.02);
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let mut d = Distribution::new();
        assert_eq!(d.percentile(99.0), 0.0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.max(), 0.0);
        assert_eq!(d.min(), 0.0);
        assert!(d.cdf(10).is_empty());
        assert!(d.is_empty());
    }

    #[test]
    fn single_sample_everywhere() {
        let mut d = Distribution::from_samples(vec![7.0]);
        assert_eq!(d.percentile(1.0), 7.0);
        assert_eq!(d.percentile(99.0), 7.0);
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn record_after_query_resorts() {
        let mut d = Distribution::new();
        d.record(10.0);
        assert_eq!(d.max(), 10.0);
        d.record(20.0);
        d.record(5.0);
        assert_eq!(d.max(), 20.0);
        assert_eq!(d.min(), 5.0);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut d = Distribution::new();
        d.record(f64::NAN);
        d.record(f64::INFINITY);
        d.record(3.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d.mean(), 3.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Distribution::from_samples(vec![1.0, 2.0]);
        let b = Distribution::from_samples(vec![3.0]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut d: Distribution = (0..1000).map(|i| f64::from(i % 100)).collect();
        let cdf = d.cdf(20);
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[1].value >= w[0].value);
            assert!(w[1].fraction >= w[0].fraction);
        }
        assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_smaller_than_requested_points() {
        let mut d = Distribution::from_samples(vec![1.0, 2.0]);
        let cdf = d.cdf(50);
        assert!(cdf.len() <= 3);
        assert_eq!(cdf.last().unwrap().fraction, 1.0);
    }

    #[test]
    fn cdf_ranks_are_strictly_increasing_for_adversarial_shapes() {
        // Non-integral n/points pairs that made the float-step CDF emit
        // duplicate ranks (and skip others) as the accumulated error
        // crossed integer boundaries.
        for (n, points) in [
            (1_000usize, 3usize),
            (1_000, 7),
            (12_345, 999),
            (100_000, 333),
            (97, 96),
            (98, 97),
            (10, 3),
            (5, 50),
        ] {
            let mut d: Distribution = (0..n).map(|i| i as f64).collect();
            let cdf = d.cdf(points);
            assert_eq!(cdf.len(), points.min(n), "n={n} points={points}");
            for w in cdf.windows(2) {
                assert!(
                    w[1].fraction > w[0].fraction,
                    "duplicate/regressing rank at n={n} points={points}: \
                     {} then {}",
                    w[0].fraction,
                    w[1].fraction
                );
            }
            let last = cdf.last().unwrap();
            assert_eq!(last.fraction, 1.0, "n={n} points={points}");
            assert_eq!(last.value, (n - 1) as f64, "max always included");
        }
    }

    #[test]
    fn fraction_below_matches_definition() {
        let mut d: Distribution = (1..=10).map(f64::from).collect();
        assert!((d.fraction_below(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.fraction_below(0.0), 0.0);
        assert_eq!(d.fraction_below(10.0), 1.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let d = Distribution::from_samples(vec![4.0; 10]);
        assert_eq!(d.variance(), 0.0);
        let d2 = Distribution::from_samples(vec![1.0, 3.0]);
        assert!((d2.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        let mut d = Distribution::from_samples(vec![1.0]);
        let _ = d.percentile(101.0);
    }

    #[test]
    fn display_mentions_count_and_percentiles() {
        let d = Distribution::from_samples(vec![1.0, 2.0, 3.0]);
        let s = d.to_string();
        assert!(s.contains("n=3") && s.contains("p99"), "{s}");
    }
}
