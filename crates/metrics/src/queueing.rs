//! Closed-form queueing formulas.
//!
//! Phoenix's waiting-time estimator is the Pollaczek–Khinchine M/G/1 mean
//! wait (Equation 1 of the paper). This module provides the closed forms —
//! M/M/1 and M/D/1 as special cases of M/G/1 — both for the estimator's
//! unit tests and for validating the discrete-event engine against theory
//! (see the `engine_matches_queueing_theory` integration test).

/// Service-time distribution of an M/G/1 queue, described by its first two
/// moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceMoments {
    /// Mean service time `E[S]`.
    pub mean: f64,
    /// Second moment `E[S²]`.
    pub second_moment: f64,
}

impl ServiceMoments {
    /// Deterministic service of duration `s`: `E[S²] = s²`.
    pub fn deterministic(s: f64) -> Self {
        ServiceMoments {
            mean: s,
            second_moment: s * s,
        }
    }

    /// Exponential service with mean `s`: `E[S²] = 2 s²`.
    pub fn exponential(s: f64) -> Self {
        ServiceMoments {
            mean: s,
            second_moment: 2.0 * s * s,
        }
    }

    /// Empirical moments from samples.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        Some(ServiceMoments {
            mean: samples.iter().sum::<f64>() / n,
            second_moment: samples.iter().map(|s| s * s).sum::<f64>() / n,
        })
    }

    /// Squared coefficient of variation `c² = Var[S] / E[S]²`.
    pub fn scv(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        (self.second_moment - self.mean * self.mean) / (self.mean * self.mean)
    }
}

/// Offered load `ρ = λ·E[S]` for arrival rate `lambda`.
pub fn rho(lambda: f64, service: &ServiceMoments) -> f64 {
    lambda * service.mean
}

/// Pollaczek–Khinchine mean waiting time in queue for an M/G/1 system:
///
/// ```text
/// E[W] = λ·E[S²] / (2·(1−ρ))  =  ρ/(1−ρ) · E[S²]/(2·E[S])
/// ```
///
/// Returns `f64::INFINITY` for `ρ >= 1`.
pub fn mg1_mean_wait(lambda: f64, service: &ServiceMoments) -> f64 {
    let rho = rho(lambda, service);
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    lambda * service.second_moment / (2.0 * (1.0 - rho))
}

/// M/M/1 mean wait: `E[W] = ρ/(1−ρ) · E[S]`.
pub fn mm1_mean_wait(lambda: f64, mean_service: f64) -> f64 {
    mg1_mean_wait(lambda, &ServiceMoments::exponential(mean_service))
}

/// M/D/1 mean wait: `E[W] = ρ/(2(1−ρ)) · s` — exactly half the M/M/1 wait.
pub fn md1_mean_wait(lambda: f64, service: f64) -> f64 {
    mg1_mean_wait(lambda, &ServiceMoments::deterministic(service))
}

/// M/M/1 mean number in system: `L = ρ/(1−ρ)` (Little's law check).
pub fn mm1_mean_in_system(lambda: f64, mean_service: f64) -> f64 {
    let rho = lambda * mean_service;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    rho / (1.0 - rho)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md1_is_half_of_mm1() {
        let lambda = 0.5;
        let s = 1.0;
        let mm1 = mm1_mean_wait(lambda, s);
        let md1 = md1_mean_wait(lambda, s);
        assert!((md1 * 2.0 - mm1).abs() < 1e-12, "{md1} vs {mm1}");
    }

    #[test]
    fn known_mm1_value() {
        // ρ = 0.8, E[S] = 1 → E[W] = 0.8/0.2 = 4.
        assert!((mm1_mean_wait(0.8, 1.0) - 4.0).abs() < 1e-12);
        // Little: L = ρ/(1-ρ) = 4.
        assert!((mm1_mean_in_system(0.8, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_is_infinite() {
        assert!(mm1_mean_wait(1.0, 1.0).is_infinite());
        assert!(md1_mean_wait(2.0, 1.0).is_infinite());
    }

    #[test]
    fn wait_grows_with_variance_at_equal_load() {
        let lambda = 0.7;
        let det = ServiceMoments::deterministic(1.0);
        let exp = ServiceMoments::exponential(1.0);
        assert!(mg1_mean_wait(lambda, &exp) > mg1_mean_wait(lambda, &det));
        assert_eq!(det.scv(), 0.0);
        assert!((exp.scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_moments() {
        let m = ServiceMoments::from_samples(&[1.0, 3.0]).unwrap();
        assert_eq!(m.mean, 2.0);
        assert_eq!(m.second_moment, 5.0);
        assert!(ServiceMoments::from_samples(&[]).is_none());
    }
}
