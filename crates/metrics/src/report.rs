//! Plain-text table rendering for the experiment binaries.
//!
//! The harness prints every reproduced table/figure as an aligned text
//! table (no serialization crates are in the dependency budget, and text is
//! what the EXPERIMENTS.md log records anyway).

use std::fmt;

/// Formats a normalized ratio the way the paper quotes them, e.g. `1.9x`.
pub fn format_ratio(ratio: f64) -> String {
    if !ratio.is_finite() {
        return "inf".to_string();
    }
    format!("{ratio:.2}x")
}

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use phoenix_metrics::Table;
///
/// let mut t = Table::new(vec!["scheduler", "p99 (s)"]);
/// t.add_row(vec!["phoenix".into(), "12.3".into()]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("phoenix"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are allowed and extend the layout.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Convenience: appends a row of displayable cells.
    pub fn add_display_row<D: fmt::Display>(&mut self, row: Vec<D>) -> &mut Self {
        self.add_row(row.iter().map(|d| d.to_string()).collect())
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate() {
                if i > 0 {
                    f.write_str("  ")?;
                }
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                write!(f, "{cell:<width$}")?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formatting() {
        assert_eq!(format_ratio(1.899), "1.90x");
        assert_eq!(format_ratio(f64::INFINITY), "inf");
        assert_eq!(format_ratio(f64::NAN), "inf");
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.add_row(vec!["xxxxxx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and rows share column starts.
        let header_b = lines[0].find("bbbb").unwrap();
        let row1_1 = lines[2].find('1').unwrap();
        assert_eq!(header_b, row1_1);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.add_row(vec!["only".into()]);
        let s = t.to_string();
        assert!(s.contains("only"));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn display_rows_from_numbers() {
        let mut t = Table::new(vec!["n"]);
        t.add_display_row(vec![42]);
        assert!(t.to_string().contains("42"));
    }
}
