//! Per-class latency aggregation: short/long × constrained/unconstrained.
//!
//! Every figure in the paper slices latencies along these two axes —
//! Figs. 7/10/11 report *short* jobs, Fig. 8 *long* jobs, Fig. 9 contrasts
//! *constrained* vs. *unconstrained* jobs.

use std::fmt;

use crate::distribution::Distribution;

/// Short vs. long job classification (Hawk-style runtime cutoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Latency-critical short job (80–95 % of the workload).
    Short,
    /// Batch long job.
    Long,
}

impl JobClass {
    /// Both classes.
    pub const ALL: [JobClass; 2] = [JobClass::Short, JobClass::Long];
}

impl fmt::Display for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobClass::Short => "short",
            JobClass::Long => "long",
        })
    }
}

/// Whether a job carried any placement constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintStatus {
    /// At least one constraint.
    Constrained,
    /// No constraints.
    Unconstrained,
}

impl ConstraintStatus {
    /// Both statuses.
    pub const ALL: [ConstraintStatus; 2] = [
        ConstraintStatus::Constrained,
        ConstraintStatus::Unconstrained,
    ];
}

impl fmt::Display for ConstraintStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConstraintStatus::Constrained => "constrained",
            ConstraintStatus::Unconstrained => "unconstrained",
        })
    }
}

/// A (class, status) cell key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyKey {
    /// Short or long.
    pub class: JobClass,
    /// Constrained or not.
    pub status: ConstraintStatus,
}

impl LatencyKey {
    /// Creates a key.
    pub fn new(class: JobClass, status: ConstraintStatus) -> Self {
        LatencyKey { class, status }
    }
}

impl fmt::Display for LatencyKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.class, self.status)
    }
}

/// Latency distributions bucketed by (class, status).
#[derive(Debug, Clone, Default)]
pub struct ClassifiedLatencies {
    cells: [Distribution; 4],
}

fn cell_index(key: LatencyKey) -> usize {
    let c = match key.class {
        JobClass::Short => 0,
        JobClass::Long => 1,
    };
    let s = match key.status {
        ConstraintStatus::Constrained => 0,
        ConstraintStatus::Unconstrained => 1,
    };
    c * 2 + s
}

impl ClassifiedLatencies {
    /// Creates an empty aggregation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a latency sample for a (class, status) cell.
    pub fn record(&mut self, key: LatencyKey, value: f64) {
        self.cells[cell_index(key)].record(value);
    }

    /// The distribution of one cell.
    pub fn cell(&self, key: LatencyKey) -> &Distribution {
        &self.cells[cell_index(key)]
    }

    /// Mutable access to one cell.
    pub fn cell_mut(&mut self, key: LatencyKey) -> &mut Distribution {
        &mut self.cells[cell_index(key)]
    }

    /// All samples of a job class, merged across constraint statuses.
    pub fn by_class(&self, class: JobClass) -> Distribution {
        let mut merged = Distribution::new();
        for status in ConstraintStatus::ALL {
            merged.merge(self.cell(LatencyKey::new(class, status)));
        }
        merged
    }

    /// All samples of a constraint status, merged across classes.
    pub fn by_status(&self, status: ConstraintStatus) -> Distribution {
        let mut merged = Distribution::new();
        for class in JobClass::ALL {
            merged.merge(self.cell(LatencyKey::new(class, status)));
        }
        merged
    }

    /// Everything, merged.
    pub fn overall(&self) -> Distribution {
        let mut merged = Distribution::new();
        for cell in &self.cells {
            merged.merge(cell);
        }
        merged
    }

    /// Merges another aggregation into this one, cell-wise.
    pub fn merge(&mut self, other: &ClassifiedLatencies) {
        for class in JobClass::ALL {
            for status in ConstraintStatus::ALL {
                let key = LatencyKey::new(class, status);
                self.cells[cell_index(key)].merge(other.cell(key));
            }
        }
    }

    /// Total number of samples across all cells.
    pub fn len(&self) -> usize {
        self.cells.iter().map(Distribution::len).sum()
    }

    /// Whether no samples exist anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(class: JobClass, status: ConstraintStatus) -> LatencyKey {
        LatencyKey::new(class, status)
    }

    #[test]
    fn cells_are_independent() {
        let mut c = ClassifiedLatencies::new();
        c.record(key(JobClass::Short, ConstraintStatus::Constrained), 1.0);
        c.record(key(JobClass::Long, ConstraintStatus::Unconstrained), 9.0);
        assert_eq!(
            c.cell(key(JobClass::Short, ConstraintStatus::Constrained))
                .len(),
            1
        );
        assert_eq!(
            c.cell(key(JobClass::Short, ConstraintStatus::Unconstrained))
                .len(),
            0
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn class_and_status_merges() {
        let mut c = ClassifiedLatencies::new();
        c.record(key(JobClass::Short, ConstraintStatus::Constrained), 1.0);
        c.record(key(JobClass::Short, ConstraintStatus::Unconstrained), 2.0);
        c.record(key(JobClass::Long, ConstraintStatus::Constrained), 3.0);
        assert_eq!(c.by_class(JobClass::Short).len(), 2);
        assert_eq!(c.by_status(ConstraintStatus::Constrained).len(), 2);
        assert_eq!(c.overall().len(), 3);
    }

    #[test]
    fn merge_is_cellwise() {
        let mut a = ClassifiedLatencies::new();
        a.record(key(JobClass::Short, ConstraintStatus::Constrained), 1.0);
        let mut b = ClassifiedLatencies::new();
        b.record(key(JobClass::Short, ConstraintStatus::Constrained), 2.0);
        b.record(key(JobClass::Long, ConstraintStatus::Unconstrained), 3.0);
        a.merge(&b);
        assert_eq!(
            a.cell(key(JobClass::Short, ConstraintStatus::Constrained))
                .len(),
            2
        );
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty_reports_empty() {
        let c = ClassifiedLatencies::new();
        assert!(c.is_empty());
        assert!(c.overall().is_empty());
    }

    #[test]
    fn keys_display_both_axes() {
        let k = key(JobClass::Long, ConstraintStatus::Constrained);
        assert_eq!(k.to_string(), "long/constrained");
    }
}
