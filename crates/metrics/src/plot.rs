//! Minimal ASCII chart rendering for the experiment binaries.
//!
//! The harness is terminal-first; each figure binary prints its numeric
//! table and, where a curve shape matters (CDFs, utilization sweeps), an
//! ASCII chart so the shape is visible without any plotting stack.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label; its first character is the plot glyph.
    pub name: String,
    /// Data points (need not be sorted).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// Renders series into a `width`×`height` character grid with axis labels
/// and a legend. Returns an empty string when there is nothing to plot.
///
/// Points from different series that land on the same cell are shown as
/// `*`.
pub fn render_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let width = width.clamp(16, 200);
    let height = height.clamp(4, 60);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.name.chars().next().unwrap_or('?');
        for (x, y) in &s.points {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row_from_bottom =
                (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row_from_bottom.min(height - 1);
            let cell = &mut grid[row][col.min(width - 1)];
            *cell = if *cell == ' ' || *cell == glyph {
                glyph
            } else {
                '*'
            };
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:>10.3} ┤", y_max);
    for (i, row) in grid.iter().enumerate() {
        let label = if i == height - 1 {
            format!("{y_min:>10.3} ┤")
        } else {
            format!("{:>10} │", "")
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label}{}", line.trim_end());
    }
    let _ = writeln!(out, "{:>11}└{}", "", "─".repeat(width));
    let _ = writeln!(out, "{:>12}{:<.3} … {:.3}", "", x_min, x_max);
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{}={}", s.name.chars().next().unwrap_or('?'), s.name))
        .collect();
    let _ = writeln!(out, "{:>12}legend: {}", "", legend.join("  "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_glyphs_and_legend() {
        let s1 = Series::new("phoenix", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]);
        let s2 = Series::new("eagle", vec![(0.0, 4.0), (1.0, 2.0), (2.0, 0.0)]);
        let chart = render_chart("test", &[s1, s2], 40, 10);
        assert!(chart.contains('p'), "{chart}");
        assert!(chart.contains('e'), "{chart}");
        assert!(chart.contains("legend: p=phoenix  e=eagle"));
        assert!(chart.contains("test"));
    }

    #[test]
    fn overlapping_points_become_stars() {
        let s1 = Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)]);
        let s2 = Series::new("b", vec![(0.0, 0.0), (1.0, 0.5)]);
        let chart = render_chart("t", &[s1, s2], 30, 8);
        assert!(chart.contains('*'), "{chart}");
    }

    #[test]
    fn empty_series_render_nothing() {
        assert!(render_chart("t", &[], 30, 8).is_empty());
        let s = Series::new("a", vec![(f64::NAN, 1.0)]);
        assert!(render_chart("t", &[s], 30, 8).is_empty());
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let s = Series::new("a", vec![(5.0, 3.0), (5.0, 3.0)]);
        let chart = render_chart("t", &[s], 30, 8);
        assert!(chart.contains('a'));
    }

    #[test]
    fn axis_labels_reflect_data_range() {
        let s = Series::new("a", vec![(10.0, 100.0), (20.0, 400.0)]);
        let chart = render_chart("t", &[s], 30, 8);
        assert!(chart.contains("400.000"), "{chart}");
        assert!(chart.contains("100.000"), "{chart}");
        assert!(chart.contains("10.000 … 20.000"), "{chart}");
    }
}
