//! Fairness metrics.
//!
//! The paper claims Phoenix "does not affect the fairness ... of the other
//! long and unconstrained jobs" (§I) — the starvation slack bounds how much
//! any job can be penalized by reordering. We quantify this with Jain's
//! fairness index over per-job slowdowns.

use crate::distribution::Distribution;

/// Jain's fairness index over a set of non-negative values:
///
/// ```text
/// J = (Σ xᵢ)² / (n · Σ xᵢ²)
/// ```
///
/// `J = 1` when all values are equal; `J → 1/n` when one value dominates.
/// Returns 0.0 for an empty slice or an all-zero slice.
pub fn jains_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 0.0;
    }
    sum * sum / (values.len() as f64 * sq)
}

/// Jain's index over the samples of a distribution.
pub fn jains_index_of(d: &Distribution) -> f64 {
    jains_index(d.samples())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_are_perfectly_fair() {
        assert!((jains_index(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_dominator_approaches_one_over_n() {
        let j = jains_index(&[100.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_inputs() {
        assert_eq!(jains_index(&[]), 0.0);
        assert_eq!(jains_index(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn index_is_scale_invariant() {
        let a = jains_index(&[1.0, 2.0, 3.0]);
        let b = jains_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn over_distribution() {
        let d = Distribution::from_samples(vec![2.0, 2.0]);
        assert!((jains_index_of(&d) - 1.0).abs() < 1e-12);
    }
}
