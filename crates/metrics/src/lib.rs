//! Metrics for the Phoenix scheduler reproduction.
//!
//! The paper's evaluation reports **50th/90th/99th-percentile job response
//! times**, **CDFs of job queuing times** (Fig. 2), **queuing-delay time
//! series** (Fig. 3) and **normalized comparisons** between schedulers
//! (Figs. 7–11). This crate provides the corresponding primitives:
//!
//! * [`Distribution`] — an exact sample distribution with percentile,
//!   mean and CDF queries.
//! * [`JobClass`], [`ClassifiedLatencies`] — the short/long ×
//!   constrained/unconstrained breakdown every figure uses.
//! * [`TimeSeries`] — bucketed time series for Fig.-3-style plots.
//! * [`report`] — plain-text table rendering for the experiment binaries.
//!
//! # Example
//!
//! ```
//! use phoenix_metrics::Distribution;
//!
//! let mut d = Distribution::new();
//! for i in 1..=101 {
//!     d.record(f64::from(i));
//! }
//! assert_eq!(d.percentile(50.0), 51.0);
//! assert_eq!(d.percentile(99.0), 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod distribution;
pub mod fairness;
pub mod plot;
pub mod queueing;
pub mod report;
pub mod timeseries;

pub use classes::{ClassifiedLatencies, ConstraintStatus, JobClass, LatencyKey};
pub use distribution::{CdfPoint, Distribution};
pub use fairness::jains_index;
pub use plot::{render_chart, Series};
pub use queueing::{md1_mean_wait, mg1_mean_wait, mm1_mean_wait, ServiceMoments};
pub use report::{format_ratio, Table};
pub use timeseries::TimeSeries;
