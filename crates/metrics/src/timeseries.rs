//! Bucketed time series (Fig. 3: queuing delay of constrained vs.
//! unconstrained jobs over trace time).

use std::fmt;

/// A fixed-width-bucket time series over simulated seconds.
///
/// Samples are `(time, value)` pairs; queries aggregate per bucket.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket_width: f64,
    /// Per-bucket (sum, count, max).
    buckets: Vec<(f64, u64, f64)>,
}

impl TimeSeries {
    /// Creates a time series with the given bucket width (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not strictly positive.
    pub fn new(bucket_width: f64) -> Self {
        assert!(
            bucket_width > 0.0 && bucket_width.is_finite(),
            "bucket width must be positive"
        );
        TimeSeries {
            bucket_width,
            buckets: Vec::new(),
        }
    }

    /// The configured bucket width in seconds.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// Records `value` at time `t` (seconds). Negative or non-finite
    /// times/values are ignored.
    pub fn record(&mut self, t: f64, value: f64) {
        if !(t.is_finite() && value.is_finite()) || t < 0.0 {
            return;
        }
        let idx = (t / self.bucket_width) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, (0.0, 0, 0.0));
        }
        let b = &mut self.buckets[idx];
        b.0 += value;
        b.1 += 1;
        if value > b.2 {
            b.2 = value;
        }
    }

    /// Number of buckets (index of the last non-empty bucket + 1).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Mean value per bucket: `(bucket_start_time, mean)`. Empty buckets are
    /// skipped.
    pub fn bucket_means(&self) -> Vec<(f64, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, (_, n, _))| *n > 0)
            .map(|(i, (sum, n, _))| (i as f64 * self.bucket_width, sum / *n as f64))
            .collect()
    }

    /// Max value per bucket: `(bucket_start_time, max)`. Empty buckets are
    /// skipped.
    pub fn bucket_maxes(&self) -> Vec<(f64, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, (_, n, _))| *n > 0)
            .map(|(i, (_, _, max))| (i as f64 * self.bucket_width, *max))
            .collect()
    }

    /// Total sample count.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|(_, n, _)| *n as usize).sum()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timeseries: {} samples over {} buckets of {}s",
            self.len(),
            self.num_buckets(),
            self.bucket_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_assigns_by_time() {
        let mut ts = TimeSeries::new(10.0);
        ts.record(0.0, 1.0);
        ts.record(9.9, 3.0);
        ts.record(10.0, 5.0);
        let means = ts.bucket_means();
        assert_eq!(means.len(), 2);
        assert_eq!(means[0], (0.0, 2.0));
        assert_eq!(means[1], (10.0, 5.0));
    }

    #[test]
    fn maxes_track_per_bucket_max() {
        let mut ts = TimeSeries::new(5.0);
        ts.record(1.0, 2.0);
        ts.record(2.0, 7.0);
        ts.record(3.0, 1.0);
        assert_eq!(ts.bucket_maxes(), vec![(0.0, 7.0)]);
    }

    #[test]
    fn invalid_samples_are_ignored() {
        let mut ts = TimeSeries::new(1.0);
        ts.record(-1.0, 5.0);
        ts.record(f64::NAN, 5.0);
        ts.record(1.0, f64::INFINITY);
        assert!(ts.is_empty());
    }

    #[test]
    fn empty_buckets_are_skipped_in_output() {
        let mut ts = TimeSeries::new(1.0);
        ts.record(0.5, 1.0);
        ts.record(5.5, 2.0);
        let means = ts.bucket_means();
        assert_eq!(means.len(), 2);
        assert_eq!(means[1].0, 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_width_panics() {
        let _ = TimeSeries::new(0.0);
    }
}
