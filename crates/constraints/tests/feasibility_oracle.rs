//! Equivalence oracle for the posting-list `FeasibilityIndex`.
//!
//! The index answers feasibility queries from per-attribute posting lists
//! and bitset blocks; the simulator's determinism (golden digests, RNG
//! draw sequences) rests on those answers being *exactly* the ones a naive
//! full-population scan would give. This suite pins that equivalence over
//! random populations and random constraint sets, covering every operator,
//! every kind, multi-constraint intersections, and the high-cardinality
//! fallback path (more distinct values than the bitset cap).

use phoenix_constraints::{
    feasible_fraction, AttributeVector, Constraint, ConstraintKind, ConstraintOp, ConstraintSet,
    FeasibilityIndex, Isa,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One machine from compact attribute pools (realistic: few distinct values
/// per kind) with a high-cardinality clock attribute so the CpuClockSpeed
/// kind overflows the prefix-bitset cap and exercises the fallback.
fn machine(bits: u64) -> AttributeVector {
    AttributeVector::builder()
        .isa(Isa::ALL[(bits % 3) as usize])
        .num_cores([4, 8, 16, 32, 64][(bits >> 2) as usize % 5])
        .memory_gb([16, 32, 64, 128][(bits >> 4) as usize % 4])
        .num_disks((bits >> 6) as u32 % 8)
        .ethernet_mbps([1_000, 10_000][(bits >> 9) as usize % 2])
        .kernel_version([266, 310, 318][(bits >> 10) as usize % 3])
        .cpu_clock_mhz(1_800 + (bits >> 12) as u32 % 200)
        .rack((bits >> 20) as u32 % 10)
        .rack_size([20, 40][(bits >> 24) as usize % 2])
        .build()
}

fn constraint(kind_sel: u8, op_sel: u8, value_sel: u8, hard: bool) -> Constraint {
    let kind = ConstraintKind::ALL[kind_sel as usize % ConstraintKind::ALL.len()];
    // Categorical kinds only support equality; for the rest pick values
    // straddling the generated attribute ranges (including never-matching
    // and always-matching extremes).
    let op = if kind.is_categorical() {
        ConstraintOp::Eq
    } else {
        [ConstraintOp::Lt, ConstraintOp::Gt, ConstraintOp::Eq][op_sel as usize % 3]
    };
    let value = match kind {
        ConstraintKind::Architecture => u64::from(value_sel % 4),
        ConstraintKind::PlatformFamily => u64::from(value_sel % 2),
        ConstraintKind::NumCores => [0, 4, 8, 16, 32, 64, 100][value_sel as usize % 7],
        ConstraintKind::Memory => [8, 16, 32, 64, 128][value_sel as usize % 5],
        ConstraintKind::MaxDisks | ConstraintKind::MinDisks => u64::from(value_sel % 9),
        ConstraintKind::EthernetSpeed => [500, 1_000, 10_000][value_sel as usize % 3],
        ConstraintKind::KernelVersion => [200, 266, 310, 318, 400][value_sel as usize % 5],
        ConstraintKind::CpuClockSpeed => 1_750 + u64::from(value_sel) * 2,
        ConstraintKind::NumNodes => [10, 20, 40, 80][value_sel as usize % 4],
    };
    if hard {
        Constraint::hard(kind, op, value)
    } else {
        Constraint::soft(kind, op, value)
    }
}

fn naive_feasible(machines: &[AttributeVector], set: &ConstraintSet) -> Vec<u32> {
    machines
        .iter()
        .enumerate()
        .filter(|(_, m)| set.satisfied_by(m))
        .map(|(i, _)| i as u32)
        .collect()
}

proptest! {
    /// The indexed `feasible` list equals the naive scan (same ids, same
    /// ascending order) and every derived query agrees with it.
    #[test]
    fn index_matches_naive_scan(
        seeds in prop::collection::vec(0u64..u64::MAX, 1..300),
        raw in prop::collection::vec((0u8..255, 0u8..255, 0u8..255, 0u8..2), 0..5),
    ) {
        let machines: Vec<AttributeVector> = seeds.iter().map(|&s| machine(s)).collect();
        let set: ConstraintSet = raw
            .iter()
            .map(|&(k, o, v, h)| constraint(k, o, v, h == 0))
            .collect();
        let index = FeasibilityIndex::new(machines.clone());

        let naive = naive_feasible(&machines, &set);
        prop_assert_eq!(index.count_feasible_uncached(&set), naive.len(), "{}", &set);
        prop_assert_eq!(index.feasible(&set).to_vec(), naive.clone(), "{}", &set);
        prop_assert_eq!(index.count_feasible(&set), naive.len());
        prop_assert!(
            (feasible_fraction(&machines, &set)
                - naive.len() as f64 / machines.len() as f64)
                .abs()
                < 1e-12
        );
        for w in 0..machines.len() as u32 {
            prop_assert_eq!(
                index.is_feasible(w, &set),
                set.satisfied_by(&machines[w as usize])
            );
        }
        for c in set.iter() {
            let single: Vec<u32> = machines
                .iter()
                .enumerate()
                .filter(|(_, m)| c.satisfied_by(m))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(index.feasible_single(c).to_vec(), single.clone(), "{}", c);
            prop_assert_eq!(index.count_single(c), single.len(), "{}", c);
        }
    }

    /// Sampling returns distinct feasible non-excluded workers, exactly
    /// min(k, available) of them, for both the linear and bitmask
    /// duplicate-guard regimes.
    #[test]
    fn sampling_is_exact_and_distinct(
        seeds in prop::collection::vec(0u64..u64::MAX, 1..200),
        raw in prop::collection::vec((0u8..255, 0u8..255, 0u8..255, 0u8..2), 0..3),
        k in 0usize..40,
        rng_seed in 0u64..1_000,
        exclude_mod in 1u32..7,
    ) {
        let machines: Vec<AttributeVector> = seeds.iter().map(|&s| machine(s)).collect();
        let set: ConstraintSet = raw
            .iter()
            .map(|&(kk, o, v, h)| constraint(kk, o, v, h == 0))
            .collect();
        let index = FeasibilityIndex::new(machines.clone());
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let sample =
            index.sample_feasible(&set, k, &mut rng, |w| w % exclude_mod == 0);
        let available = naive_feasible(&machines, &set)
            .into_iter()
            .filter(|w| w % exclude_mod != 0)
            .count();
        prop_assert_eq!(sample.len(), k.min(available));
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sample.len(), "duplicates in sample");
        for &w in &sample {
            prop_assert!(w % exclude_mod != 0, "excluded worker {} sampled", w);
            prop_assert!(set.satisfied_by(&machines[w as usize]));
        }
    }
}
