//! Compile-vs-naive equivalence oracle for constraint *expressions*.
//!
//! The `FeasibilityIndex` compiles `All`/`Any`/`Not`/`VectorDemand` trees
//! to bitset plans (`Any` = word-wise OR, `Not` = AND-NOT against the
//! universe mask, `All` = intersection). This battery pins the compiled
//! plans to the naive recursive evaluator [`ConstraintExpr::eval`] over
//! random trees (depth ≤ 5, every kind and operator, nested `Not`/`Any`,
//! vector leaves, high-cardinality fallback kinds) and random clusters:
//! `feasible()`, `count_feasible()`, `count_feasible_uncached()`,
//! `is_feasible()`, and **exact `sample_feasible()` RNG-draw parity** —
//! including after machine add/remove/crash churn.

use phoenix_constraints::{
    AttributeVector, Constraint, ConstraintExpr, ConstraintKind, ConstraintOp, ConstraintSet,
    FeasibilityIndex, Isa, VectorDemand,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One machine from compact attribute pools, with a high-cardinality clock
/// attribute so the CpuClockSpeed kind overflows the prefix-bitset cap and
/// `Not`/`Any` plans exercise the posting-range fallback.
fn machine(bits: u64) -> AttributeVector {
    AttributeVector::builder()
        .isa(Isa::ALL[(bits % 3) as usize])
        .num_cores([4, 8, 16, 32, 64][(bits >> 2) as usize % 5])
        .memory_gb([16, 32, 64, 128][(bits >> 4) as usize % 4])
        .num_disks((bits >> 6) as u32 % 8)
        .ethernet_mbps([1_000, 10_000][(bits >> 9) as usize % 2])
        .kernel_version([266, 310, 318][(bits >> 10) as usize % 3])
        .cpu_clock_mhz(1_800 + (bits >> 12) as u32 % 200)
        .rack((bits >> 20) as u32 % 10)
        .rack_size([20, 40][(bits >> 24) as usize % 2])
        .build()
}

/// A random scalar leaf over every kind/op/class, with values straddling
/// the generated attribute ranges (never-matching and always-matching
/// extremes included).
fn random_leaf(rng: &mut StdRng) -> Constraint {
    let kind = ConstraintKind::ALL[rng.random_range(0..ConstraintKind::ALL.len())];
    let op = if kind.is_categorical() {
        ConstraintOp::Eq
    } else {
        [ConstraintOp::Lt, ConstraintOp::Gt, ConstraintOp::Eq][rng.random_range(0..3)]
    };
    let value_sel = rng.random_range(0..256u64);
    let value = match kind {
        ConstraintKind::Architecture => value_sel % 4,
        ConstraintKind::PlatformFamily => value_sel % 2,
        ConstraintKind::NumCores => [0, 4, 8, 16, 32, 64, 100][value_sel as usize % 7],
        ConstraintKind::Memory => [8, 16, 32, 64, 128][value_sel as usize % 5],
        ConstraintKind::MaxDisks | ConstraintKind::MinDisks => value_sel % 9,
        ConstraintKind::EthernetSpeed => [500, 1_000, 10_000][value_sel as usize % 3],
        ConstraintKind::KernelVersion => [200, 266, 310, 318, 400][value_sel as usize % 5],
        ConstraintKind::CpuClockSpeed => 1_750 + value_sel * 2,
        ConstraintKind::NumNodes => [10, 20, 40, 80][value_sel as usize % 4],
    };
    if rng.random::<bool>() {
        Constraint::hard(kind, op, value)
    } else {
        Constraint::soft(kind, op, value)
    }
}

/// A random expression tree with combinator nesting bounded by `depth`
/// (total tree depth ≤ depth + 1, i.e. ≤ 5 for the battery's budget of 4).
fn random_expr(rng: &mut StdRng, depth: usize) -> ConstraintExpr {
    let choice = if depth == 0 {
        rng.random_range(0..2u32)
    } else {
        rng.random_range(0..6u32)
    };
    match choice {
        0 => ConstraintExpr::leaf(random_leaf(rng)),
        1 => ConstraintExpr::vector(VectorDemand {
            cores: [0, 4, 16, 64][rng.random_range(0..4)],
            memory_gb: [0, 32, 128][rng.random_range(0..3)],
            disks: rng.random_range(0..9u64),
            clock_mhz: [0, 1_850, 1_990][rng.random_range(0..3)],
            ethernet_mbps: [0, 1_000, 10_000][rng.random_range(0..3)],
        }),
        2 | 3 => {
            let n = rng.random_range(0..4usize);
            let children = (0..n).map(|_| random_expr(rng, depth - 1)).collect();
            if choice == 2 {
                ConstraintExpr::all_of(children)
            } else {
                ConstraintExpr::any_of(children)
            }
        }
        _ => ConstraintExpr::not(random_expr(rng, depth - 1)),
    }
}

fn naive_feasible(machines: &[AttributeVector], expr: &ConstraintExpr) -> Vec<u32> {
    machines
        .iter()
        .enumerate()
        .filter(|(_, m)| expr.eval(m))
        .map(|(i, _)| i as u32)
        .collect()
}

/// A from-scratch mirror of `sample_feasible`'s documented RNG contract,
/// with membership answered by the naive recursive evaluator: one
/// `random_range` per rejection try (budget `k*6 + 16`), then one shuffle
/// of the surviving exact-phase pool (ascending ids). Draw-for-draw parity
/// with the index proves expression membership cannot perturb the
/// simulator's determinism.
fn naive_sample(
    machines: &[AttributeVector],
    expr: &ConstraintExpr,
    k: usize,
    rng: &mut StdRng,
    mut exclude: impl FnMut(u32) -> bool,
) -> Vec<u32> {
    if k == 0 || machines.is_empty() {
        return Vec::new();
    }
    let n = machines.len();
    let mut picked: Vec<u32> = Vec::new();
    for _ in 0..k * 6 + 16 {
        if picked.len() == k {
            return picked;
        }
        let idx = rng.random_range(0..n) as u32;
        if picked.contains(&idx) || exclude(idx) {
            continue;
        }
        if expr.eval(&machines[idx as usize]) {
            picked.push(idx);
        }
    }
    if picked.len() == k {
        return picked;
    }
    let mut pool: Vec<u32> = naive_feasible(machines, expr)
        .into_iter()
        .filter(|&w| !picked.contains(&w) && !exclude(w))
        .collect();
    pool.shuffle(rng);
    for w in pool {
        if picked.len() == k {
            break;
        }
        picked.push(w);
    }
    picked
}

fn check_parity(machines: &[AttributeVector], index: &FeasibilityIndex, expr: &ConstraintExpr) {
    let set = ConstraintSet::from_expr(expr.clone());
    let naive = naive_feasible(machines, expr);
    assert_eq!(
        index.count_feasible_uncached(&set),
        naive.len(),
        "count_feasible_uncached vs naive: {expr}"
    );
    assert_eq!(
        index.feasible(&set).to_vec(),
        naive,
        "feasible list vs naive: {expr}"
    );
    assert_eq!(index.count_feasible(&set), naive.len());
    for w in 0..machines.len() as u32 {
        assert_eq!(
            index.is_feasible(w, &set),
            expr.eval(&machines[w as usize]),
            "is_feasible worker {w}: {expr}"
        );
        assert_eq!(
            set.satisfied_by(&machines[w as usize]),
            expr.eval(&machines[w as usize])
        );
    }
}

/// `Not(leaf)` over every kind and operator is the exact set complement of
/// the leaf on the indexed population — and complements never resurrect
/// dead machines: liveness is an exclusion predicate at sampling time, so
/// a machine excluded as dead can never be returned, no matter how the
/// complement's bitset looks.
#[test]
fn not_leaf_is_exact_complement_and_never_resurrects_dead_machines() {
    let machines: Vec<AttributeVector> = (0..257u64)
        .map(|i| machine(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        .collect();
    let n = machines.len() as u32;
    let index = FeasibilityIndex::new(machines.clone());
    // Every kind × every applicable op × a spread of values.
    for kind in ConstraintKind::ALL {
        let ops: &[ConstraintOp] = if kind.is_categorical() {
            &[ConstraintOp::Eq]
        } else {
            &[ConstraintOp::Lt, ConstraintOp::Gt, ConstraintOp::Eq]
        };
        for &op in ops {
            for value_sel in [0u64, 31, 64, 127, 200, 255] {
                let mut probe = StdRng::seed_from_u64(value_sel);
                let leaf = loop {
                    let c = random_leaf(&mut probe);
                    if c.kind == kind && c.op == op {
                        break c;
                    }
                };
                let pos = ConstraintExpr::leaf(leaf);
                let neg = ConstraintExpr::not(pos.clone());
                let pos_ids = naive_feasible(&machines, &pos);
                let neg_set = ConstraintSet::from_expr(neg.clone());
                let complement: Vec<u32> = (0..n).filter(|w| !pos_ids.contains(w)).collect();
                assert_eq!(
                    index.feasible(&neg_set).to_vec(),
                    complement,
                    "Not({leaf}) is not the set complement"
                );
                assert_eq!(index.count_feasible(&neg_set), complement.len());

                // "Dead" machines (every fourth id) must stay invisible to
                // sampling even when the complement's bitset covers them.
                let mut rng = StdRng::seed_from_u64(7 + value_sel);
                let sample = index.sample_feasible(&neg_set, 12, &mut rng, |w| w % 4 == 0);
                for w in &sample {
                    assert!(w % 4 != 0, "Not({leaf}) resurrected dead machine {w}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compiled plans agree with the recursive evaluator on every
    /// feasibility query, for random trees over random clusters.
    #[test]
    fn compiled_plan_matches_recursive_evaluator(
        seeds in prop::collection::vec(0u64..u64::MAX, 1..300),
        expr_seed in 0u64..u64::MAX,
        depth in 0usize..5,
    ) {
        let machines: Vec<AttributeVector> = seeds.iter().map(|&s| machine(s)).collect();
        let expr = random_expr(&mut StdRng::seed_from_u64(expr_seed), depth);
        prop_assert!(expr.depth() <= 5);
        let index = FeasibilityIndex::new(machines.clone());
        check_parity(&machines, &index, &expr);
    }

    /// Exact RNG-draw parity of `sample_feasible` between the compiled
    /// plan and the naive mirror sampler: same picks, and the two RNG
    /// streams remain synchronized afterwards (proving identical draw
    /// counts), under exclusion predicates standing in for dead machines.
    #[test]
    fn sampling_draw_parity_with_naive_mirror(
        seeds in prop::collection::vec(0u64..u64::MAX, 1..200),
        expr_seed in 0u64..u64::MAX,
        depth in 0usize..5,
        k in 0usize..40,
        rng_seed in 0u64..1_000,
        exclude_mod in 1u32..7,
    ) {
        let machines: Vec<AttributeVector> = seeds.iter().map(|&s| machine(s)).collect();
        let expr = random_expr(&mut StdRng::seed_from_u64(expr_seed), depth);
        let set = ConstraintSet::from_expr(expr.clone());
        let index = FeasibilityIndex::new(machines.clone());

        // Cold path: the set's bitset is not cached yet, so membership
        // falls to `set.satisfied_by` (the tree evaluator).
        let mut rng_a = StdRng::seed_from_u64(rng_seed);
        let got = index.sample_feasible(&set, k, &mut rng_a, |w| w % exclude_mod == 0);
        let mut rng_b = StdRng::seed_from_u64(rng_seed);
        let want = naive_sample(&machines, &expr, k, &mut rng_b, |w| w % exclude_mod == 0);
        prop_assert_eq!(&got, &want, "cold sample diverged");
        prop_assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>(), "draw counts diverged");

        // Warm path: after a feasibility query the bitset is cached and
        // membership becomes a word test — the draws must not change.
        let _ = index.count_feasible(&set);
        let mut rng_c = StdRng::seed_from_u64(rng_seed);
        let warm = index.sample_feasible(&set, k, &mut rng_c, |w| w % exclude_mod == 0);
        prop_assert_eq!(&warm, &want, "warm sample diverged from cold");

        // No resurrection: excluded ("dead") machines never appear, even
        // for complements that match them at the index level.
        for &w in &got {
            prop_assert!(w % exclude_mod != 0, "excluded worker {} sampled", w);
        }
    }

    /// Equivalence survives machine churn: removals, additions and crashes
    /// (modeled exactly as the simulator does — indexes are rebuilt per
    /// population, aliveness is an exclusion predicate, never index state).
    #[test]
    fn churn_preserves_equivalence(
        seeds in prop::collection::vec(0u64..u64::MAX, 2..150),
        extra in prop::collection::vec(0u64..u64::MAX, 1..80),
        expr_seed in 0u64..u64::MAX,
        depth in 1usize..5,
        rng_seed in 0u64..1_000,
    ) {
        let expr = random_expr(&mut StdRng::seed_from_u64(expr_seed), depth);
        let mut machines: Vec<AttributeVector> = seeds.iter().map(|&s| machine(s)).collect();
        check_parity(&machines, &FeasibilityIndex::new(machines.clone()), &expr);

        // Add machines.
        machines.extend(extra.iter().map(|&s| machine(s)));
        let index = FeasibilityIndex::new(machines.clone());
        check_parity(&machines, &index, &expr);

        // Crash every third machine: sampling parity with the aliveness
        // exclusion on the grown population.
        let set = ConstraintSet::from_expr(expr.clone());
        let mut rng_a = StdRng::seed_from_u64(rng_seed);
        let got = index.sample_feasible(&set, 8, &mut rng_a, |w| w % 3 == 0);
        let mut rng_b = StdRng::seed_from_u64(rng_seed);
        let want = naive_sample(&machines, &expr, 8, &mut rng_b, |w| w % 3 == 0);
        prop_assert_eq!(got, want, "post-churn sample diverged");

        // Remove the tail again (scale-down) and re-check.
        machines.truncate(seeds.len() / 2);
        if !machines.is_empty() {
            check_parity(&machines, &FeasibilityIndex::new(machines.clone()), &expr);
        }
    }
}
