//! Heterogeneous machine population generation (the supply side of Fig. 6).
//!
//! The Phoenix evaluation runs on clusters of 5,000–19,000 heterogeneous
//! workers. A [`PopulationProfile`] describes the marginal distribution of
//! every machine attribute; [`MachinePopulation::generate`] draws a concrete
//! cluster from it, deterministic under a seeded RNG.

use rand::Rng;

use crate::attr::{AttributeVector, Isa, PlatformFamily};

/// A weighted choice table: `(value, weight)` pairs.
///
/// Weights need not sum to 1; they are normalized on sampling.
pub type Weighted<T> = Vec<(T, f64)>;

/// Samples from a weighted table.
///
/// # Panics
///
/// Panics if `table` is empty or its total weight is non-positive.
pub fn weighted_pick<T: Copy, R: Rng + ?Sized>(table: &[(T, f64)], rng: &mut R) -> T {
    assert!(!table.is_empty(), "weighted table must be non-empty");
    let total: f64 = table.iter().map(|(_, w)| *w).sum();
    assert!(
        total > 0.0,
        "weighted table must have positive total weight"
    );
    let mut x = rng.random::<f64>() * total;
    for (v, w) in table {
        x -= w;
        if x <= 0.0 {
            return *v;
        }
    }
    table[table.len() - 1].0
}

/// Marginal distributions for every machine attribute in a cluster.
#[derive(Debug, Clone)]
pub struct PopulationProfile {
    /// ISA mix.
    pub isa: Weighted<Isa>,
    /// Core-count mix.
    pub num_cores: Weighted<u32>,
    /// Memory sizes (GB).
    pub memory_gb: Weighted<u32>,
    /// Disk counts.
    pub num_disks: Weighted<u32>,
    /// NIC speeds (Mbps).
    pub ethernet_mbps: Weighted<u32>,
    /// Kernel versions (ordered encoding).
    pub kernel_version: Weighted<u32>,
    /// Platform families.
    pub platform: Weighted<u8>,
    /// CPU clocks (MHz).
    pub cpu_clock_mhz: Weighted<u32>,
    /// Rack sizes; machines are packed into racks drawn from this table.
    pub rack_size: Weighted<u32>,
}

impl PopulationProfile {
    /// A Google-like heterogeneous datacenter mix.
    ///
    /// The proportions follow the qualitative description of the Google
    /// trace: dominated by x86 machines across a handful of platform
    /// generations, with minority ARM/POWER pools, mixed core counts and a
    /// long tail of high-end configurations.
    pub fn google_like() -> Self {
        PopulationProfile {
            isa: vec![(Isa::X86, 0.86), (Isa::Arm, 0.09), (Isa::Power, 0.05)],
            num_cores: vec![(4, 0.25), (8, 0.35), (16, 0.20), (32, 0.15), (64, 0.05)],
            memory_gb: vec![(16, 0.20), (32, 0.40), (64, 0.25), (128, 0.15)],
            num_disks: vec![(1, 0.10), (2, 0.20), (4, 0.35), (8, 0.20), (12, 0.15)],
            ethernet_mbps: vec![(1_000, 0.55), (10_000, 0.35), (40_000, 0.10)],
            kernel_version: vec![(260, 0.15), (310, 0.35), (318, 0.30), (410, 0.20)],
            platform: vec![(0, 0.40), (1, 0.30), (2, 0.20), (3, 0.10)],
            cpu_clock_mhz: vec![
                (2_000, 0.25),
                (2_200, 0.30),
                (2_600, 0.25),
                (3_000, 0.15),
                (3_500, 0.05),
            ],
            rack_size: vec![(20, 0.30), (40, 0.50), (80, 0.20)],
        }
    }

    /// A more uniform enterprise cluster (used for the Yahoo/Cloudera
    /// profiles): fewer platform generations, dominated by x86 but keeping
    /// small minority pools of every machine class the constraint model can
    /// request (the paper embeds the *Google* constraint model into these
    /// traces, so their clusters must be able to satisfy it).
    pub fn enterprise_like() -> Self {
        PopulationProfile {
            isa: vec![(Isa::X86, 0.92), (Isa::Arm, 0.055), (Isa::Power, 0.025)],
            num_cores: vec![(8, 0.35), (16, 0.35), (32, 0.25), (64, 0.05)],
            memory_gb: vec![(32, 0.40), (64, 0.40), (128, 0.20)],
            num_disks: vec![(1, 0.05), (2, 0.20), (4, 0.40), (8, 0.20), (12, 0.15)],
            ethernet_mbps: vec![(1_000, 0.60), (10_000, 0.30), (40_000, 0.10)],
            kernel_version: vec![(310, 0.40), (318, 0.40), (410, 0.20)],
            platform: vec![(0, 0.45), (1, 0.30), (2, 0.15), (3, 0.10)],
            cpu_clock_mhz: vec![(2_200, 0.35), (2_600, 0.35), (3_000, 0.25), (3_500, 0.05)],
            rack_size: vec![(20, 0.30), (40, 0.50), (80, 0.20)],
        }
    }
}

impl Default for PopulationProfile {
    fn default() -> Self {
        Self::google_like()
    }
}

/// A generated cluster: the machine attribute vectors plus the profile that
/// produced them.
#[derive(Debug, Clone)]
pub struct MachinePopulation {
    machines: Vec<AttributeVector>,
    profile: PopulationProfile,
}

impl MachinePopulation {
    /// Draws `n` machines from `profile`, packing them into racks.
    pub fn generate<R: Rng + ?Sized>(profile: PopulationProfile, n: usize, rng: &mut R) -> Self {
        let mut machines = Vec::with_capacity(n);
        let mut rack_id = 0u32;
        let mut remaining_in_rack = 0u32;
        let mut current_rack_size = 0u32;
        for _ in 0..n {
            if remaining_in_rack == 0 {
                current_rack_size = weighted_pick(&profile.rack_size, rng);
                remaining_in_rack = current_rack_size;
                rack_id += 1;
            }
            remaining_in_rack -= 1;
            machines.push(AttributeVector {
                isa: weighted_pick(&profile.isa, rng),
                num_cores: weighted_pick(&profile.num_cores, rng),
                memory_gb: weighted_pick(&profile.memory_gb, rng),
                num_disks: weighted_pick(&profile.num_disks, rng),
                ethernet_mbps: weighted_pick(&profile.ethernet_mbps, rng),
                kernel_version: weighted_pick(&profile.kernel_version, rng),
                platform: PlatformFamily(weighted_pick(&profile.platform, rng)),
                cpu_clock_mhz: weighted_pick(&profile.cpu_clock_mhz, rng),
                rack: rack_id - 1,
                rack_size: current_rack_size,
            });
        }
        MachinePopulation { machines, profile }
    }

    /// The generated machines (worker index order).
    pub fn machines(&self) -> &[AttributeVector] {
        &self.machines
    }

    /// Consumes the population, returning the machine list.
    pub fn into_machines(self) -> Vec<AttributeVector> {
        self.machines
    }

    /// The profile the population was drawn from.
    pub fn profile(&self) -> &PopulationProfile {
        &self.profile
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let p1 = MachinePopulation::generate(PopulationProfile::google_like(), 500, &mut a);
        let p2 = MachinePopulation::generate(PopulationProfile::google_like(), 500, &mut b);
        assert_eq!(p1.machines(), p2.machines());
    }

    #[test]
    fn population_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = MachinePopulation::generate(PopulationProfile::enterprise_like(), 1234, &mut rng);
        assert_eq!(p.len(), 1234);
        assert!(!p.is_empty());
    }

    #[test]
    fn isa_mix_tracks_profile_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = MachinePopulation::generate(PopulationProfile::google_like(), 20_000, &mut rng);
        let x86 = p.machines().iter().filter(|m| m.isa == Isa::X86).count() as f64 / p.len() as f64;
        assert!(
            (x86 - 0.86).abs() < 0.02,
            "x86 share {x86} should be near 0.86"
        );
    }

    #[test]
    fn racks_are_contiguous_and_sized_consistently() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = MachinePopulation::generate(PopulationProfile::google_like(), 2_000, &mut rng);
        let machines = p.machines();
        // Machines in the same rack share rack_size; rack ids are
        // non-decreasing in generation order.
        for w in machines.windows(2) {
            assert!(w[1].rack >= w[0].rack);
            if w[0].rack == w[1].rack {
                assert_eq!(w[0].rack_size, w[1].rack_size);
            }
        }
        // No rack exceeds its declared size.
        let max_rack = machines.last().unwrap().rack;
        for r in 0..=max_rack {
            let members: Vec<_> = machines.iter().filter(|m| m.rack == r).collect();
            if let Some(first) = members.first() {
                assert!(members.len() as u32 <= first.rack_size);
            }
        }
    }

    #[test]
    fn weighted_pick_respects_degenerate_table() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(weighted_pick(&[(9u32, 1.0)], &mut rng), 9);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_pick_rejects_empty_table() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: Vec<(u32, f64)> = Vec::new();
        let _ = weighted_pick(&empty, &mut rng);
    }
}
