//! The Google-trace constraint model (Table II and Fig. 6 of the paper) and
//! the synthesizer used to embed representative constraints into workloads.
//!
//! The Google trace hashes constraint attributes and values; the paper
//! reconstructs their semantics by correlating with the constraint frequency
//! vectors of Sharma et al. ("Modeling and synthesizing task placement
//! constraints in Google compute clusters", SoCC'11) and then reuses the
//! same benchmarking model to *synthesize* constraints into the Yahoo and
//! Cloudera traces. [`ConstraintModel`] plays that role here: it samples
//! per-job [`ConstraintSet`]s whose kind mix matches Table II and whose
//! per-job constraint counts match the demand curve of Fig. 6.

use rand::Rng;

use crate::attr::Isa;
use crate::constraint::{
    Constraint, ConstraintKind, ConstraintOp, ConstraintSet, PlacementConstraint,
};
use crate::expr::{ConstraintExpr, VectorDemand};
use crate::matching::feasible_fraction;
use crate::supply::{weighted_pick, MachinePopulation};

/// One row of Table II: a constraint kind with its observed relative
/// slowdown, share of constrained tasks, and absolute occurrence count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindProfile {
    /// Constraint kind.
    pub kind: ConstraintKind,
    /// Slowdown of a constrained job w.r.t. an equivalent unconstrained job.
    pub relative_slowdown: f64,
    /// Percentage share among constrained tasks (sums to ~100 plus the
    /// memory kind we add with share 0 for fidelity to the table).
    pub share_percent: f64,
    /// Occurrences in the month-long Google trace.
    pub occurrences: u64,
}

/// Table II of the paper, verbatim.
pub const TABLE_II: [KindProfile; 9] = [
    KindProfile {
        kind: ConstraintKind::Architecture,
        relative_slowdown: 2.03,
        share_percent: 80.64,
        occurrences: 20_412_140,
    },
    KindProfile {
        kind: ConstraintKind::NumNodes,
        relative_slowdown: 1.96,
        share_percent: 0.28,
        occurrences: 71_103,
    },
    KindProfile {
        kind: ConstraintKind::EthernetSpeed,
        relative_slowdown: 1.91,
        share_percent: 0.18,
        occurrences: 30_128,
    },
    KindProfile {
        kind: ConstraintKind::NumCores,
        relative_slowdown: 1.90,
        share_percent: 18.28,
        occurrences: 2_856_749,
    },
    KindProfile {
        kind: ConstraintKind::MaxDisks,
        relative_slowdown: 1.90,
        share_percent: 8.57,
        occurrences: 1_665_117,
    },
    KindProfile {
        kind: ConstraintKind::KernelVersion,
        relative_slowdown: 1.77,
        share_percent: 0.21,
        occurrences: 52_722,
    },
    KindProfile {
        kind: ConstraintKind::PlatformFamily,
        relative_slowdown: 1.77,
        share_percent: 0.05,
        occurrences: 14_473,
    },
    KindProfile {
        kind: ConstraintKind::CpuClockSpeed,
        relative_slowdown: 1.76,
        share_percent: 0.16,
        occurrences: 42_688,
    },
    KindProfile {
        kind: ConstraintKind::MinDisks,
        relative_slowdown: 0.91,
        share_percent: 0.66,
        occurrences: 168_656,
    },
];

/// Looks up the Table II row for a kind, if present.
pub fn table_ii_row(kind: ConstraintKind) -> Option<&'static KindProfile> {
    TABLE_II.iter().find(|p| p.kind == kind)
}

/// Per-job constraint-count distribution (the demand curve of Fig. 6):
/// probability that a constrained job asks for `k` constraints,
/// `k = 1..=6`.
///
/// The paper reports ~33 % of jobs asking two constraints, ~20 % asking
/// four or more, and ~80 % asking three or fewer.
pub const CONSTRAINT_COUNT_DISTRIBUTION: [f64; 6] = [0.27, 0.33, 0.20, 0.11, 0.06, 0.03];

/// Samples per-job constraint sets matching the paper's distributions.
#[derive(Debug, Clone)]
pub struct ConstraintModel {
    /// Probability that a job is constrained at all (Table III: ~50 %).
    pub constrained_fraction: f64,
    /// Probability that a constrained job additionally carries a placement
    /// (affinity) constraint.
    pub placement_fraction: f64,
    /// Per-count probabilities for `k = 1..=6`.
    pub count_distribution: [f64; 6],
    /// Per-kind weights (Table II shares by default).
    pub kind_weights: Vec<(ConstraintKind, f64)>,
    /// Probability that a constrained job carries a *compositional*
    /// expression (affinity `Any`, anti-affinity `Not`, vector packing)
    /// instead of a flat set. 0.0 in every paper-faithful profile — the
    /// Google trace model is flat — and, critically for digest stability,
    /// the gating RNG draw only happens when this is positive, so flat
    /// profiles consume the exact historical draw sequence.
    pub expression_fraction: f64,
    /// Target tree depth for synthesized expressions (clamped to `1..=3`):
    /// 1 = vector packing leaves, 2 = affinity/anti-affinity combinators,
    /// 3 = combined trees (`All` over `Any`/`Not` branches).
    pub expression_depth: usize,
}

impl ConstraintModel {
    /// The Google-trace model: Table II kind mix, Fig. 6 count curve,
    /// ~50 % constrained tasks.
    pub fn google() -> Self {
        ConstraintModel {
            constrained_fraction: 0.513,
            placement_fraction: 0.05,
            count_distribution: CONSTRAINT_COUNT_DISTRIBUTION,
            kind_weights: TABLE_II.iter().map(|p| (p.kind, p.share_percent)).collect(),
            expression_fraction: 0.0,
            expression_depth: 2,
        }
    }

    /// Model used to embed constraints into the Yahoo trace
    /// (Table III: 251,404 of 514,644 tasks constrained → 48.8 %).
    pub fn yahoo() -> Self {
        ConstraintModel {
            constrained_fraction: 0.488,
            ..Self::google()
        }
    }

    /// Model used to embed constraints into the Cloudera trace
    /// (Table III: 1,972,428 of 3,897,480 tasks constrained → 50.6 %).
    pub fn cloudera() -> Self {
        ConstraintModel {
            constrained_fraction: 0.506,
            ..Self::google()
        }
    }

    /// A model that never emits constraints (the unconstrained baseline of
    /// Fig. 2).
    pub fn unconstrained() -> Self {
        ConstraintModel {
            constrained_fraction: 0.0,
            placement_fraction: 0.0,
            count_distribution: CONSTRAINT_COUNT_DISTRIBUTION,
            kind_weights: TABLE_II.iter().map(|p| (p.kind, p.share_percent)).collect(),
            expression_fraction: 0.0,
            expression_depth: 2,
        }
    }

    /// Returns the model with compositional expressions enabled: a
    /// `fraction` of constrained jobs draw an expression tree of the given
    /// target `depth` instead of a flat set.
    pub fn with_expressions(mut self, fraction: f64, depth: usize) -> Self {
        self.expression_fraction = fraction;
        self.expression_depth = depth.clamp(1, 3);
        self
    }

    /// Value choices for a kind: `(op, value, weight)` rows.
    ///
    /// The values are calibrated against
    /// [`crate::supply::PopulationProfile::google_like`] so that the average
    /// fraction of nodes satisfying a k-constraint job reproduces the supply
    /// curve of Fig. 6 (~12 % at k = 2, dropping to ~5 % at k = 6).
    /// Jobs deliberately over-ask for scarce configurations — that is what
    /// produces the 1.8–2× constrained-job slowdowns of Table II.
    pub fn value_choices(kind: ConstraintKind) -> &'static [(ConstraintOp, u64, f64)] {
        match kind {
            // Jobs request minority ISAs somewhat more often than their
            // supply share (x86 86 % / arm 9 % / power 5 %), making ISA the
            // dominant source of contention without *sustainably*
            // oversubscribing any ISA class — the paper observes ~2×
            // slowdowns for constrained jobs, not divergence.
            ConstraintKind::Architecture => &[
                (ConstraintOp::Eq, Isa::X86 as u64, 0.80),
                (ConstraintOp::Eq, Isa::Arm as u64, 0.14),
                (ConstraintOp::Eq, Isa::Power as u64, 0.06),
            ],
            ConstraintKind::NumNodes => {
                &[(ConstraintOp::Gt, 19, 0.40), (ConstraintOp::Gt, 39, 0.60)]
            }
            ConstraintKind::EthernetSpeed => &[
                (ConstraintOp::Gt, 1_000, 0.50),
                (ConstraintOp::Gt, 10_000, 0.50),
            ],
            ConstraintKind::NumCores => &[
                (ConstraintOp::Gt, 4, 0.30),
                (ConstraintOp::Gt, 8, 0.30),
                (ConstraintOp::Gt, 16, 0.30),
                (ConstraintOp::Gt, 32, 0.10),
            ],
            ConstraintKind::MaxDisks => &[
                (ConstraintOp::Lt, 2, 0.30),
                (ConstraintOp::Lt, 3, 0.40),
                (ConstraintOp::Lt, 5, 0.30),
            ],
            ConstraintKind::KernelVersion => &[
                (ConstraintOp::Gt, 315, 0.40),
                (ConstraintOp::Eq, 318, 0.30),
                (ConstraintOp::Eq, 410, 0.30),
            ],
            ConstraintKind::PlatformFamily => &[
                (ConstraintOp::Eq, 1, 0.40),
                (ConstraintOp::Eq, 2, 0.35),
                (ConstraintOp::Eq, 3, 0.25),
            ],
            ConstraintKind::CpuClockSpeed => &[
                (ConstraintOp::Gt, 2_100, 0.20),
                (ConstraintOp::Gt, 2_500, 0.40),
                (ConstraintOp::Gt, 2_900, 0.40),
            ],
            ConstraintKind::MinDisks => &[
                (ConstraintOp::Gt, 1, 0.20),
                (ConstraintOp::Gt, 3, 0.30),
                (ConstraintOp::Gt, 7, 0.50),
            ],
            ConstraintKind::Memory => &[
                (ConstraintOp::Gt, 16, 0.40),
                (ConstraintOp::Gt, 32, 0.40),
                (ConstraintOp::Gt, 64, 0.20),
            ],
        }
    }

    /// A representative (median-weight) constraint for a kind, used by
    /// monitors to estimate per-kind supply.
    pub fn representative_constraint(kind: ConstraintKind) -> Constraint {
        let choices = Self::value_choices(kind);
        let (op, value, _) = choices
            .iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).expect("weights are finite"))
            .expect("choice tables are non-empty");
        Constraint::with_default_class(kind, *op, *value)
    }

    /// The Table II relative slowdown for a kind (1.0 when absent).
    pub fn relative_slowdown(kind: ConstraintKind) -> f64 {
        table_ii_row(kind).map_or(1.0, |p| p.relative_slowdown)
    }

    /// Samples the number of constraints for a constrained job.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let table: Vec<(usize, f64)> = self
            .count_distribution
            .iter()
            .enumerate()
            .map(|(i, w)| (i + 1, *w))
            .collect();
        weighted_pick(&table, rng)
    }

    /// Samples `count` *distinct* constraint kinds, weighted by the model's
    /// kind mix.
    pub fn sample_kinds<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<ConstraintKind> {
        let mut remaining: Vec<(ConstraintKind, f64)> = self.kind_weights.clone();
        let mut kinds = Vec::with_capacity(count);
        while kinds.len() < count && !remaining.is_empty() {
            let kind = weighted_pick(&remaining, rng);
            kinds.push(kind);
            remaining.retain(|(k, _)| *k != kind);
        }
        kinds
    }

    /// Synthesizes a constraint set for one constrained job.
    pub fn synthesize_set<R: Rng + ?Sized>(&self, rng: &mut R) -> ConstraintSet {
        self.synthesize_set_capped(rng, usize::MAX)
    }

    /// Synthesizes a constraint set with at most `max_count` constraints.
    ///
    /// Long batch jobs in production traces carry fewer, simpler placement
    /// constraints than latency-critical services (machine-type pinning
    /// rather than rich multi-attribute combinations); the generator uses
    /// this cap for long jobs.
    pub fn synthesize_set_capped<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        max_count: usize,
    ) -> ConstraintSet {
        // The expression gate only consumes a draw when enabled, keeping
        // flat profiles' RNG streams byte-identical to the historical path.
        if self.expression_fraction > 0.0 && rng.random::<f64>() < self.expression_fraction {
            return self.synthesize_expression(rng);
        }
        let count = self.sample_count(rng).min(max_count.max(1));
        let kinds = self.sample_kinds(count, rng);
        let constraints = kinds
            .into_iter()
            .map(|kind| Self::sample_constraint(kind, rng))
            .collect();
        let set = ConstraintSet::from_constraints(constraints);
        self.maybe_with_placement(set, rng)
    }

    /// Samples one `(op, value)` choice for a kind, with the kind's default
    /// class.
    fn sample_constraint<R: Rng + ?Sized>(kind: ConstraintKind, rng: &mut R) -> Constraint {
        let table: Vec<((ConstraintOp, u64), f64)> = Self::value_choices(kind)
            .iter()
            .map(|(op, v, w)| ((*op, *v), *w))
            .collect();
        let (op, value) = weighted_pick(&table, rng);
        Constraint::with_default_class(kind, op, value)
    }

    /// Draws the placement-constraint attachment for a freshly synthesized
    /// set (same draw sequence as the historical inline code).
    fn maybe_with_placement<R: Rng + ?Sized>(
        &self,
        set: ConstraintSet,
        rng: &mut R,
    ) -> ConstraintSet {
        if rng.random::<f64>() < self.placement_fraction {
            let placement = if rng.random::<bool>() {
                PlacementConstraint::Spread
            } else {
                PlacementConstraint::Colocate
            };
            return set.with_placement(placement);
        }
        set
    }

    /// Samples a platform-affinity leaf: `platform = v` with Table II's
    /// value mix.
    fn sample_platform_leaf<R: Rng + ?Sized>(rng: &mut R) -> ConstraintExpr {
        ConstraintExpr::leaf(Self::sample_constraint(ConstraintKind::PlatformFamily, rng))
    }

    /// Samples a vector packing demand. Dimensions can be zero
    /// (unconstrained); the value pools are calibrated against
    /// [`crate::supply::PopulationProfile::google_like`] so that demands
    /// stay satisfiable by a healthy machine-class share.
    fn sample_vector_demand<R: Rng + ?Sized>(rng: &mut R) -> VectorDemand {
        VectorDemand {
            cores: weighted_pick(&[(4u64, 0.4), (8, 0.4), (16, 0.2)], rng),
            memory_gb: weighted_pick(&[(0u64, 0.3), (16, 0.4), (32, 0.3)], rng),
            disks: weighted_pick(&[(0u64, 0.6), (2, 0.25), (4, 0.15)], rng),
            clock_mhz: weighted_pick(&[(0u64, 0.7), (2_100, 0.2), (2_500, 0.1)], rng),
            ethernet_mbps: weighted_pick(&[(0u64, 0.7), (1_000, 0.2), (10_000, 0.1)], rng),
        }
    }

    /// Synthesizes a compositional constraint expression of the model's
    /// target depth. Families:
    ///
    /// * depth 1 — **packing**: a bare [`VectorDemand`] (lowered to a flat
    ///   conjunction by [`ConstraintSet::from_expr`]),
    /// * depth 2 — **affinity** (`Any` over platform families),
    ///   **anti-affinity** (`Not` of a platform), or a packing
    ///   disjunction (`Any` over two demand shapes),
    /// * depth 3 — combined trees: `All` over an affinity `Any` plus a
    ///   scalar leaf (hard or soft, so OR-branch negotiation is exercised)
    ///   or an anti-affinity `Not`.
    pub fn synthesize_expression<R: Rng + ?Sized>(&self, rng: &mut R) -> ConstraintSet {
        let depth = self.expression_depth.clamp(1, 3);
        let expr = match depth {
            1 => ConstraintExpr::vector(Self::sample_vector_demand(rng)),
            2 => match weighted_pick(&[(0u8, 0.4), (1, 0.3), (2, 0.3)], rng) {
                0 => ConstraintExpr::any_of(vec![
                    Self::sample_platform_leaf(rng),
                    Self::sample_platform_leaf(rng),
                ]),
                1 => ConstraintExpr::not(Self::sample_platform_leaf(rng)),
                _ => ConstraintExpr::any_of(vec![
                    ConstraintExpr::vector(Self::sample_vector_demand(rng)),
                    ConstraintExpr::vector(Self::sample_vector_demand(rng)),
                ]),
            },
            _ => {
                let affinity = ConstraintExpr::any_of(vec![
                    Self::sample_platform_leaf(rng),
                    Self::sample_platform_leaf(rng),
                ]);
                let partner = if rng.random::<bool>() {
                    let kind = self.sample_kinds(1, rng)[0];
                    ConstraintExpr::leaf(Self::sample_constraint(kind, rng))
                } else {
                    ConstraintExpr::not(ConstraintExpr::leaf(Self::sample_constraint(
                        ConstraintKind::Architecture,
                        rng,
                    )))
                };
                ConstraintExpr::all_of(vec![affinity, partner])
            }
        };
        let set = ConstraintSet::from_expr(expr);
        self.maybe_with_placement(set, rng)
    }

    /// Synthesizes a set for an arbitrary job: unconstrained with
    /// probability `1 - constrained_fraction`, otherwise a sampled set.
    pub fn maybe_synthesize<R: Rng + ?Sized>(&self, rng: &mut R) -> ConstraintSet {
        if rng.random::<f64>() < self.constrained_fraction {
            self.synthesize_set(rng)
        } else {
            ConstraintSet::unconstrained()
        }
    }
}

impl Default for ConstraintModel {
    fn default() -> Self {
        Self::google()
    }
}

/// Empirical statistics over a collection of constraint sets, used to
/// validate the synthesizer against Table II and Fig. 6 and to print the
/// corresponding experiment tables.
#[derive(Debug, Clone, Default)]
pub struct ConstraintStats {
    /// Number of sets observed (constrained + unconstrained).
    pub total_sets: usize,
    /// Number of constrained sets.
    pub constrained_sets: usize,
    /// Histogram of constraint counts `k = 1..=6` among constrained sets.
    pub count_histogram: [usize; 6],
    /// Occurrences per kind.
    pub kind_occurrences: [usize; ConstraintKind::COUNT],
}

impl ConstraintStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one constraint set.
    pub fn record(&mut self, set: &ConstraintSet) {
        self.total_sets += 1;
        if set.is_unconstrained() {
            return;
        }
        self.constrained_sets += 1;
        let k = set.len().min(6);
        if k >= 1 {
            self.count_histogram[k - 1] += 1;
        }
        for c in set.iter() {
            self.kind_occurrences[c.kind.index()] += 1;
        }
    }

    /// Fraction of sets that are constrained.
    pub fn constrained_fraction(&self) -> f64 {
        if self.total_sets == 0 {
            return 0.0;
        }
        self.constrained_sets as f64 / self.total_sets as f64
    }

    /// Share (%) of each kind among all recorded constraints.
    pub fn kind_shares(&self) -> Vec<(ConstraintKind, f64)> {
        let total: usize = self.kind_occurrences.iter().sum();
        ConstraintKind::ALL
            .iter()
            .map(|&k| {
                let share = if total == 0 {
                    0.0
                } else {
                    100.0 * self.kind_occurrences[k.index()] as f64 / total as f64
                };
                (k, share)
            })
            .collect()
    }

    /// Demand curve of Fig. 6: percentage of constrained sets asking for
    /// `k = 1..=6` constraints.
    pub fn demand_curve(&self) -> [f64; 6] {
        let mut curve = [0.0; 6];
        if self.constrained_sets == 0 {
            return curve;
        }
        for (i, &n) in self.count_histogram.iter().enumerate() {
            curve[i] = 100.0 * n as f64 / self.constrained_sets as f64;
        }
        curve
    }
}

/// Supply curve of Fig. 6: for each `k = 1..=6`, the average percentage of
/// nodes able to satisfy a k-constraint job, estimated from `samples`
/// synthesized sets against `population`.
pub fn supply_curve<R: Rng + ?Sized>(
    model: &ConstraintModel,
    population: &MachinePopulation,
    samples: usize,
    rng: &mut R,
) -> [f64; 6] {
    let mut sums = [0.0f64; 6];
    let mut counts = [0usize; 6];
    let mut drawn = 0usize;
    // Draw until each k-bucket has data or the sample budget is exhausted.
    while drawn < samples {
        let set = model.synthesize_set(rng);
        drawn += 1;
        let k = set.len().clamp(1, 6);
        sums[k - 1] += feasible_fraction(population.machines(), &set);
        counts[k - 1] += 1;
    }
    let mut curve = [0.0f64; 6];
    for i in 0..6 {
        if counts[i] > 0 {
            curve[i] = 100.0 * sums[i] / counts[i] as f64;
        }
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supply::PopulationProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_ii_shares_match_published_sum() {
        // The paper's share column sums to 109.03 % — kinds co-occur within
        // multi-constraint jobs, so shares legitimately exceed 100 %.
        let total: f64 = TABLE_II.iter().map(|p| p.share_percent).sum();
        assert!((total - 109.03).abs() < 1e-6, "total share {total}");
    }

    #[test]
    fn table_ii_lookup() {
        let row = table_ii_row(ConstraintKind::Architecture).unwrap();
        assert_eq!(row.occurrences, 20_412_140);
        assert!(table_ii_row(ConstraintKind::Memory).is_none());
    }

    #[test]
    fn count_distribution_is_a_probability_vector() {
        let total: f64 = CONSTRAINT_COUNT_DISTRIBUTION.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(CONSTRAINT_COUNT_DISTRIBUTION.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn synthesized_constrained_fraction_matches_model() {
        let model = ConstraintModel::google();
        let mut rng = StdRng::seed_from_u64(11);
        let mut stats = ConstraintStats::new();
        for _ in 0..20_000 {
            stats.record(&model.maybe_synthesize(&mut rng));
        }
        let f = stats.constrained_fraction();
        assert!(
            (f - model.constrained_fraction).abs() < 0.02,
            "constrained fraction {f}"
        );
    }

    #[test]
    fn synthesized_kind_mix_tracks_table_ii() {
        let model = ConstraintModel::google();
        let mut rng = StdRng::seed_from_u64(13);
        let mut stats = ConstraintStats::new();
        for _ in 0..30_000 {
            stats.record(&model.synthesize_set(&mut rng));
        }
        let shares = stats.kind_shares();
        let arch = shares
            .iter()
            .find(|(k, _)| *k == ConstraintKind::Architecture)
            .unwrap()
            .1;
        // Multi-constraint jobs draw kinds without replacement, which
        // necessarily flattens the marginal mix relative to Table II's
        // per-constraint share; the dominant kind must still dominate.
        assert!(arch > 35.0, "architecture share {arch}%");
        let cores = shares
            .iter()
            .find(|(k, _)| *k == ConstraintKind::NumCores)
            .unwrap()
            .1;
        assert!(cores > 10.0, "num-cores share {cores}%");
    }

    #[test]
    fn synthesized_count_histogram_tracks_fig6_demand() {
        let model = ConstraintModel::google();
        let mut rng = StdRng::seed_from_u64(17);
        let mut stats = ConstraintStats::new();
        for _ in 0..30_000 {
            stats.record(&model.synthesize_set(&mut rng));
        }
        let demand = stats.demand_curve();
        assert!((demand[1] - 33.0).abs() < 3.0, "k=2 demand {}%", demand[1]);
        let four_plus: f64 = demand[3..].iter().sum();
        assert!(
            (four_plus - 20.0).abs() < 4.0,
            "k>=4 cumulative demand {four_plus}%"
        );
    }

    #[test]
    fn supply_curve_is_decreasing_and_matches_fig6_anchors() {
        let model = ConstraintModel::google();
        let mut rng = StdRng::seed_from_u64(19);
        let population =
            MachinePopulation::generate(PopulationProfile::google_like(), 4_000, &mut rng);
        let curve = supply_curve(&model, &population, 8_000, &mut rng);
        // Fig. 6 anchors: ~12 % of nodes satisfy a 2-constraint job; ~5 %
        // satisfy a 6-constraint job; the curve decreases with k. Our
        // calibration lands slightly above the paper's k=2 anchor: pushing
        // it to 12 % requires over-demanding scarce machine classes beyond
        // their sustainable capacity (see DESIGN.md §3).
        assert!(
            curve[1] > 5.0 && curve[1] < 35.0,
            "k=2 supply {}%",
            curve[1]
        );
        assert!(curve[5] < 12.0, "k=6 supply {}%", curve[5]);
        assert!(
            curve[0] > curve[2] && curve[2] > curve[5],
            "supply must decrease with k: {curve:?}"
        );
    }

    #[test]
    fn sample_kinds_are_distinct() {
        let model = ConstraintModel::google();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..200 {
            let kinds = model.sample_kinds(6, &mut rng);
            let mut dedup = kinds.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), kinds.len());
        }
    }

    #[test]
    fn unconstrained_model_never_constrains() {
        let model = ConstraintModel::unconstrained();
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..500 {
            assert!(model.maybe_synthesize(&mut rng).is_unconstrained());
        }
    }

    #[test]
    fn representative_constraint_exists_for_every_kind() {
        for kind in ConstraintKind::ALL {
            let c = ConstraintModel::representative_constraint(kind);
            assert_eq!(c.kind, kind);
        }
    }

    #[test]
    fn relative_slowdown_defaults_to_one() {
        assert_eq!(
            ConstraintModel::relative_slowdown(ConstraintKind::Memory),
            1.0
        );
        assert!(ConstraintModel::relative_slowdown(ConstraintKind::Architecture) > 2.0 - 1e-9);
    }

    #[test]
    fn placement_fraction_controls_affinity_sets() {
        let mut model = ConstraintModel::google();
        model.placement_fraction = 1.0;
        let mut rng = StdRng::seed_from_u64(31);
        let set = model.synthesize_set(&mut rng);
        assert_ne!(set.placement(), PlacementConstraint::None);
    }

    #[test]
    fn stats_ignore_unconstrained_sets_in_histograms() {
        let mut stats = ConstraintStats::new();
        stats.record(&ConstraintSet::unconstrained());
        assert_eq!(stats.total_sets, 1);
        assert_eq!(stats.constrained_sets, 0);
        assert_eq!(stats.demand_curve(), [0.0; 6]);
    }
}
