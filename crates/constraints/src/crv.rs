//! The Constraint Resource Vector (CRV).
//!
//! The paper defines the CRV of a node as a vector over the resource
//! dimensions `<cpu, mem, disk, os, clock, net_bandwidth>` and drives
//! Phoenix's queue reordering from the *demand/supply ratio* of each
//! dimension: demand is the number of queued tasks asking for a constrained
//! resource, supply is the amount of that resource currently available.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::constraint::{ConstraintKind, ConstraintSet};

/// One of the six CRV dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrvDimension {
    /// CPU-side constraints: ISA, core count, gang size.
    Cpu,
    /// Memory constraints.
    Mem,
    /// Disk-count constraints.
    Disk,
    /// OS constraints: kernel version, platform family.
    Os,
    /// CPU clock-speed constraints.
    Clock,
    /// Network-bandwidth constraints.
    Net,
}

impl CrvDimension {
    /// All dimensions in paper order.
    pub const ALL: [CrvDimension; 6] = [
        CrvDimension::Cpu,
        CrvDimension::Mem,
        CrvDimension::Disk,
        CrvDimension::Os,
        CrvDimension::Clock,
        CrvDimension::Net,
    ];

    /// Number of dimensions.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index in [`Self::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            CrvDimension::Cpu => 0,
            CrvDimension::Mem => 1,
            CrvDimension::Disk => 2,
            CrvDimension::Os => 3,
            CrvDimension::Clock => 4,
            CrvDimension::Net => 5,
        }
    }
}

impl fmt::Display for CrvDimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CrvDimension::Cpu => "cpu",
            CrvDimension::Mem => "mem",
            CrvDimension::Disk => "disk",
            CrvDimension::Os => "os",
            CrvDimension::Clock => "clock",
            CrvDimension::Net => "net",
        })
    }
}

/// A vector of per-dimension values: `<cpu, mem, disk, os, clock, net>`.
///
/// Used both for demand/supply ratios (the "CRV ratio" of the paper) and for
/// per-task demand indicators.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Crv {
    values: [f64; CrvDimension::COUNT],
}

impl Crv {
    /// The all-zero vector.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Builds a CRV from raw values in [`CrvDimension::ALL`] order.
    pub fn from_values(values: [f64; CrvDimension::COUNT]) -> Self {
        Crv { values }
    }

    /// The per-dimension demand indicator of a constraint set: 1.0 in every
    /// dimension the set constrains, 0.0 elsewhere.
    pub fn demand_of(set: &ConstraintSet) -> Self {
        let mut crv = Crv::zero();
        for c in set.iter() {
            crv[c.kind.crv_dimension()] = 1.0;
        }
        crv
    }

    /// The raw values in dimension order.
    pub fn values(&self) -> [f64; CrvDimension::COUNT] {
        self.values
    }

    /// The maximum entry and its dimension; ties break toward the earlier
    /// dimension. Returns `(Cpu, 0.0)` for the zero vector.
    pub fn max_dimension(&self) -> (CrvDimension, f64) {
        let mut best = (CrvDimension::Cpu, self.values[0]);
        for dim in CrvDimension::ALL {
            let v = self[dim];
            if v > best.1 {
                best = (dim, v);
            }
        }
        best
    }

    /// The maximum entry restricted to the dimensions a constraint set
    /// demands; `None` for unconstrained sets.
    pub fn max_over_demand(&self, set: &ConstraintSet) -> Option<(CrvDimension, f64)> {
        let mut best: Option<(CrvDimension, f64)> = None;
        for c in set.iter() {
            let dim = c.kind.crv_dimension();
            let v = self[dim];
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((dim, v)),
            }
        }
        best
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Crv) -> Crv {
        let mut out = *self;
        for dim in CrvDimension::ALL {
            out[dim] += other[dim];
        }
        out
    }

    /// Scales every entry by `factor`.
    pub fn scale(&self, factor: f64) -> Crv {
        let mut out = *self;
        for v in out.values.iter_mut() {
            *v *= factor;
        }
        out
    }
}

impl Index<CrvDimension> for Crv {
    type Output = f64;

    fn index(&self, dim: CrvDimension) -> &f64 {
        &self.values[dim.index()]
    }
}

impl IndexMut<CrvDimension> for Crv {
    fn index_mut(&mut self, dim: CrvDimension) -> &mut f64 {
        &mut self.values[dim.index()]
    }
}

impl fmt::Display for Crv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<")?;
        for (i, dim) in CrvDimension::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}={:.3}", dim, self[*dim])?;
        }
        f.write_str(">")
    }
}

/// The `CRV_Lookup_Table` of the paper: per-constraint-kind demand and
/// supply counters from which per-dimension ratios are derived.
///
/// Demand is accumulated per heartbeat from the constrained tasks that
/// arrived (or are queued); supply is the number of workers able to satisfy
/// constraints of that kind (or free slots on them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrvTable {
    demand: [f64; ConstraintKind::COUNT],
    supply: [f64; ConstraintKind::COUNT],
}

impl CrvTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the demand side (typically at each heartbeat).
    pub fn reset_demand(&mut self) {
        self.demand = [0.0; ConstraintKind::COUNT];
    }

    /// Records `count` units of demand for a kind.
    pub fn add_demand(&mut self, kind: ConstraintKind, count: f64) {
        self.demand[kind.index()] += count;
    }

    /// Records the demand of every constraint in a set.
    pub fn add_demand_set(&mut self, set: &ConstraintSet) {
        for c in set.iter() {
            self.add_demand(c.kind, 1.0);
        }
    }

    /// Overwrites the supply for a kind.
    pub fn set_supply(&mut self, kind: ConstraintKind, supply: f64) {
        self.supply[kind.index()] = supply;
    }

    /// Demand recorded for a kind.
    pub fn demand(&self, kind: ConstraintKind) -> f64 {
        self.demand[kind.index()]
    }

    /// Supply recorded for a kind.
    pub fn supply(&self, kind: ConstraintKind) -> f64 {
        self.supply[kind.index()]
    }

    /// Demand/supply ratio for a kind. A kind with zero supply but positive
    /// demand is infinitely contended; we saturate to `f64::INFINITY`.
    /// Zero demand yields 0.0 regardless of supply.
    pub fn ratio(&self, kind: ConstraintKind) -> f64 {
        let d = self.demand(kind);
        if d == 0.0 {
            0.0
        } else if self.supply(kind) <= 0.0 {
            f64::INFINITY
        } else {
            d / self.supply(kind)
        }
    }

    /// Aggregates per-kind ratios into the six-dimensional CRV, taking the
    /// maximum ratio of the kinds mapped to each dimension.
    pub fn to_crv(&self) -> Crv {
        let mut crv = Crv::zero();
        for kind in ConstraintKind::ALL {
            let dim = kind.crv_dimension();
            let r = self.ratio(kind);
            if r > crv[dim] {
                crv[dim] = r;
            }
        }
        crv
    }

    /// The most contended kind and its ratio (`Max_CRV` in Algorithm 1).
    pub fn max_ratio(&self) -> (ConstraintKind, f64) {
        let mut best = (ConstraintKind::ALL[0], self.ratio(ConstraintKind::ALL[0]));
        for kind in ConstraintKind::ALL {
            let r = self.ratio(kind);
            if r > best.1 {
                best = (kind, r);
            }
        }
        best
    }
}

impl fmt::Display for CrvTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>12} {:>12} {:>10}",
            "kind", "demand", "supply", "ratio"
        )?;
        for kind in ConstraintKind::ALL {
            writeln!(
                f,
                "{:<12} {:>12.1} {:>12.1} {:>10.4}",
                kind.to_string(),
                self.demand(kind),
                self.supply(kind),
                self.ratio(kind)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Constraint, ConstraintOp};

    #[test]
    fn dimension_index_is_dense() {
        for (i, dim) in CrvDimension::ALL.iter().enumerate() {
            assert_eq!(dim.index(), i);
        }
    }

    #[test]
    fn demand_of_marks_constrained_dimensions() {
        let set = ConstraintSet::from_constraints(vec![
            Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 8),
            Constraint::soft(ConstraintKind::EthernetSpeed, ConstraintOp::Gt, 900),
        ]);
        let crv = Crv::demand_of(&set);
        assert_eq!(crv[CrvDimension::Cpu], 1.0);
        assert_eq!(crv[CrvDimension::Net], 1.0);
        assert_eq!(crv[CrvDimension::Disk], 0.0);
    }

    #[test]
    fn max_dimension_prefers_largest_value() {
        let mut crv = Crv::zero();
        crv[CrvDimension::Disk] = 0.7;
        crv[CrvDimension::Net] = 0.9;
        assert_eq!(crv.max_dimension(), (CrvDimension::Net, 0.9));
    }

    #[test]
    fn max_dimension_of_zero_vector_is_cpu_zero() {
        assert_eq!(Crv::zero().max_dimension(), (CrvDimension::Cpu, 0.0));
    }

    #[test]
    fn max_over_demand_ignores_undemanded_dimensions() {
        let set = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::KernelVersion,
            ConstraintOp::Gt,
            300,
        )]);
        let mut crv = Crv::zero();
        crv[CrvDimension::Cpu] = 5.0; // not demanded by the set
        crv[CrvDimension::Os] = 1.5;
        assert_eq!(crv.max_over_demand(&set), Some((CrvDimension::Os, 1.5)));
        assert_eq!(crv.max_over_demand(&ConstraintSet::unconstrained()), None);
    }

    #[test]
    fn table_ratio_handles_zero_supply_and_zero_demand() {
        let mut t = CrvTable::new();
        assert_eq!(t.ratio(ConstraintKind::NumCores), 0.0);
        t.add_demand(ConstraintKind::NumCores, 10.0);
        assert!(t.ratio(ConstraintKind::NumCores).is_infinite());
        t.set_supply(ConstraintKind::NumCores, 20.0);
        assert!((t.ratio(ConstraintKind::NumCores) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn table_to_crv_takes_max_kind_per_dimension() {
        let mut t = CrvTable::new();
        // Architecture and NumCores both map to Cpu.
        t.add_demand(ConstraintKind::Architecture, 10.0);
        t.set_supply(ConstraintKind::Architecture, 100.0);
        t.add_demand(ConstraintKind::NumCores, 50.0);
        t.set_supply(ConstraintKind::NumCores, 100.0);
        let crv = t.to_crv();
        assert!((crv[CrvDimension::Cpu] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn table_max_ratio_finds_hottest_kind() {
        let mut t = CrvTable::new();
        t.add_demand(ConstraintKind::EthernetSpeed, 30.0);
        t.set_supply(ConstraintKind::EthernetSpeed, 10.0);
        t.add_demand(ConstraintKind::NumCores, 5.0);
        t.set_supply(ConstraintKind::NumCores, 10.0);
        let (kind, ratio) = t.max_ratio();
        assert_eq!(kind, ConstraintKind::EthernetSpeed);
        assert!((ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_demand_keeps_supply() {
        let mut t = CrvTable::new();
        t.add_demand(ConstraintKind::Memory, 4.0);
        t.set_supply(ConstraintKind::Memory, 8.0);
        t.reset_demand();
        assert_eq!(t.demand(ConstraintKind::Memory), 0.0);
        assert_eq!(t.supply(ConstraintKind::Memory), 8.0);
    }

    #[test]
    fn crv_arithmetic() {
        let mut a = Crv::zero();
        a[CrvDimension::Cpu] = 1.0;
        let mut b = Crv::zero();
        b[CrvDimension::Cpu] = 2.0;
        b[CrvDimension::Net] = 4.0;
        let sum = a.add(&b);
        assert_eq!(sum[CrvDimension::Cpu], 3.0);
        assert_eq!(sum[CrvDimension::Net], 4.0);
        let scaled = sum.scale(0.5);
        assert_eq!(scaled[CrvDimension::Cpu], 1.5);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!Crv::zero().to_string().is_empty());
        assert!(!CrvTable::new().to_string().is_empty());
        assert_eq!(CrvDimension::Net.to_string(), "net");
    }
}

#[cfg(test)]
mod crv_property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Table ratios equal demand/supply (with the documented edge
        /// cases), and `to_crv` never exceeds the hottest kind ratio.
        #[test]
        fn ratios_and_aggregation_are_consistent(
            demands in prop::collection::vec(0.0f64..1_000.0, ConstraintKind::COUNT),
            supplies in prop::collection::vec(0.0f64..1_000.0, ConstraintKind::COUNT),
        ) {
            let mut table = CrvTable::new();
            for (i, kind) in ConstraintKind::ALL.iter().enumerate() {
                table.add_demand(*kind, demands[i]);
                table.set_supply(*kind, supplies[i]);
            }
            let (_, max_ratio) = table.max_ratio();
            for (i, kind) in ConstraintKind::ALL.iter().enumerate() {
                let r = table.ratio(*kind);
                if demands[i] == 0.0 {
                    prop_assert_eq!(r, 0.0);
                } else if supplies[i] <= 0.0 {
                    prop_assert!(r.is_infinite());
                } else {
                    prop_assert!((r - demands[i] / supplies[i]).abs() < 1e-9);
                }
                prop_assert!(r <= max_ratio || max_ratio.is_infinite());
            }
            let crv = table.to_crv();
            let (_, crv_max) = crv.max_dimension();
            // The aggregated vector's max equals the hottest kind's ratio.
            if max_ratio.is_finite() {
                prop_assert!((crv_max - max_ratio).abs() < 1e-9);
            } else {
                prop_assert!(crv_max.is_infinite());
            }
        }
    }
}
