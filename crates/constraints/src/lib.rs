//! Constraint system for the Phoenix scheduler reproduction.
//!
//! Phoenix (ICDCS 2017) schedules tasks that carry *placement constraints*:
//! requirements on the heterogeneous attributes of the worker machines that
//! may run them (instruction-set architecture, core count, disk count,
//! kernel version, clock speed, network speed, ...). This crate provides the
//! vocabulary shared by every other crate in the workspace:
//!
//! * [`attr`] — machine attributes ([`AttributeVector`]) and the categorical
//!   value types ([`Isa`], [`PlatformFamily`]).
//! * [`constraint`] — task-side requirements: [`Constraint`],
//!   [`ConstraintKind`], [`ConstraintClass`] (hard vs. soft) and
//!   [`ConstraintSet`].
//! * [`crv`] — the paper's Constraint Resource Vector: the six-dimensional
//!   demand/supply ratio vector `<cpu, mem, disk, os, clock, net>`
//!   ([`Crv`], [`CrvDimension`]).
//! * [`expr`] — compositional constraint expressions: `All`/`Any`/`Not`
//!   trees and multi-dimensional [`VectorDemand`] packing leaves
//!   ([`ConstraintExpr`]), compiled to bitset plans by the matcher.
//! * [`matching`] — feasibility checks between machines and constraint sets.
//! * [`model`] — the Google-trace constraint distribution (Table II and
//!   Fig. 6 of the paper) and the synthesizer that embeds representative
//!   constraints into arbitrary workloads (used for the Yahoo and Cloudera
//!   traces, exactly as the paper does).
//! * [`supply`] — generation of heterogeneous machine populations whose
//!   attribute mix matches the supply-side distribution of Fig. 6.
//!
//! # Example
//!
//! ```
//! use phoenix_constraints::{
//!     AttributeVector, Constraint, ConstraintKind, ConstraintOp, ConstraintSet, Isa,
//! };
//!
//! let machine = AttributeVector::builder()
//!     .isa(Isa::X86)
//!     .num_cores(16)
//!     .cpu_clock_mhz(2600)
//!     .build();
//!
//! let wants = ConstraintSet::from_constraints(vec![
//!     Constraint::hard(ConstraintKind::Architecture, ConstraintOp::Eq, Isa::X86 as u64),
//!     Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 8),
//! ]);
//!
//! assert!(wants.satisfied_by(&machine));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod constraint;
pub mod crv;
pub mod expr;
pub mod matching;
pub mod model;
pub mod supply;

pub use attr::{AttributeVector, AttributeVectorBuilder, Isa, PlatformFamily};
pub use constraint::{
    Constraint, ConstraintClass, ConstraintKind, ConstraintOp, ConstraintSet, PlacementConstraint,
};
pub use crv::{Crv, CrvDimension, CrvTable};
pub use expr::{ConstraintExpr, VectorDemand};
pub use matching::{feasible_fraction, FeasibilityIndex};
pub use model::{
    supply_curve, table_ii_row, ConstraintModel, ConstraintStats, KindProfile,
    CONSTRAINT_COUNT_DISTRIBUTION, TABLE_II,
};
pub use supply::{weighted_pick, MachinePopulation, PopulationProfile, Weighted};
