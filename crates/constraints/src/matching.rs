//! Feasibility matching between constraint sets and machine populations.
//!
//! Schedulers constantly ask "which workers can run this task?" — for probe
//! placement, for work stealing, and for Phoenix's supply estimation. The
//! [`FeasibilityIndex`] answers those queries over a fixed machine
//! population, memoizing full scans per distinct [`ConstraintSet`] (the
//! synthesizer produces a bounded variety of sets, so the cache converges
//! quickly).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::attr::AttributeVector;
use crate::constraint::{Constraint, ConstraintKind, ConstraintSet};

/// Fraction of `machines` that satisfy `set`, in `[0, 1]`.
///
/// Returns 0.0 for an empty population.
pub fn feasible_fraction(machines: &[AttributeVector], set: &ConstraintSet) -> f64 {
    if machines.is_empty() {
        return 0.0;
    }
    let n = machines.iter().filter(|m| set.satisfied_by(m)).count();
    n as f64 / machines.len() as f64
}

/// Memoizing feasibility oracle over a fixed machine population.
///
/// Machines are addressed by their dense index in the population (the same
/// index the simulator uses as worker id).
#[derive(Debug)]
pub struct FeasibilityIndex {
    machines: Vec<AttributeVector>,
    set_cache: RefCell<HashMap<ConstraintSet, Arc<[u32]>>>,
    single_cache: RefCell<HashMap<Constraint, Arc<[u32]>>>,
}

impl FeasibilityIndex {
    /// Builds an index over a machine population.
    pub fn new(machines: Vec<AttributeVector>) -> Self {
        FeasibilityIndex {
            machines,
            set_cache: RefCell::new(HashMap::new()),
            single_cache: RefCell::new(HashMap::new()),
        }
    }

    /// The machine population, by worker index.
    pub fn machines(&self) -> &[AttributeVector] {
        &self.machines
    }

    /// Number of machines in the population.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Direct feasibility check for one worker.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range for the population.
    pub fn is_feasible(&self, worker: u32, set: &ConstraintSet) -> bool {
        set.satisfied_by(&self.machines[worker as usize])
    }

    /// All workers satisfying `set`, as a shared sorted slice.
    ///
    /// The first query for a given set performs a full population scan;
    /// subsequent queries are O(1).
    pub fn feasible(&self, set: &ConstraintSet) -> Arc<[u32]> {
        if let Some(hit) = self.set_cache.borrow().get(set) {
            return Arc::clone(hit);
        }
        let ids: Arc<[u32]> = self
            .machines
            .iter()
            .enumerate()
            .filter(|(_, m)| set.satisfied_by(m))
            .map(|(i, _)| i as u32)
            .collect();
        self.set_cache
            .borrow_mut()
            .insert(set.clone(), Arc::clone(&ids));
        ids
    }

    /// All workers satisfying a single constraint, cached.
    pub fn feasible_single(&self, constraint: &Constraint) -> Arc<[u32]> {
        if let Some(hit) = self.single_cache.borrow().get(constraint) {
            return Arc::clone(hit);
        }
        let ids: Arc<[u32]> = self
            .machines
            .iter()
            .enumerate()
            .filter(|(_, m)| constraint.satisfied_by(m))
            .map(|(i, _)| i as u32)
            .collect();
        self.single_cache
            .borrow_mut()
            .insert(*constraint, Arc::clone(&ids));
        ids
    }

    /// Number of workers satisfying `set`.
    pub fn count_feasible(&self, set: &ConstraintSet) -> usize {
        self.feasible(set).len()
    }

    /// Samples up to `k` *distinct* feasible workers uniformly at random,
    /// skipping workers for which `exclude` returns true.
    ///
    /// Uses rejection sampling against the whole population first (cheap for
    /// permissive sets) and falls back to an exact scan for selective sets.
    /// Returns fewer than `k` workers when fewer feasible non-excluded
    /// workers exist.
    pub fn sample_feasible<R: Rng + ?Sized>(
        &self,
        set: &ConstraintSet,
        k: usize,
        rng: &mut R,
        mut exclude: impl FnMut(u32) -> bool,
    ) -> Vec<u32> {
        if k == 0 || self.machines.is_empty() {
            return Vec::new();
        }
        let n = self.machines.len();
        let mut picked: Vec<u32> = Vec::with_capacity(k);
        // Rejection phase: a few tries per requested sample.
        let budget = k * 6 + 16;
        for _ in 0..budget {
            if picked.len() == k {
                return picked;
            }
            let idx = rng.random_range(0..n) as u32;
            if picked.contains(&idx) || exclude(idx) {
                continue;
            }
            if set.satisfied_by(&self.machines[idx as usize]) {
                picked.push(idx);
            }
        }
        if picked.len() == k {
            return picked;
        }
        // Exact phase: sample without replacement from the cached feasible
        // list.
        let feasible = self.feasible(set);
        let mut pool: Vec<u32> = feasible
            .iter()
            .copied()
            .filter(|w| !picked.contains(w) && !exclude(*w))
            .collect();
        pool.shuffle(rng);
        for w in pool {
            if picked.len() == k {
                break;
            }
            picked.push(w);
        }
        picked
    }

    /// Per-kind population supply: for each constraint kind, how many
    /// machines satisfy `probe`'s constraint of that kind (if present).
    ///
    /// Useful for seeding the `CRV_Lookup_Table` supply side.
    pub fn kind_supply(&self, set: &ConstraintSet) -> Vec<(ConstraintKind, usize)> {
        set.iter()
            .map(|c| (c.kind, self.feasible_single(c).len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Isa;
    use crate::constraint::ConstraintOp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population() -> Vec<AttributeVector> {
        (0..100u32)
            .map(|i| {
                AttributeVector::builder()
                    .isa(if i % 10 == 0 { Isa::Arm } else { Isa::X86 })
                    .num_cores(if i < 50 { 8 } else { 32 })
                    .build()
            })
            .collect()
    }

    fn big_cores() -> ConstraintSet {
        ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            16,
        )])
    }

    #[test]
    fn feasible_fraction_counts_exactly() {
        let pop = population();
        assert!((feasible_fraction(&pop, &big_cores()) - 0.5).abs() < 1e-12);
        assert_eq!(feasible_fraction(&[], &big_cores()), 0.0);
        assert_eq!(
            feasible_fraction(&pop, &ConstraintSet::unconstrained()),
            1.0
        );
    }

    #[test]
    fn feasible_lists_are_cached_and_correct() {
        let index = FeasibilityIndex::new(population());
        let a = index.feasible(&big_cores());
        let b = index.feasible(&big_cores());
        assert!(Arc::ptr_eq(&a, &b), "second query must hit the cache");
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|&w| w >= 50));
    }

    #[test]
    fn single_constraint_cache_counts() {
        let index = FeasibilityIndex::new(population());
        let arm = Constraint::hard(
            ConstraintKind::Architecture,
            ConstraintOp::Eq,
            Isa::Arm as u64,
        );
        assert_eq!(index.feasible_single(&arm).len(), 10);
        let supply = index.kind_supply(&ConstraintSet::from_constraints(vec![arm]));
        assert_eq!(supply, vec![(ConstraintKind::Architecture, 10)]);
    }

    #[test]
    fn sampling_returns_distinct_feasible_workers() {
        let index = FeasibilityIndex::new(population());
        let mut rng = StdRng::seed_from_u64(7);
        let sample = index.sample_feasible(&big_cores(), 20, &mut rng, |_| false);
        assert_eq!(sample.len(), 20);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "samples must be distinct");
        assert!(sample.iter().all(|&w| w >= 50), "must be feasible");
    }

    #[test]
    fn sampling_respects_exclusion_and_small_pools() {
        let index = FeasibilityIndex::new(population());
        let mut rng = StdRng::seed_from_u64(9);
        // Exclude everything except worker 99.
        let sample = index.sample_feasible(&big_cores(), 5, &mut rng, |w| w != 99);
        assert_eq!(sample, vec![99]);
    }

    #[test]
    fn sampling_more_than_available_returns_all() {
        let index = FeasibilityIndex::new(population());
        let mut rng = StdRng::seed_from_u64(11);
        let arm_set = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::Architecture,
            ConstraintOp::Eq,
            Isa::Arm as u64,
        )]);
        let sample = index.sample_feasible(&arm_set, 50, &mut rng, |_| false);
        assert_eq!(sample.len(), 10);
    }

    #[test]
    fn sampling_zero_or_empty_population() {
        let index = FeasibilityIndex::new(population());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(index
            .sample_feasible(&big_cores(), 0, &mut rng, |_| false)
            .is_empty());
        let empty = FeasibilityIndex::new(Vec::new());
        assert!(empty
            .sample_feasible(&big_cores(), 3, &mut rng, |_| false)
            .is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn infeasible_set_yields_empty_everything() {
        let index = FeasibilityIndex::new(population());
        let impossible = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            1_000,
        )]);
        assert_eq!(index.count_feasible(&impossible), 0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(index
            .sample_feasible(&impossible, 4, &mut rng, |_| false)
            .is_empty());
    }
}
