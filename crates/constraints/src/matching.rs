//! Feasibility matching between constraint sets and machine populations.
//!
//! Schedulers constantly ask "which workers can run this task?" — for probe
//! placement, for work stealing, and for Phoenix's supply estimation. The
//! [`FeasibilityIndex`] answers those queries over a fixed machine
//! population.
//!
//! # Index structure
//!
//! Historically every cold query was an O(N) full-population scan. At the
//! paper's cluster sizes (5,000–19,000 workers) that scan *is* the hot
//! kernel of constraint-aware scheduling, so the index now builds, once at
//! construction:
//!
//! * **per-attribute posting lists** — for every [`ConstraintKind`], the
//!   machine ids grouped by distinct attribute value, values sorted. A
//!   constraint `attr op value` then denotes a *contiguous range* of value
//!   groups (binary search, O(log m) for m distinct values), so counting
//!   its matches is O(1) arithmetic on the group offsets;
//! * **fixed-width bitset blocks** — for kinds with few distinct values
//!   (every realistic profile: core counts, kernel versions, platform
//!   generations, ... have a handful each), cumulative bitsets over the
//!   sorted value groups. Any constraint's match set is then two words
//!   `prefix[hi] & !prefix[lo]` per 64 machines, and a whole
//!   [`ConstraintSet`] resolves by word-wise intersection — O(N/64) per
//!   constraint instead of O(N) predicate evaluations.
//!
//! Kinds with pathologically many distinct values (beyond
//! [`PREFIX_VALUE_CAP`], impossible with the shipped population profiles
//! but reachable through the public API) skip the bitset blocks and fall
//! back to scattering/filtering their posting range, bounding index memory
//! by O(N) per kind.
//!
//! Per-set and per-constraint results are memoized exactly as before (the
//! synthesizer produces a bounded variety of sets, so the caches converge
//! quickly); the posting lists make the *cold* path cheap, the caches make
//! the warm path O(1).
//!
//! Every query is a pure function of the population, so the rewrite is
//! digest-neutral: [`FeasibilityIndex::sample_feasible`] consumes the
//! exact same RNG draws as the historical scan-based implementation (the
//! equivalence is pinned by the `feasibility_oracle` proptest suite and the
//! golden-trace snapshots).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::attr::AttributeVector;
use crate::constraint::{Constraint, ConstraintKind, ConstraintOp, ConstraintSet};
use crate::expr::ConstraintExpr;

/// Fraction of `machines` that satisfy `set`, in `[0, 1]`.
///
/// Deliberately kept as a naive linear scan: this is the reference oracle
/// the indexed paths are property-tested against. Returns 0.0 for an empty
/// population.
pub fn feasible_fraction(machines: &[AttributeVector], set: &ConstraintSet) -> f64 {
    if machines.is_empty() {
        return 0.0;
    }
    let n = machines.iter().filter(|m| set.satisfied_by(m)).count();
    n as f64 / machines.len() as f64
}

/// Above this many distinct attribute values a kind skips its cumulative
/// bitset blocks (memory would grow O(m·N/64)) and answers from the posting
/// ranges alone. All shipped population profiles stay far below the cap.
const PREFIX_VALUE_CAP: usize = 64;

/// Sample sizes at or below this use a plain linear duplicate check in
/// [`FeasibilityIndex::sample_feasible`]; larger requests switch to a
/// reusable bitmask (O(1) membership instead of O(k) per draw). Both checks
/// are RNG-neutral — only wall-clock changes.
const SMALL_SAMPLE: usize = 16;

/// One kind's posting lists: machine ids grouped by attribute value.
#[derive(Debug)]
struct KindPostings {
    /// Sorted distinct attribute values observed in the population.
    values: Vec<u64>,
    /// Group offsets into `postings`; group `i` holds the machines whose
    /// attribute equals `values[i]`. Length `values.len() + 1`.
    starts: Vec<u32>,
    /// Machine ids grouped by value (ascending id within each group).
    postings: Vec<u32>,
    /// Cumulative bitset blocks: `prefix[i]` (a `words`-sized slice of the
    /// flat vector) covers the machines in groups `0..i`. Length
    /// `(values.len() + 1) * words`. `None` when the kind has more than
    /// [`PREFIX_VALUE_CAP`] distinct values.
    prefix: Option<Vec<u64>>,
}

impl KindPostings {
    fn build(kind: ConstraintKind, machines: &[AttributeVector], words: usize) -> Self {
        let mut by_value: Vec<(u64, u32)> = machines
            .iter()
            .enumerate()
            .map(|(i, m)| (Constraint::machine_attribute(kind, m), i as u32))
            .collect();
        by_value.sort_unstable();
        let mut values = Vec::new();
        let mut starts: Vec<u32> = Vec::new();
        let mut postings = Vec::with_capacity(machines.len());
        for (value, id) in by_value {
            if values.last() != Some(&value) {
                values.push(value);
                starts.push(postings.len() as u32);
            }
            postings.push(id);
        }
        starts.push(postings.len() as u32);
        let prefix = (values.len() <= PREFIX_VALUE_CAP).then(|| {
            // prefix[i] = union of groups 0..i: copy the previous block,
            // then OR in group i's machines.
            let mut prefix = vec![0u64; (values.len() + 1) * words];
            for i in 0..values.len() {
                let (src, dst) = (i * words, (i + 1) * words);
                prefix.copy_within(src..src + words, dst);
                for &id in &postings[starts[i] as usize..starts[i + 1] as usize] {
                    prefix[dst + (id as usize >> 6)] |= 1u64 << (id & 63);
                }
            }
            prefix
        });
        KindPostings {
            values,
            starts,
            postings,
            prefix,
        }
    }

    /// The half-open range of value-group indices a constraint selects.
    fn group_range(&self, c: &Constraint) -> (usize, usize) {
        let m = self.values.len();
        match c.op {
            ConstraintOp::Lt => (0, self.values.partition_point(|&v| v < c.value)),
            ConstraintOp::Gt => (self.values.partition_point(|&v| v <= c.value), m),
            ConstraintOp::Eq => match self.values.binary_search(&c.value) {
                Ok(i) => (i, i + 1),
                Err(_) => (0, 0),
            },
        }
    }

    /// Number of machines a constraint matches, O(1) after the range.
    fn count(&self, range: (usize, usize)) -> usize {
        (self.starts[range.1] - self.starts[range.0]) as usize
    }

    /// The machine ids in a group range (grouped by value, not id-sorted).
    fn ids(&self, range: (usize, usize)) -> &[u32] {
        &self.postings[self.starts[range.0] as usize..self.starts[range.1] as usize]
    }

    /// Writes the constraint's match set into `out` (must be zeroed),
    /// OR-style. Uses the prefix blocks when available, else scatters the
    /// posting range.
    fn write_bits(&self, range: (usize, usize), words: usize, out: &mut [u64]) {
        if let Some(prefix) = &self.prefix {
            let lo = &prefix[range.0 * words..(range.0 + 1) * words];
            let hi = &prefix[range.1 * words..(range.1 + 1) * words];
            for ((out, &hi), &lo) in out.iter_mut().zip(hi).zip(lo) {
                *out |= hi & !lo;
            }
        } else {
            for &id in self.ids(range) {
                out[id as usize >> 6] |= 1u64 << (id & 63);
            }
        }
    }

    /// Intersects `acc` with the constraint's match set in place.
    fn intersect_bits(
        &self,
        c: &Constraint,
        range: (usize, usize),
        words: usize,
        machines: &[AttributeVector],
        acc: &mut [u64],
    ) {
        if let Some(prefix) = &self.prefix {
            let lo = &prefix[range.0 * words..(range.0 + 1) * words];
            let hi = &prefix[range.1 * words..(range.1 + 1) * words];
            for ((acc, &hi), &lo) in acc.iter_mut().zip(hi).zip(lo) {
                *acc &= hi & !lo;
            }
        } else {
            // Rare fallback (more distinct values than the bitset cap):
            // re-test only the surviving candidates.
            for (w, word) in acc.iter_mut().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    let bit = bits.trailing_zeros();
                    bits &= bits - 1;
                    let id = (w << 6) as u32 + bit;
                    if !c.satisfied_by(&machines[id as usize]) {
                        *word &= !(1u64 << bit);
                    }
                }
            }
        }
    }
}

/// A memoized per-set result: the sorted feasible id list plus the same set
/// as a bitset (one bit per machine index) for O(1) membership tests.
#[derive(Debug, Clone)]
struct CachedSet {
    ids: Arc<[u32]>,
    bits: Arc<[u64]>,
}

/// Memoizing feasibility oracle over a fixed machine population, backed by
/// per-attribute posting lists and bitset blocks (see the module docs).
///
/// Machines are addressed by their dense index in the population (the same
/// index the simulator uses as worker id).
#[derive(Debug)]
pub struct FeasibilityIndex {
    machines: Vec<AttributeVector>,
    /// Bitset width in 64-bit words: `machines.len().div_ceil(64)`.
    words: usize,
    /// One posting structure per [`ConstraintKind`], in `ALL` order.
    kinds: Vec<KindPostings>,
    set_cache: RefCell<HashMap<ConstraintSet, CachedSet>>,
    single_cache: RefCell<HashMap<Constraint, Arc<[u32]>>>,
    /// Reusable duplicate-guard bitmask for large sampling requests.
    sample_mask: RefCell<Vec<u64>>,
    /// Reusable exact-phase candidate pool (avoids an allocation per
    /// selective sampling call).
    sample_pool: RefCell<Vec<u32>>,
}

impl FeasibilityIndex {
    /// Builds an index over a machine population: one pass per constraint
    /// kind to group machines by attribute value and lay down the bitset
    /// blocks (O(kinds · N log N) once, at simulation construction).
    pub fn new(machines: Vec<AttributeVector>) -> Self {
        let words = machines.len().div_ceil(64);
        let kinds = ConstraintKind::ALL
            .iter()
            .map(|&kind| KindPostings::build(kind, &machines, words))
            .collect();
        FeasibilityIndex {
            machines,
            words,
            kinds,
            set_cache: RefCell::new(HashMap::new()),
            single_cache: RefCell::new(HashMap::new()),
            sample_mask: RefCell::new(Vec::new()),
            sample_pool: RefCell::new(Vec::new()),
        }
    }

    /// The machine population, by worker index.
    pub fn machines(&self) -> &[AttributeVector] {
        &self.machines
    }

    /// Number of machines in the population.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Direct feasibility check for one worker: a single word test when the
    /// set's bitset is already cached, a direct attribute comparison
    /// otherwise (one-off queries never pay for building the set's bitset).
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range for the population.
    pub fn is_feasible(&self, worker: u32, set: &ConstraintSet) -> bool {
        assert!(
            (worker as usize) < self.machines.len(),
            "worker {worker} out of range"
        );
        if let Some(hit) = self.set_cache.borrow().get(set) {
            return hit.bits[worker as usize >> 6] >> (worker & 63) & 1 != 0;
        }
        set.satisfied_by(&self.machines[worker as usize])
    }

    /// The all-machines bitset (every population bit set, tail trimmed).
    /// This is the universe `Not` complements against: the *full*
    /// population, never a liveness-filtered view — machine death is a
    /// sampling-time `exclude` concern, so a complement cannot resurrect a
    /// dead machine that the exclusion predicate would reject.
    fn universe_bits(&self) -> Vec<u64> {
        let mut bits = vec![!0u64; self.words];
        let rem = self.machines.len() % 64;
        if rem != 0 {
            bits[self.words - 1] = (1u64 << rem) - 1;
        }
        bits
    }

    /// Recursively compiles an expression to its match bitset:
    /// `All` = word-wise AND of child plans, `Any` = word-wise OR,
    /// `Not` = AND-NOT against the universe mask, leaves = posting-range
    /// lookups. Cost is O(N/64) per tree node plus the leaf range scatters
    /// — no per-machine predicate evaluation on any path.
    fn compute_expr_bits(&self, expr: &ConstraintExpr) -> Vec<u64> {
        match expr {
            ConstraintExpr::Leaf(c) => {
                let mut bits = vec![0u64; self.words];
                let postings = &self.kinds[c.kind.index()];
                postings.write_bits(postings.group_range(c), self.words, &mut bits);
                bits
            }
            ConstraintExpr::Vector(v) => {
                let mut acc = self.universe_bits();
                for c in v.to_constraints() {
                    let mut bits = vec![0u64; self.words];
                    let postings = &self.kinds[c.kind.index()];
                    postings.write_bits(postings.group_range(&c), self.words, &mut bits);
                    for (a, b) in acc.iter_mut().zip(&bits) {
                        *a &= b;
                    }
                }
                acc
            }
            ConstraintExpr::All(children) => {
                let mut acc = self.universe_bits();
                for child in children {
                    let bits = self.compute_expr_bits(child);
                    for (a, b) in acc.iter_mut().zip(&bits) {
                        *a &= b;
                    }
                }
                acc
            }
            ConstraintExpr::Any(children) => {
                // Empty Any stays all-zero: the false constant.
                let mut acc = vec![0u64; self.words];
                for child in children {
                    let bits = self.compute_expr_bits(child);
                    for (a, b) in acc.iter_mut().zip(&bits) {
                        *a |= b;
                    }
                }
                acc
            }
            ConstraintExpr::Not(child) => {
                let child_bits = self.compute_expr_bits(child);
                let mut acc = self.universe_bits();
                for (a, b) in acc.iter_mut().zip(&child_bits) {
                    *a &= !b;
                }
                acc
            }
        }
    }

    /// Computes (uncached) the bitset of machines satisfying `set`.
    fn compute_bits(&self, set: &ConstraintSet) -> Vec<u64> {
        let mut bits = vec![0u64; self.words];
        if self.machines.is_empty() {
            return bits;
        }
        // Expression sets compile recursively; this must run before the
        // is_empty() shortcut (a pure-Not tree has an empty projection but
        // is not the unconstrained set).
        if let Some(expr) = set.expr() {
            return self.compute_expr_bits(expr);
        }
        if set.is_empty() {
            bits.fill(!0u64);
            let rem = self.machines.len() % 64;
            if rem != 0 {
                bits[self.words - 1] = (1u64 << rem) - 1;
            }
            return bits;
        }
        // Resolve every constraint to its value-group range, then intersect
        // most-selective first so the fallback paths touch few candidates.
        let mut ranges: Vec<(usize, &Constraint, (usize, usize))> = set
            .iter()
            .map(|c| {
                let postings = &self.kinds[c.kind.index()];
                let range = postings.group_range(c);
                (postings.count(range), c, range)
            })
            .collect();
        ranges.sort_by_key(|&(count, _, _)| count);
        let mut first = true;
        for (_, c, range) in ranges {
            let postings = &self.kinds[c.kind.index()];
            if first {
                postings.write_bits(range, self.words, &mut bits);
                first = false;
            } else {
                postings.intersect_bits(c, range, self.words, &self.machines, &mut bits);
            }
        }
        bits
    }

    /// Collects the set bits of a bitset as ascending machine ids.
    fn collect_ids(bits: &[u64]) -> Arc<[u32]> {
        let mut ids = Vec::with_capacity(bits.iter().map(|w| w.count_ones() as usize).sum());
        for (w, &word) in bits.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                ids.push((w << 6) as u32 + word.trailing_zeros());
                word &= word - 1;
            }
        }
        ids.into()
    }

    fn cached_set(&self, set: &ConstraintSet) -> CachedSet {
        if let Some(hit) = self.set_cache.borrow().get(set) {
            return hit.clone();
        }
        let bits = self.compute_bits(set);
        let cached = CachedSet {
            ids: Self::collect_ids(&bits),
            bits: bits.into(),
        };
        self.set_cache
            .borrow_mut()
            .insert(set.clone(), cached.clone());
        cached
    }

    /// All workers satisfying `set`, as a shared sorted slice.
    ///
    /// Cold queries intersect the per-attribute bitset blocks (O(N/64) per
    /// constraint) instead of scanning the population; subsequent queries
    /// are O(1) cache hits.
    pub fn feasible(&self, set: &ConstraintSet) -> Arc<[u32]> {
        self.cached_set(set).ids
    }

    /// The workers satisfying `set` as a bitset, one bit per machine index
    /// (same caching as [`FeasibilityIndex::feasible`]).
    pub fn feasible_bits(&self, set: &ConstraintSet) -> Arc<[u64]> {
        self.cached_set(set).bits
    }

    /// All workers satisfying a single constraint, cached.
    pub fn feasible_single(&self, constraint: &Constraint) -> Arc<[u32]> {
        if let Some(hit) = self.single_cache.borrow().get(constraint) {
            return Arc::clone(hit);
        }
        let postings = &self.kinds[constraint.kind.index()];
        let range = postings.group_range(constraint);
        let mut bits = vec![0u64; self.words];
        postings.write_bits(range, self.words, &mut bits);
        let ids = Self::collect_ids(&bits);
        self.single_cache
            .borrow_mut()
            .insert(*constraint, Arc::clone(&ids));
        ids
    }

    /// Number of workers satisfying a single constraint: pure posting-range
    /// arithmetic, O(log m) with no materialization.
    pub fn count_single(&self, constraint: &Constraint) -> usize {
        let postings = &self.kinds[constraint.kind.index()];
        postings.count(postings.group_range(constraint))
    }

    /// Number of workers satisfying `set`.
    pub fn count_feasible(&self, set: &ConstraintSet) -> usize {
        self.feasible(set).len()
    }

    /// Number of workers in `[start, end)` satisfying `set` — the
    /// partitioned view federated domains use to skip remote domains with
    /// no feasible machine at all. Popcounts the cached feasibility bitset
    /// over the word span (O(range/64)), masking the edge words; shares
    /// the memo cache with [`FeasibilityIndex::feasible`].
    pub fn count_feasible_in_range(&self, set: &ConstraintSet, start: usize, end: usize) -> usize {
        let end = end.min(self.machines.len());
        if start >= end {
            return 0;
        }
        let bits = self.feasible_bits(set);
        let (first, last) = (start >> 6, (end - 1) >> 6);
        let mut count = 0usize;
        for (w, &word) in bits.iter().enumerate().take(last + 1).skip(first) {
            let mut word = word;
            if w == first {
                word &= u64::MAX << (start & 63);
            }
            if w == last {
                let tail = end & 63;
                if tail != 0 {
                    word &= u64::MAX >> (64 - tail);
                }
            }
            count += word.count_ones() as usize;
        }
        count
    }

    /// Like [`FeasibilityIndex::count_feasible`] but bypassing (and not
    /// populating) the memo cache: every call pays the bitset intersection
    /// and nothing is retained. For one-off queries over sets that will
    /// never recur — and for benchmarking the cold path honestly.
    pub fn count_feasible_uncached(&self, set: &ConstraintSet) -> usize {
        self.compute_bits(set)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Samples up to `k` *distinct* feasible workers uniformly at random,
    /// skipping workers for which `exclude` returns true.
    ///
    /// Uses rejection sampling against the whole population first (cheap for
    /// permissive sets) and falls back to an exact scan for selective sets.
    /// Returns fewer than `k` workers when fewer feasible non-excluded
    /// workers exist.
    ///
    /// The RNG draw sequence is part of the simulator's determinism
    /// contract: one `random_range` per rejection try, then one shuffle of
    /// the surviving exact-phase pool — regardless of how membership and
    /// duplicate checks are implemented internally.
    pub fn sample_feasible<R: Rng + ?Sized>(
        &self,
        set: &ConstraintSet,
        k: usize,
        rng: &mut R,
        mut exclude: impl FnMut(u32) -> bool,
    ) -> Vec<u32> {
        if k == 0 || self.machines.is_empty() {
            return Vec::new();
        }
        let n = self.machines.len();
        // Membership: a word test when the set's bitset is already cached
        // (the steady state — schedulers query the same bounded set
        // variety), a direct comparison otherwise. Identical answers either
        // way, so the draw sequence is unaffected.
        let cached_bits: Option<Arc<[u64]>> = self
            .set_cache
            .borrow()
            .get(set)
            .map(|hit| Arc::clone(&hit.bits));
        let feasible_bit = |idx: u32| match &cached_bits {
            Some(bits) => bits[idx as usize >> 6] >> (idx & 63) & 1 != 0,
            None => set.satisfied_by(&self.machines[idx as usize]),
        };
        // Duplicate guard: linear scan for small k (cheaper than touching
        // the mask at all), reusable bitmask beyond — the old
        // `picked.contains` made large placements O(k²).
        let use_mask = k > SMALL_SAMPLE;
        let mut mask = self.sample_mask.borrow_mut();
        if use_mask {
            mask.clear();
            mask.resize(self.words, 0);
        }
        let mut picked: Vec<u32> = Vec::with_capacity(k.min(n));
        // Rejection phase: a few tries per requested sample.
        let budget = k * 6 + 16;
        for _ in 0..budget {
            if picked.len() == k {
                return picked;
            }
            let idx = rng.random_range(0..n) as u32;
            let dup = if use_mask {
                mask[idx as usize >> 6] >> (idx & 63) & 1 != 0
            } else {
                picked.contains(&idx)
            };
            if dup || exclude(idx) {
                continue;
            }
            if feasible_bit(idx) {
                picked.push(idx);
                if use_mask {
                    mask[idx as usize >> 6] |= 1u64 << (idx & 63);
                }
            }
        }
        if picked.len() == k {
            return picked;
        }
        // Exact phase: sample without replacement from the cached feasible
        // list.
        let feasible = self.feasible(set);
        let mut pool = self.sample_pool.borrow_mut();
        pool.clear();
        pool.extend(feasible.iter().copied().filter(|&w| {
            let dup = if use_mask {
                mask[w as usize >> 6] >> (w & 63) & 1 != 0
            } else {
                picked.contains(&w)
            };
            !dup && !exclude(w)
        }));
        pool.shuffle(rng);
        for &w in pool.iter() {
            if picked.len() == k {
                break;
            }
            picked.push(w);
        }
        picked
    }

    /// Per-kind population supply: for each constraint kind, how many
    /// machines satisfy `probe`'s constraint of that kind (if present).
    /// O(log m) per constraint off the posting offsets.
    ///
    /// Useful for seeding the `CRV_Lookup_Table` supply side.
    pub fn kind_supply(&self, set: &ConstraintSet) -> Vec<(ConstraintKind, usize)> {
        set.iter().map(|c| (c.kind, self.count_single(c))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Isa;
    use crate::constraint::ConstraintOp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population() -> Vec<AttributeVector> {
        (0..100u32)
            .map(|i| {
                AttributeVector::builder()
                    .isa(if i % 10 == 0 { Isa::Arm } else { Isa::X86 })
                    .num_cores(if i < 50 { 8 } else { 32 })
                    .build()
            })
            .collect()
    }

    fn big_cores() -> ConstraintSet {
        ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            16,
        )])
    }

    #[test]
    fn feasible_fraction_counts_exactly() {
        let pop = population();
        assert!((feasible_fraction(&pop, &big_cores()) - 0.5).abs() < 1e-12);
        assert_eq!(feasible_fraction(&[], &big_cores()), 0.0);
        assert_eq!(
            feasible_fraction(&pop, &ConstraintSet::unconstrained()),
            1.0
        );
    }

    #[test]
    fn range_counts_match_filtered_lists() {
        let index = FeasibilityIndex::new(population());
        let set = big_cores();
        let all: Vec<u32> = index.feasible(&set).to_vec();
        // Every alignment case: word-interior, word-straddling, edge-exact.
        for (start, end) in [
            (0, 100),
            (0, 50),
            (50, 100),
            (3, 67),
            (64, 128),
            (63, 64),
            (70, 70),
        ] {
            let expected = all
                .iter()
                .filter(|&&w| (start..end.min(100)).contains(&(w as usize)))
                .count();
            assert_eq!(
                index.count_feasible_in_range(&set, start, end),
                expected,
                "[{start}, {end})"
            );
        }
        // Unconstrained sets count the whole slice.
        assert_eq!(
            index.count_feasible_in_range(&ConstraintSet::unconstrained(), 10, 30),
            20
        );
        assert_eq!(index.count_feasible_in_range(&set, 80, 20), 0);
    }

    #[test]
    fn feasible_lists_are_cached_and_correct() {
        let index = FeasibilityIndex::new(population());
        let a = index.feasible(&big_cores());
        let b = index.feasible(&big_cores());
        assert!(Arc::ptr_eq(&a, &b), "second query must hit the cache");
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|&w| w >= 50));
    }

    #[test]
    fn feasible_matches_naive_scan_on_operator_mix() {
        let pop = population();
        let index = FeasibilityIndex::new(pop.clone());
        for set in [
            ConstraintSet::unconstrained(),
            big_cores(),
            ConstraintSet::from_constraints(vec![
                Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Lt, 32),
                Constraint::hard(
                    ConstraintKind::Architecture,
                    ConstraintOp::Eq,
                    Isa::Arm as u64,
                ),
            ]),
            ConstraintSet::from_constraints(vec![
                Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 8),
                Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Lt, 64),
            ]),
        ] {
            let naive: Vec<u32> = pop
                .iter()
                .enumerate()
                .filter(|(_, m)| set.satisfied_by(m))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(index.count_feasible_uncached(&set), naive.len(), "{set}");
            assert_eq!(index.feasible(&set).to_vec(), naive, "{set}");
            assert_eq!(index.count_feasible(&set), naive.len(), "{set}");
            for w in 0..pop.len() as u32 {
                assert_eq!(
                    index.is_feasible(w, &set),
                    set.satisfied_by(&pop[w as usize]),
                    "{set} worker {w}"
                );
            }
        }
    }

    #[test]
    fn bitsets_agree_with_id_lists() {
        let index = FeasibilityIndex::new(population());
        let set = big_cores();
        let bits = index.feasible_bits(&set);
        let ids = index.feasible(&set);
        let from_bits: Vec<u32> = (0..index.len() as u32)
            .filter(|&w| bits[w as usize >> 6] >> (w & 63) & 1 != 0)
            .collect();
        assert_eq!(from_bits, ids.to_vec());
    }

    #[test]
    fn prefix_cap_fallback_matches_naive_scan() {
        // One distinct core count per machine: the NumCores kind exceeds
        // PREFIX_VALUE_CAP and must take the posting-range fallback.
        let pop: Vec<AttributeVector> = (0..200u32)
            .map(|i| AttributeVector::builder().num_cores(i + 1).build())
            .collect();
        let index = FeasibilityIndex::new(pop.clone());
        let set = ConstraintSet::from_constraints(vec![
            Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 50),
            Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Lt, 151),
        ]);
        let naive: Vec<u32> = pop
            .iter()
            .enumerate()
            .filter(|(_, m)| set.satisfied_by(m))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(naive.len(), 100);
        assert_eq!(index.feasible(&set).to_vec(), naive);
        let single = Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 150);
        assert_eq!(index.count_single(&single), 50);
        assert_eq!(index.feasible_single(&single).len(), 50);
    }

    #[test]
    fn single_constraint_cache_counts() {
        let index = FeasibilityIndex::new(population());
        let arm = Constraint::hard(
            ConstraintKind::Architecture,
            ConstraintOp::Eq,
            Isa::Arm as u64,
        );
        assert_eq!(index.feasible_single(&arm).len(), 10);
        assert_eq!(index.count_single(&arm), 10);
        let supply = index.kind_supply(&ConstraintSet::from_constraints(vec![arm]));
        assert_eq!(supply, vec![(ConstraintKind::Architecture, 10)]);
    }

    #[test]
    fn sampling_returns_distinct_feasible_workers() {
        let index = FeasibilityIndex::new(population());
        let mut rng = StdRng::seed_from_u64(7);
        let sample = index.sample_feasible(&big_cores(), 20, &mut rng, |_| false);
        assert_eq!(sample.len(), 20);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "samples must be distinct");
        assert!(sample.iter().all(|&w| w >= 50), "must be feasible");
    }

    #[test]
    fn sampling_respects_exclusion_and_small_pools() {
        let index = FeasibilityIndex::new(population());
        let mut rng = StdRng::seed_from_u64(9);
        // Exclude everything except worker 99.
        let sample = index.sample_feasible(&big_cores(), 5, &mut rng, |w| w != 99);
        assert_eq!(sample, vec![99]);
    }

    #[test]
    fn sampling_more_than_available_returns_all() {
        let index = FeasibilityIndex::new(population());
        let mut rng = StdRng::seed_from_u64(11);
        let arm_set = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::Architecture,
            ConstraintOp::Eq,
            Isa::Arm as u64,
        )]);
        let sample = index.sample_feasible(&arm_set, 50, &mut rng, |_| false);
        assert_eq!(sample.len(), 10);
    }

    #[test]
    fn large_samples_use_the_mask_and_stay_distinct() {
        // k > SMALL_SAMPLE exercises the bitmask duplicate guard in both
        // the rejection and exact phases.
        let index = FeasibilityIndex::new(population());
        let mut rng = StdRng::seed_from_u64(13);
        let sample = index.sample_feasible(&ConstraintSet::unconstrained(), 80, &mut rng, |w| {
            w % 7 == 0
        });
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), sample.len(), "samples must be distinct");
        assert!(sample.iter().all(|&w| w % 7 != 0), "exclusion honored");
        assert_eq!(sample.len(), 80.min(population().len() - 15));
    }

    #[test]
    fn sampling_zero_or_empty_population() {
        let index = FeasibilityIndex::new(population());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(index
            .sample_feasible(&big_cores(), 0, &mut rng, |_| false)
            .is_empty());
        let empty = FeasibilityIndex::new(Vec::new());
        assert!(empty
            .sample_feasible(&big_cores(), 3, &mut rng, |_| false)
            .is_empty());
        assert!(empty.is_empty());
        assert!(empty.feasible(&big_cores()).is_empty());
        assert_eq!(empty.count_feasible(&ConstraintSet::unconstrained()), 0);
    }

    #[test]
    fn infeasible_set_yields_empty_everything() {
        let index = FeasibilityIndex::new(population());
        let impossible = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            1_000,
        )]);
        assert_eq!(index.count_feasible(&impossible), 0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(index
            .sample_feasible(&impossible, 4, &mut rng, |_| false)
            .is_empty());
    }
}
