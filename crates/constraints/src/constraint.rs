//! Task-side constraints: kinds, operators, hard/soft classes and sets.

use std::fmt;
use std::sync::Arc;

use crate::attr::{AttributeVector, Isa};
use crate::crv::CrvDimension;
use crate::expr::ConstraintExpr;

/// The constraint kinds observed in the Google cluster trace (Table II of
/// the paper), plus an explicit memory kind so that the paper's
/// six-dimensional CRV `<cpu, mem, disk, os, clock, net>` has a populated
/// memory dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConstraintKind {
    /// Instruction-set architecture (`Architecture (ISA)` in Table II).
    Architecture,
    /// Gang size: number of co-resident nodes requested.
    NumNodes,
    /// NIC speed.
    EthernetSpeed,
    /// CPU core count.
    NumCores,
    /// Upper bound on attached disks (jobs that want dedicated small nodes).
    MaxDisks,
    /// OS kernel version.
    KernelVersion,
    /// Micro-architecture platform family.
    PlatformFamily,
    /// CPU base clock.
    CpuClockSpeed,
    /// Lower bound on attached disks.
    MinDisks,
    /// Minimum installed memory.
    Memory,
}

impl ConstraintKind {
    /// All kinds, in Table II order (memory appended).
    pub const ALL: [ConstraintKind; 10] = [
        ConstraintKind::Architecture,
        ConstraintKind::NumNodes,
        ConstraintKind::EthernetSpeed,
        ConstraintKind::NumCores,
        ConstraintKind::MaxDisks,
        ConstraintKind::KernelVersion,
        ConstraintKind::PlatformFamily,
        ConstraintKind::CpuClockSpeed,
        ConstraintKind::MinDisks,
        ConstraintKind::Memory,
    ];

    /// Number of distinct kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index of this kind (stable, in [`Self::ALL`] order).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind present in ALL")
    }

    /// The CRV dimension this kind contributes demand to, following the
    /// paper's `<cpu, mem, disk, os, clock, net_bandwidth>` grouping.
    pub fn crv_dimension(self) -> CrvDimension {
        match self {
            ConstraintKind::Architecture | ConstraintKind::NumCores | ConstraintKind::NumNodes => {
                CrvDimension::Cpu
            }
            ConstraintKind::Memory => CrvDimension::Mem,
            ConstraintKind::MaxDisks | ConstraintKind::MinDisks => CrvDimension::Disk,
            ConstraintKind::KernelVersion | ConstraintKind::PlatformFamily => CrvDimension::Os,
            ConstraintKind::CpuClockSpeed => CrvDimension::Clock,
            ConstraintKind::EthernetSpeed => CrvDimension::Net,
        }
    }

    /// Whether this kind is categorical (only `=` comparisons make sense).
    pub fn is_categorical(self) -> bool {
        matches!(
            self,
            ConstraintKind::Architecture | ConstraintKind::PlatformFamily
        )
    }

    /// Default hard/soft classification.
    ///
    /// The paper's examples: hard constraints are strict requirements
    /// (ISA, CPU count, minimum memory, kernel ABI); soft constraints can be
    /// negotiated with a performance trade-off (clock speed, network
    /// bandwidth). Disk-count caps and gang sizes are treated as soft.
    pub fn default_class(self) -> ConstraintClass {
        match self {
            ConstraintKind::Architecture
            | ConstraintKind::NumCores
            | ConstraintKind::KernelVersion
            | ConstraintKind::PlatformFamily
            | ConstraintKind::Memory
            | ConstraintKind::MinDisks => ConstraintClass::Hard,
            ConstraintKind::CpuClockSpeed
            | ConstraintKind::EthernetSpeed
            | ConstraintKind::MaxDisks
            | ConstraintKind::NumNodes => ConstraintClass::Soft,
        }
    }
}

impl ConstraintKind {
    /// Parses the short name produced by [`fmt::Display`]
    /// (e.g. `"arch"`, `"num_cores"`).
    pub fn from_name(name: &str) -> Option<ConstraintKind> {
        Self::ALL.iter().copied().find(|k| k.to_string() == name)
    }
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ConstraintKind::Architecture => "arch",
            ConstraintKind::NumNodes => "num_nodes",
            ConstraintKind::EthernetSpeed => "eth_speed",
            ConstraintKind::NumCores => "num_cores",
            ConstraintKind::MaxDisks => "max_disks",
            ConstraintKind::KernelVersion => "kernel",
            ConstraintKind::PlatformFamily => "platform",
            ConstraintKind::CpuClockSpeed => "cpu_clock",
            ConstraintKind::MinDisks => "min_disks",
            ConstraintKind::Memory => "memory",
        };
        f.write_str(name)
    }
}

/// Comparison operator attached to a constraint.
///
/// The Google trace accompanies every constraint with one of `<`, `>`, `=`
/// (§V-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// Machine attribute must be strictly less than the value.
    Lt,
    /// Machine attribute must be strictly greater than the value.
    Gt,
    /// Machine attribute must equal the value.
    Eq,
}

impl ConstraintOp {
    /// Evaluates `attribute <op> value`.
    pub fn eval(self, attribute: u64, value: u64) -> bool {
        match self {
            ConstraintOp::Lt => attribute < value,
            ConstraintOp::Gt => attribute > value,
            ConstraintOp::Eq => attribute == value,
        }
    }
}

impl ConstraintOp {
    /// Parses the operator symbol (`"<"`, `">"`, `"="`).
    pub fn from_symbol(symbol: &str) -> Option<ConstraintOp> {
        match symbol {
            "<" => Some(ConstraintOp::Lt),
            ">" => Some(ConstraintOp::Gt),
            "=" => Some(ConstraintOp::Eq),
            _ => None,
        }
    }
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConstraintOp::Lt => "<",
            ConstraintOp::Gt => ">",
            ConstraintOp::Eq => "=",
        })
    }
}

/// Hard vs. soft classification (§III-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintClass {
    /// Strict requirement; the task cannot run where it is violated.
    Hard,
    /// Negotiable requirement; may be relaxed at a performance cost.
    Soft,
}

impl ConstraintClass {
    /// Parses the class name (`"hard"` / `"soft"`).
    pub fn from_name(name: &str) -> Option<ConstraintClass> {
        match name {
            "hard" => Some(ConstraintClass::Hard),
            "soft" => Some(ConstraintClass::Soft),
            _ => None,
        }
    }
}

impl fmt::Display for ConstraintClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConstraintClass::Hard => "hard",
            ConstraintClass::Soft => "soft",
        })
    }
}

/// One task placement constraint: *attribute `op` value*, with a hard/soft
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Which machine attribute is constrained.
    pub kind: ConstraintKind,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Scalar comparison value. Categorical kinds store the enum
    /// discriminant (e.g. [`Isa`] as `u64`).
    pub value: u64,
    /// Hard or soft.
    pub class: ConstraintClass,
}

impl Constraint {
    /// Creates a constraint with an explicit class.
    pub fn new(kind: ConstraintKind, op: ConstraintOp, value: u64, class: ConstraintClass) -> Self {
        Constraint {
            kind,
            op,
            value,
            class,
        }
    }

    /// Creates a hard constraint.
    pub fn hard(kind: ConstraintKind, op: ConstraintOp, value: u64) -> Self {
        Self::new(kind, op, value, ConstraintClass::Hard)
    }

    /// Creates a soft constraint.
    pub fn soft(kind: ConstraintKind, op: ConstraintOp, value: u64) -> Self {
        Self::new(kind, op, value, ConstraintClass::Soft)
    }

    /// Creates a constraint with the kind's default class
    /// (see [`ConstraintKind::default_class`]).
    pub fn with_default_class(kind: ConstraintKind, op: ConstraintOp, value: u64) -> Self {
        Self::new(kind, op, value, kind.default_class())
    }

    /// Reads the constrained attribute out of a machine's attribute vector.
    pub fn machine_attribute(kind: ConstraintKind, machine: &AttributeVector) -> u64 {
        match kind {
            ConstraintKind::Architecture => machine.isa as u64,
            ConstraintKind::NumNodes => u64::from(machine.rack_size),
            ConstraintKind::EthernetSpeed => u64::from(machine.ethernet_mbps),
            ConstraintKind::NumCores => u64::from(machine.num_cores),
            ConstraintKind::MaxDisks | ConstraintKind::MinDisks => u64::from(machine.num_disks),
            ConstraintKind::KernelVersion => u64::from(machine.kernel_version),
            ConstraintKind::PlatformFamily => u64::from(machine.platform.0),
            ConstraintKind::CpuClockSpeed => u64::from(machine.cpu_clock_mhz),
            ConstraintKind::Memory => u64::from(machine.memory_gb),
        }
    }

    /// Whether `machine` satisfies this constraint.
    pub fn satisfied_by(&self, machine: &AttributeVector) -> bool {
        self.op
            .eval(Self::machine_attribute(self.kind, machine), self.value)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == ConstraintKind::Architecture {
            if let Some(isa) = Isa::from_u64(self.value) {
                return write!(f, "[{}] {} {} {}", self.class, self.kind, self.op, isa);
            }
        }
        write!(
            f,
            "[{}] {} {} {}",
            self.class, self.kind, self.op, self.value
        )
    }
}

/// Job-level placement (affinity) constraint (§III-A).
///
/// These are combinatorial preferences over *sets* of tasks rather than
/// per-machine attribute comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementConstraint {
    /// No placement preference.
    #[default]
    None,
    /// Tasks of the job prefer to land in the same rack (data locality).
    Colocate,
    /// Tasks of the job prefer distinct racks (fault tolerance).
    Spread,
}

impl PlacementConstraint {
    /// Parses the placement name (`"none"` / `"colocate"` / `"spread"`).
    pub fn from_name(name: &str) -> Option<PlacementConstraint> {
        match name {
            "none" => Some(PlacementConstraint::None),
            "colocate" => Some(PlacementConstraint::Colocate),
            "spread" => Some(PlacementConstraint::Spread),
            _ => None,
        }
    }
}

impl fmt::Display for PlacementConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlacementConstraint::None => "none",
            PlacementConstraint::Colocate => "colocate",
            PlacementConstraint::Spread => "spread",
        })
    }
}

/// An immutable set of constraints carried by a task (or shared by all tasks
/// of a job).
///
/// The set is kept sorted by kind so that equality and hashing are
/// order-insensitive and so iteration order is deterministic.
///
/// # Compositional expressions
///
/// A set is usually a flat AND of constraints (the paper's model). It may
/// instead carry a compositional [`ConstraintExpr`] tree (affinity `Any`,
/// anti-affinity `Not`, vector packing) — see
/// [`ConstraintSet::from_expr`]. For such sets, `constraints` holds the
/// expression's conservative [`ConstraintExpr::projection`] so that every
/// flat-iteration consumer (CRV demand accounting, supply estimation,
/// constraint statistics) keeps working; satisfaction queries evaluate the
/// tree itself. Pure conjunctions are normalized to flat sets at
/// construction, so flat workloads never observe the expression path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
    placement: PlacementConstraint,
    /// The compositional tree, if this set is not a pure conjunction.
    /// `Arc` keeps set cloning (pervasive in the simulator) cheap.
    expr: Option<Arc<ConstraintExpr>>,
}

impl ConstraintSet {
    /// The empty (unconstrained) set.
    pub fn unconstrained() -> Self {
        Self::default()
    }

    /// Builds a set from constraints; duplicates of the same kind are kept
    /// (a job may both lower- and upper-bound the same attribute).
    pub fn from_constraints(mut constraints: Vec<Constraint>) -> Self {
        constraints.sort_by_key(|c| (c.kind.index(), c.value));
        ConstraintSet {
            constraints,
            placement: PlacementConstraint::None,
            expr: None,
        }
    }

    /// Builds a set from a compositional expression.
    ///
    /// Pure conjunctions (any nesting of `All`, scalar leaves and vector
    /// demands — no `Any`/`Not`) are normalized to flat sets, so
    /// `from_expr(ConstraintExpr::all(v))` is byte-identical to
    /// [`ConstraintSet::from_constraints`]`(v)` everywhere (digests
    /// included). Genuinely compositional trees are retained and their
    /// [`ConstraintExpr::projection`] becomes the flat view seen by
    /// [`ConstraintSet::iter`].
    pub fn from_expr(expr: ConstraintExpr) -> Self {
        if let Some(flat) = expr.as_conjunction() {
            return Self::from_constraints(flat);
        }
        let mut projection = expr.projection();
        projection.sort_by_key(|c| (c.kind.index(), c.value));
        ConstraintSet {
            constraints: projection,
            placement: PlacementConstraint::None,
            expr: Some(Arc::new(expr)),
        }
    }

    /// The compositional expression, when this set carries one. Flat sets
    /// (including every set built by [`ConstraintSet::from_constraints`])
    /// return `None`.
    pub fn expr(&self) -> Option<&ConstraintExpr> {
        self.expr.as_deref()
    }

    /// Attaches a placement constraint.
    pub fn with_placement(mut self, placement: PlacementConstraint) -> Self {
        self.placement = placement;
        self
    }

    /// The placement constraint, if any.
    pub fn placement(&self) -> PlacementConstraint {
        self.placement
    }

    /// Whether the set is empty (and placement- and expression-free), i.e.
    /// the task is unconstrained.
    pub fn is_unconstrained(&self) -> bool {
        self.constraints.is_empty()
            && self.placement == PlacementConstraint::None
            && self.expr.is_none()
    }

    /// Number of attribute constraints in the set.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether there are zero attribute constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterates over the attribute constraints in deterministic order.
    pub fn iter(&self) -> std::slice::Iter<'_, Constraint> {
        self.constraints.iter()
    }

    /// Whether `machine` satisfies the set: every constraint of a flat set,
    /// or the compositional expression when one is carried.
    pub fn satisfied_by(&self, machine: &AttributeVector) -> bool {
        match &self.expr {
            Some(expr) => expr.eval(machine),
            None => self.constraints.iter().all(|c| c.satisfied_by(machine)),
        }
    }

    /// Whether `machine` satisfies the *hard relaxation* of the set: every
    /// hard constraint of a flat set, or the expression with its soft
    /// literals relaxed (see [`ConstraintExpr::hard_eval`]).
    pub fn hard_satisfied_by(&self, machine: &AttributeVector) -> bool {
        match &self.expr {
            Some(expr) => expr.hard_eval(machine),
            None => self
                .constraints
                .iter()
                .filter(|c| c.class == ConstraintClass::Hard)
                .all(|c| c.satisfied_by(machine)),
        }
    }

    /// The constraints of the set violated by `machine`.
    pub fn violations<'a>(
        &'a self,
        machine: &'a AttributeVector,
    ) -> impl Iterator<Item = &'a Constraint> + 'a {
        self.constraints.iter().filter(|c| !c.satisfied_by(machine))
    }

    /// Returns a copy of the set with one soft constraint removed
    /// (by position among soft constraints), or `None` if there is no soft
    /// constraint to relax.
    ///
    /// Used by Phoenix's admission controller to negotiate resources.
    /// Expression sets return `None`: single-constraint removal is not
    /// meaningful on a tree — admission negotiates those per `Any` branch
    /// instead.
    pub fn relax_soft(&self, soft_index: usize) -> Option<ConstraintSet> {
        if self.expr.is_some() {
            return None;
        }
        let mut seen = 0usize;
        for (i, c) in self.constraints.iter().enumerate() {
            if c.class == ConstraintClass::Soft {
                if seen == soft_index {
                    let mut constraints = self.constraints.clone();
                    constraints.remove(i);
                    return Some(ConstraintSet {
                        constraints,
                        placement: self.placement,
                        expr: None,
                    });
                }
                seen += 1;
            }
        }
        None
    }

    /// Returns a copy of the set with the given soft constraint removed, or
    /// `None` if the exact constraint is not present as a soft constraint
    /// (always `None` for expression sets, as with
    /// [`ConstraintSet::relax_soft`]).
    pub fn relax_constraint(&self, target: &Constraint) -> Option<ConstraintSet> {
        if self.expr.is_some() || target.class != ConstraintClass::Soft {
            return None;
        }
        let i = self.constraints.iter().position(|c| c == target)?;
        let mut constraints = self.constraints.clone();
        constraints.remove(i);
        Some(ConstraintSet {
            constraints,
            placement: self.placement,
            expr: None,
        })
    }

    /// Returns the maximally relaxed set admission control may fall back
    /// to: the hard subset of a flat set, or the expression's
    /// [`ConstraintExpr::hard_relaxation`] (placement preserved).
    pub fn hard_only(&self) -> ConstraintSet {
        if let Some(expr) = &self.expr {
            return Self::from_expr(expr.hard_relaxation()).with_placement(self.placement);
        }
        ConstraintSet {
            constraints: self
                .constraints
                .iter()
                .filter(|c| c.class == ConstraintClass::Hard)
                .copied()
                .collect(),
            placement: self.placement,
            expr: None,
        }
    }

    /// Iterates over only the soft constraints.
    pub fn soft_constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints
            .iter()
            .filter(|c| c.class == ConstraintClass::Soft)
    }

    /// Iterates over only the hard constraints.
    pub fn hard_constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints
            .iter()
            .filter(|c| c.class == ConstraintClass::Hard)
    }

    /// Whether the set contains a constraint of the given kind.
    pub fn contains_kind(&self, kind: ConstraintKind) -> bool {
        self.constraints.iter().any(|c| c.kind == kind)
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        Self::from_constraints(iter.into_iter().collect())
    }
}

impl Extend<Constraint> for ConstraintSet {
    fn extend<T: IntoIterator<Item = Constraint>>(&mut self, iter: T) {
        if let Some(expr) = self.expr.take() {
            // Extending an expression set conjoins the new leaves with the
            // tree (and re-derives the projection) rather than corrupting
            // the flat view.
            let mut children = vec![ConstraintExpr::clone(&expr)];
            children.extend(iter.into_iter().map(ConstraintExpr::Leaf));
            *self = ConstraintSet::from_expr(ConstraintExpr::All(children))
                .with_placement(self.placement);
            return;
        }
        self.constraints.extend(iter);
        self.constraints.sort_by_key(|c| (c.kind.index(), c.value));
    }
}

impl<'a> IntoIterator for &'a ConstraintSet {
    type Item = &'a Constraint;
    type IntoIter = std::slice::Iter<'a, Constraint>;

    fn into_iter(self) -> Self::IntoIter {
        self.constraints.iter()
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unconstrained() {
            return f.write_str("{unconstrained}");
        }
        f.write_str("{")?;
        if let Some(expr) = &self.expr {
            write!(f, "{expr}")?;
            if self.placement != PlacementConstraint::None {
                write!(f, ", placement={}", self.placement)?;
            }
            return f.write_str("}");
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        if self.placement != PlacementConstraint::None {
            if !self.constraints.is_empty() {
                f.write_str(", ")?;
            }
            write!(f, "placement={}", self.placement)?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeVector;

    fn machine() -> AttributeVector {
        AttributeVector::builder()
            .isa(Isa::X86)
            .num_cores(16)
            .num_disks(6)
            .cpu_clock_mhz(2600)
            .kernel_version(318)
            .build()
    }

    #[test]
    fn op_eval_covers_all_operators() {
        assert!(ConstraintOp::Lt.eval(1, 2));
        assert!(!ConstraintOp::Lt.eval(2, 2));
        assert!(ConstraintOp::Gt.eval(3, 2));
        assert!(!ConstraintOp::Gt.eval(2, 2));
        assert!(ConstraintOp::Eq.eval(2, 2));
        assert!(!ConstraintOp::Eq.eval(1, 2));
    }

    #[test]
    fn constraint_matches_machine_attributes() {
        let m = machine();
        assert!(Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 8).satisfied_by(&m));
        assert!(!Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 16).satisfied_by(&m));
        assert!(Constraint::hard(
            ConstraintKind::Architecture,
            ConstraintOp::Eq,
            Isa::X86 as u64
        )
        .satisfied_by(&m));
        assert!(Constraint::soft(ConstraintKind::MaxDisks, ConstraintOp::Lt, 8).satisfied_by(&m));
    }

    #[test]
    fn set_satisfaction_requires_all_constraints() {
        let set = ConstraintSet::from_constraints(vec![
            Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 8),
            Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 3_000),
        ]);
        let m = machine();
        assert!(!set.satisfied_by(&m), "clock constraint fails");
        assert!(set.hard_satisfied_by(&m), "hard subset passes");
    }

    #[test]
    fn relax_soft_removes_exactly_one_soft_constraint() {
        let set = ConstraintSet::from_constraints(vec![
            Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 8),
            Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 3_000),
            Constraint::soft(ConstraintKind::EthernetSpeed, ConstraintOp::Gt, 9_000),
        ]);
        let relaxed = set.relax_soft(0).expect("has soft constraints");
        assert_eq!(relaxed.len(), 2);
        assert_eq!(relaxed.soft_constraints().count(), 1);
        assert_eq!(relaxed.hard_constraints().count(), 1);
        assert!(set.relax_soft(2).is_none(), "only two soft constraints");
    }

    #[test]
    fn relax_constraint_requires_exact_soft_match() {
        let soft = Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 3_000);
        let hard = Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 8);
        let set = ConstraintSet::from_constraints(vec![hard, soft]);
        assert!(set.relax_constraint(&soft).is_some());
        assert!(set.relax_constraint(&hard).is_none(), "hard never relaxed");
        let missing = Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 9_999);
        assert!(set.relax_constraint(&missing).is_none());
    }

    #[test]
    fn hard_only_drops_exactly_the_soft_constraints() {
        let set = ConstraintSet::from_constraints(vec![
            Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 8),
            Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 3_000),
        ])
        .with_placement(PlacementConstraint::Spread);
        let hard = set.hard_only();
        assert_eq!(hard.len(), 1);
        assert_eq!(hard.soft_constraints().count(), 0);
        assert_eq!(hard.placement(), PlacementConstraint::Spread);
    }

    #[test]
    fn set_equality_is_order_insensitive() {
        let a = Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 8);
        let b = Constraint::soft(ConstraintKind::MaxDisks, ConstraintOp::Lt, 8);
        let s1 = ConstraintSet::from_constraints(vec![a, b]);
        let s2 = ConstraintSet::from_constraints(vec![b, a]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn unconstrained_set_matches_everything() {
        let set = ConstraintSet::unconstrained();
        assert!(set.is_unconstrained());
        assert!(set.satisfied_by(&machine()));
    }

    #[test]
    fn placement_is_part_of_unconstrained_check() {
        let set = ConstraintSet::unconstrained().with_placement(PlacementConstraint::Spread);
        assert!(!set.is_unconstrained());
        assert!(set.is_empty(), "no attribute constraints though");
    }

    #[test]
    fn violations_reports_only_failed_constraints() {
        let set = ConstraintSet::from_constraints(vec![
            Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 8),
            Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 3_000),
        ]);
        let m = machine();
        let violated: Vec<_> = set.violations(&m).collect();
        assert_eq!(violated.len(), 1);
        assert_eq!(violated[0].kind, ConstraintKind::CpuClockSpeed);
    }

    #[test]
    fn every_kind_reads_some_machine_attribute() {
        let m = machine();
        for kind in ConstraintKind::ALL {
            // Evaluation must be total: no panic for any kind.
            let _ = Constraint::machine_attribute(kind, &m);
        }
    }

    #[test]
    fn names_round_trip_for_every_kind_op_class_placement() {
        for kind in ConstraintKind::ALL {
            assert_eq!(ConstraintKind::from_name(&kind.to_string()), Some(kind));
        }
        for op in [ConstraintOp::Lt, ConstraintOp::Gt, ConstraintOp::Eq] {
            assert_eq!(ConstraintOp::from_symbol(&op.to_string()), Some(op));
        }
        for class in [ConstraintClass::Hard, ConstraintClass::Soft] {
            assert_eq!(ConstraintClass::from_name(&class.to_string()), Some(class));
        }
        for placement in [
            PlacementConstraint::None,
            PlacementConstraint::Colocate,
            PlacementConstraint::Spread,
        ] {
            assert_eq!(
                PlacementConstraint::from_name(&placement.to_string()),
                Some(placement)
            );
        }
        assert_eq!(ConstraintKind::from_name("bogus"), None);
        assert_eq!(ConstraintOp::from_symbol("!"), None);
    }

    #[test]
    fn kind_index_is_dense_and_stable() {
        for (i, kind) in ConstraintKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn display_formats_mention_class_and_operator() {
        let c = Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 2_800);
        let s = c.to_string();
        assert!(s.contains("soft") && s.contains('>'), "{s}");
        let set = ConstraintSet::from_constraints(vec![c]);
        assert!(set.to_string().contains("cpu_clock"));
        assert_eq!(
            ConstraintSet::unconstrained().to_string(),
            "{unconstrained}"
        );
    }
}
