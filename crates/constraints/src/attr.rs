//! Machine attributes: the supply side of constraint matching.
//!
//! Every worker machine in the simulated datacenter carries an
//! [`AttributeVector`] describing its hardware and system-software
//! configuration. The attribute kinds mirror the constraint kinds observed in
//! the Google cluster trace (Table II of the Phoenix paper).

use std::fmt;

/// Instruction-set architecture of a machine.
///
/// The Google trace is dominated by x86 machines; the explicit discriminants
/// let an ISA be carried inside the scalar constraint value (see
/// [`crate::Constraint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u64)]
pub enum Isa {
    /// x86-64 machines (the overwhelming majority of the trace).
    X86 = 0,
    /// ARM machines.
    Arm = 1,
    /// POWER machines.
    Power = 2,
}

impl Isa {
    /// All ISA variants, in discriminant order.
    pub const ALL: [Isa; 3] = [Isa::X86, Isa::Arm, Isa::Power];

    /// Converts a scalar constraint value back into an ISA.
    ///
    /// Values outside the known range map to `None`.
    pub fn from_u64(value: u64) -> Option<Isa> {
        match value {
            0 => Some(Isa::X86),
            1 => Some(Isa::Arm),
            2 => Some(Isa::Power),
            _ => None,
        }
    }
}

impl fmt::Display for Isa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Isa::X86 => "x86",
            Isa::Arm => "arm",
            Isa::Power => "power",
        };
        f.write_str(name)
    }
}

/// Opaque platform-family identifier (micro-architecture generation).
///
/// The Google trace hashes platform names; we keep them as small integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PlatformFamily(pub u8);

impl fmt::Display for PlatformFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "platform-{}", self.0)
    }
}

/// The full attribute vector of one machine.
///
/// Field semantics follow Table II of the paper. All scalar attributes are
/// totally ordered so that `<`, `>` and `=` constraints are well defined;
/// categorical attributes ([`Isa`], [`PlatformFamily`]) support only `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttributeVector {
    /// Instruction-set architecture.
    pub isa: Isa,
    /// Number of CPU cores.
    pub num_cores: u32,
    /// Installed memory, in gigabytes.
    pub memory_gb: u32,
    /// Number of attached disks (used by both the *maximum disks* and
    /// *minimum disks* constraint kinds).
    pub num_disks: u32,
    /// NIC speed in megabits per second.
    pub ethernet_mbps: u32,
    /// OS kernel version, encoded as an ordered integer (e.g. `318` for
    /// 3.18).
    pub kernel_version: u32,
    /// Platform (micro-architecture) family.
    pub platform: PlatformFamily,
    /// CPU base clock in megahertz.
    pub cpu_clock_mhz: u32,
    /// Rack this machine lives in (used by placement constraints).
    pub rack: u32,
    /// Number of machines in this machine's rack (the *number of nodes*
    /// constraint of Table II asks for gangs of co-resident nodes).
    pub rack_size: u32,
}

impl AttributeVector {
    /// Starts building an attribute vector from the [`Default`]
    /// configuration.
    pub fn builder() -> AttributeVectorBuilder {
        AttributeVectorBuilder::new()
    }
}

impl Default for AttributeVector {
    /// A modest but realistic commodity machine.
    fn default() -> Self {
        AttributeVector {
            isa: Isa::X86,
            num_cores: 8,
            memory_gb: 32,
            num_disks: 4,
            ethernet_mbps: 1_000,
            kernel_version: 310,
            platform: PlatformFamily(0),
            cpu_clock_mhz: 2_200,
            rack: 0,
            rack_size: 40,
        }
    }
}

impl fmt::Display for AttributeVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}c/{}GB/{}d/{}Mbps/k{}/{}/{}MHz/rack{}",
            self.isa,
            self.num_cores,
            self.memory_gb,
            self.num_disks,
            self.ethernet_mbps,
            self.kernel_version,
            self.platform,
            self.cpu_clock_mhz,
            self.rack,
        )
    }
}

/// Builder for [`AttributeVector`].
///
/// All setters are optional; unset fields keep the [`Default`] machine's
/// values.
#[derive(Debug, Clone, Default)]
pub struct AttributeVectorBuilder {
    inner: AttributeVector,
}

impl AttributeVectorBuilder {
    /// Creates a builder seeded with the default machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the instruction-set architecture.
    pub fn isa(mut self, isa: Isa) -> Self {
        self.inner.isa = isa;
        self
    }

    /// Sets the core count.
    pub fn num_cores(mut self, cores: u32) -> Self {
        self.inner.num_cores = cores;
        self
    }

    /// Sets the memory size in gigabytes.
    pub fn memory_gb(mut self, gb: u32) -> Self {
        self.inner.memory_gb = gb;
        self
    }

    /// Sets the disk count.
    pub fn num_disks(mut self, disks: u32) -> Self {
        self.inner.num_disks = disks;
        self
    }

    /// Sets the NIC speed in Mbps.
    pub fn ethernet_mbps(mut self, mbps: u32) -> Self {
        self.inner.ethernet_mbps = mbps;
        self
    }

    /// Sets the kernel version (ordered encoding, e.g. `318` for 3.18).
    pub fn kernel_version(mut self, version: u32) -> Self {
        self.inner.kernel_version = version;
        self
    }

    /// Sets the platform family.
    pub fn platform(mut self, platform: PlatformFamily) -> Self {
        self.inner.platform = platform;
        self
    }

    /// Sets the CPU clock in MHz.
    pub fn cpu_clock_mhz(mut self, mhz: u32) -> Self {
        self.inner.cpu_clock_mhz = mhz;
        self
    }

    /// Sets the rack id.
    pub fn rack(mut self, rack: u32) -> Self {
        self.inner.rack = rack;
        self
    }

    /// Sets the rack size (number of co-resident machines).
    pub fn rack_size(mut self, size: u32) -> Self {
        self.inner.rack_size = size;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> AttributeVector {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_round_trips_through_u64() {
        for isa in Isa::ALL {
            assert_eq!(Isa::from_u64(isa as u64), Some(isa));
        }
        assert_eq!(Isa::from_u64(99), None);
    }

    #[test]
    fn builder_overrides_only_requested_fields() {
        let m = AttributeVector::builder().num_cores(64).build();
        assert_eq!(m.num_cores, 64);
        assert_eq!(m.memory_gb, AttributeVector::default().memory_gb);
    }

    #[test]
    fn display_is_nonempty_and_mentions_isa() {
        let m = AttributeVector::default();
        let s = m.to_string();
        assert!(s.contains("x86"), "display should mention the ISA: {s}");
    }

    #[test]
    fn attribute_vector_equality_is_structural() {
        let a = AttributeVector::builder().rack(3).build();
        let b = AttributeVector::builder().rack(3).build();
        let c = AttributeVector::builder().rack(4).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
