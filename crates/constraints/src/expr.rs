//! Compositional constraint expressions: `All`/`Any`/`Not` trees over leaf
//! [`Constraint`]s plus multi-dimensional [`VectorDemand`] packing leaves.
//!
//! The paper's constraint model is a flat AND of `(kind, op, value)`
//! triples. Real heterogeneous clusters also need *affinity* (`Any` over a
//! family of platforms), *anti-affinity* (`Not` of a platform) and *vector
//! packing* (per-dimension demands that must fit within machine capacity
//! vectors, after Shafiee & Ghaderi). [`ConstraintExpr`] provides the
//! algebra; [`crate::matching::FeasibilityIndex`] compiles it to bitset
//! plans over the posting-list index:
//!
//! * `All`  — word-wise AND of child plans (the existing intersection path),
//! * `Any`  — word-wise OR of child plans,
//! * `Not`  — word-wise AND-NOT against the full-population universe mask
//!   (machine *liveness* is a simulation-time concern handled by the
//!   samplers' `exclude` predicates, never by the index — so a complement
//!   can never resurrect a dead machine),
//! * `Vector` — intersection of one `>=` range per demanded dimension.
//!
//! The naive recursive [`ConstraintExpr::eval`] is the reference semantics;
//! the compiled plans are property-tested against it by the `expr_oracle`
//! suite.

use std::fmt;

use crate::attr::AttributeVector;
use crate::constraint::{Constraint, ConstraintClass, ConstraintKind, ConstraintOp};

/// A multi-dimensional resource demand (vector packing leaf).
///
/// Each field is a minimum capacity the machine must provide; a zero
/// dimension is unconstrained. Satisfaction is per-dimension `capacity >=
/// demand`, i.e. the demand vector must fit component-wise within the
/// machine's capacity vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VectorDemand {
    /// Minimum CPU core count (0 = don't care).
    pub cores: u64,
    /// Minimum installed memory in GB (0 = don't care).
    pub memory_gb: u64,
    /// Minimum attached disk count (0 = don't care).
    pub disks: u64,
    /// Minimum CPU base clock in MHz (0 = don't care).
    pub clock_mhz: u64,
    /// Minimum NIC speed in Mbps (0 = don't care).
    pub ethernet_mbps: u64,
}

impl VectorDemand {
    /// The constraint kind backing each demand dimension, in field order.
    const DIMS: [ConstraintKind; 5] = [
        ConstraintKind::NumCores,
        ConstraintKind::Memory,
        ConstraintKind::MinDisks,
        ConstraintKind::CpuClockSpeed,
        ConstraintKind::EthernetSpeed,
    ];

    /// The demand along each dimension, in [`Self::DIMS`] order.
    fn components(&self) -> [u64; 5] {
        [
            self.cores,
            self.memory_gb,
            self.disks,
            self.clock_mhz,
            self.ethernet_mbps,
        ]
    }

    /// Whether the demand vector fits within `machine`'s capacity vector
    /// (component-wise `capacity >= demand`; zero dimensions always fit).
    pub fn satisfied_by(&self, machine: &AttributeVector) -> bool {
        Self::DIMS
            .iter()
            .zip(self.components())
            .all(|(&kind, demand)| {
                demand == 0 || Constraint::machine_attribute(kind, machine) >= demand
            })
    }

    /// Lowers the demand to equivalent hard scalar constraints: one
    /// `kind > demand - 1` per nonzero dimension (`>=` expressed with the
    /// index's strict `Gt`). The conjunction of the result is exactly
    /// [`Self::satisfied_by`].
    pub fn to_constraints(&self) -> Vec<Constraint> {
        Self::DIMS
            .iter()
            .zip(self.components())
            .filter(|&(_, demand)| demand > 0)
            .map(|(&kind, demand)| Constraint::hard(kind, ConstraintOp::Gt, demand - 1))
            .collect()
    }

    /// Whether every dimension is zero (the demand fits anywhere).
    pub fn is_empty(&self) -> bool {
        self.components().iter().all(|&d| d == 0)
    }
}

impl fmt::Display for VectorDemand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 5] = ["cores", "mem", "disks", "clock", "net"];
        f.write_str("vec{")?;
        let mut first = true;
        for (name, demand) in NAMES.iter().zip(self.components()) {
            if demand == 0 {
                continue;
            }
            if !first {
                f.write_str(";")?;
            }
            write!(f, "{name}={demand}")?;
            first = false;
        }
        f.write_str("}")
    }
}

/// A compositional constraint expression.
///
/// Semantics (over one machine's attribute vector):
/// `All([])` is `true`, `Any([])` is `false`, and the combinators follow
/// ordinary boolean logic. Hard/soft classes live on the leaves; see
/// [`ConstraintExpr::hard_relaxation`] for how relaxation generalizes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConstraintExpr {
    /// A single scalar attribute constraint.
    Leaf(Constraint),
    /// A multi-dimensional packing demand (always hard).
    Vector(VectorDemand),
    /// Conjunction of children (`All([])` = true).
    All(Vec<ConstraintExpr>),
    /// Disjunction of children (`Any([])` = false).
    Any(Vec<ConstraintExpr>),
    /// Negation of the child.
    Not(Box<ConstraintExpr>),
}

impl ConstraintExpr {
    /// Wraps one scalar constraint as an expression.
    pub fn leaf(constraint: Constraint) -> Self {
        ConstraintExpr::Leaf(constraint)
    }

    /// Wraps a vector packing demand as an expression.
    pub fn vector(demand: VectorDemand) -> Self {
        ConstraintExpr::Vector(demand)
    }

    /// The degenerate-`All` tree over a flat constraint vector — the
    /// expression equivalent of [`crate::ConstraintSet::from_constraints`].
    pub fn all(constraints: Vec<Constraint>) -> Self {
        ConstraintExpr::All(constraints.into_iter().map(ConstraintExpr::Leaf).collect())
    }

    /// Conjunction of sub-expressions.
    pub fn all_of(children: Vec<ConstraintExpr>) -> Self {
        ConstraintExpr::All(children)
    }

    /// Disjunction of sub-expressions.
    pub fn any_of(children: Vec<ConstraintExpr>) -> Self {
        ConstraintExpr::Any(children)
    }

    /// Negation of an expression.
    ///
    /// An associated constructor taking the child by value (symmetric with
    /// [`ConstraintExpr::all_of`] / [`ConstraintExpr::any_of`]), not an
    /// `ops::Not` impl — `!expr` reading as boolean negation of a tree
    /// value would be misleading.
    #[allow(clippy::should_implement_trait)]
    pub fn not(child: ConstraintExpr) -> Self {
        ConstraintExpr::Not(Box::new(child))
    }

    /// Naive recursive evaluation against one machine — the reference
    /// semantics every compiled plan must agree with.
    pub fn eval(&self, machine: &AttributeVector) -> bool {
        match self {
            ConstraintExpr::Leaf(c) => c.satisfied_by(machine),
            ConstraintExpr::Vector(v) => v.satisfied_by(machine),
            ConstraintExpr::All(children) => children.iter().all(|c| c.eval(machine)),
            ConstraintExpr::Any(children) => children.iter().any(|c| c.eval(machine)),
            ConstraintExpr::Not(child) => !child.eval(machine),
        }
    }

    /// Whether `machine` satisfies the *hard relaxation* of the expression
    /// (see [`Self::hard_relaxation`]); the expression analogue of
    /// [`crate::ConstraintSet::hard_satisfied_by`].
    pub fn hard_eval(&self, machine: &AttributeVector) -> bool {
        fn go(expr: &ConstraintExpr, machine: &AttributeVector, negated: bool) -> bool {
            match expr {
                // A soft literal — under either polarity — may be relaxed,
                // so it never blocks satisfaction.
                ConstraintExpr::Leaf(c) if c.class == ConstraintClass::Soft => true,
                ConstraintExpr::Leaf(c) => c.satisfied_by(machine) != negated,
                ConstraintExpr::Vector(v) => v.satisfied_by(machine) != negated,
                ConstraintExpr::All(children) if !negated => {
                    children.iter().all(|c| go(c, machine, false))
                }
                ConstraintExpr::All(children) => children.iter().any(|c| go(c, machine, true)),
                ConstraintExpr::Any(children) if !negated => {
                    children.iter().any(|c| go(c, machine, false))
                }
                ConstraintExpr::Any(children) => children.iter().all(|c| go(c, machine, true)),
                ConstraintExpr::Not(child) => go(child, machine, !negated),
            }
        }
        go(self, machine, false)
    }

    /// The expression with every soft literal replaced by `true` — computed
    /// in negation normal form, where the formula is monotone in its
    /// literals, so the replacement soundly *weakens* it: any machine
    /// satisfying the original satisfies the relaxation. This is the
    /// expression analogue of [`crate::ConstraintSet::hard_only`], the
    /// maximally relaxed form admission control may fall back to.
    ///
    /// The result is in NNF (negations pushed to hard leaves).
    pub fn hard_relaxation(&self) -> ConstraintExpr {
        fn go(expr: &ConstraintExpr, negated: bool) -> ConstraintExpr {
            match expr {
                ConstraintExpr::Leaf(c) if c.class == ConstraintClass::Soft => {
                    ConstraintExpr::All(Vec::new())
                }
                ConstraintExpr::Leaf(c) if negated => {
                    ConstraintExpr::Not(Box::new(ConstraintExpr::Leaf(*c)))
                }
                ConstraintExpr::Leaf(c) => ConstraintExpr::Leaf(*c),
                ConstraintExpr::Vector(v) if negated => {
                    ConstraintExpr::Not(Box::new(ConstraintExpr::Vector(*v)))
                }
                ConstraintExpr::Vector(v) => ConstraintExpr::Vector(*v),
                ConstraintExpr::All(children) => {
                    let children = children.iter().map(|c| go(c, negated)).collect();
                    if negated {
                        ConstraintExpr::Any(children)
                    } else {
                        ConstraintExpr::All(children)
                    }
                }
                ConstraintExpr::Any(children) => {
                    let children = children.iter().map(|c| go(c, negated)).collect();
                    if negated {
                        ConstraintExpr::All(children)
                    } else {
                        ConstraintExpr::Any(children)
                    }
                }
                ConstraintExpr::Not(child) => go(child, !negated),
            }
        }
        go(self, false)
    }

    /// The distinct kinds of soft leaves anywhere in the tree, in
    /// first-occurrence order. These are the kinds whose relaxation cost
    /// (Table II relative slowdown) applies if the hard relaxation is used.
    pub fn soft_leaf_kinds(&self) -> Vec<ConstraintKind> {
        let mut kinds = Vec::new();
        self.visit_leaves(&mut |c| {
            if c.class == ConstraintClass::Soft && !kinds.contains(&c.kind) {
                kinds.push(c.kind);
            }
        });
        kinds
    }

    /// Number of soft leaves in the tree (with multiplicity).
    pub fn count_soft_leaves(&self) -> usize {
        let mut n = 0usize;
        self.visit_leaves(&mut |c| {
            if c.class == ConstraintClass::Soft {
                n += 1;
            }
        });
        n
    }

    fn visit_leaves(&self, f: &mut impl FnMut(&Constraint)) {
        match self {
            ConstraintExpr::Leaf(c) => f(c),
            ConstraintExpr::Vector(_) => {}
            ConstraintExpr::All(children) | ConstraintExpr::Any(children) => {
                for c in children {
                    c.visit_leaves(f);
                }
            }
            ConstraintExpr::Not(child) => child.visit_leaves(f),
        }
    }

    /// Conservative projection of the expression's demand onto flat
    /// constraints, for CRV ledger accounting:
    ///
    /// * a leaf projects to itself, a [`VectorDemand`] to its lowered
    ///   scalar constraints,
    /// * `All` projects to the union of its children's projections,
    /// * `Any` projects to its **minimum-demand branch** (fewest projected
    ///   constraints, first on ties) — the job is guaranteed to consume at
    ///   least that much, whichever branch is taken,
    /// * `Not` projects to nothing (a complement demands no kind's supply).
    pub fn projection(&self) -> Vec<Constraint> {
        match self {
            ConstraintExpr::Leaf(c) => vec![*c],
            ConstraintExpr::Vector(v) => v.to_constraints(),
            ConstraintExpr::All(children) => children.iter().flat_map(|c| c.projection()).collect(),
            ConstraintExpr::Any(children) => children
                .iter()
                .map(|c| c.projection())
                .min_by_key(|p| p.len())
                .unwrap_or_default(),
            ConstraintExpr::Not(_) => Vec::new(),
        }
    }

    /// Tree depth: leaves are depth 1, combinators add one level.
    pub fn depth(&self) -> usize {
        match self {
            ConstraintExpr::Leaf(_) | ConstraintExpr::Vector(_) => 1,
            ConstraintExpr::All(children) | ConstraintExpr::Any(children) => {
                1 + children
                    .iter()
                    .map(ConstraintExpr::depth)
                    .max()
                    .unwrap_or(0)
            }
            ConstraintExpr::Not(child) => 1 + child.depth(),
        }
    }

    /// Number of leaves (scalar or vector) in the tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            ConstraintExpr::Leaf(_) | ConstraintExpr::Vector(_) => 1,
            ConstraintExpr::All(children) | ConstraintExpr::Any(children) => {
                children.iter().map(ConstraintExpr::leaf_count).sum()
            }
            ConstraintExpr::Not(child) => child.leaf_count(),
        }
    }

    /// If the expression is a pure conjunction of leaves (no `Any`/`Not`
    /// anywhere), returns the flat constraint list it is equivalent to.
    /// This is what lets [`crate::ConstraintSet::from_expr`] normalize
    /// degenerate-`All` trees to flat sets, keeping their digests identical
    /// to [`crate::ConstraintSet::from_constraints`].
    pub fn as_conjunction(&self) -> Option<Vec<Constraint>> {
        match self {
            ConstraintExpr::Leaf(c) => Some(vec![*c]),
            ConstraintExpr::Vector(v) => Some(v.to_constraints()),
            ConstraintExpr::All(children) => {
                let mut flat = Vec::new();
                for child in children {
                    flat.extend(child.as_conjunction()?);
                }
                Some(flat)
            }
            ConstraintExpr::Any(_) | ConstraintExpr::Not(_) => None,
        }
    }

    /// Parses the compact form produced by [`fmt::Display`]:
    /// `class:kind:op:value` leaves, `vec{dim=n;...}` demands and
    /// `all(...)` / `any(...)` / `not(...)` combinators with `,`-separated
    /// children. The grammar is whitespace-free so expressions embed in the
    /// space-delimited trace text format.
    pub fn parse(text: &str) -> Option<ConstraintExpr> {
        let mut parser = Parser { rest: text };
        let expr = parser.expr()?;
        parser.rest.is_empty().then_some(expr)
    }
}

/// Recursive-descent parser over the compact expression syntax.
struct Parser<'a> {
    rest: &'a str,
}

impl Parser<'_> {
    fn eat(&mut self, prefix: &str) -> bool {
        match self.rest.strip_prefix(prefix) {
            Some(rest) => {
                self.rest = rest;
                true
            }
            None => false,
        }
    }

    fn expr(&mut self) -> Option<ConstraintExpr> {
        if self.eat("all(") {
            return self.children().map(ConstraintExpr::All);
        }
        if self.eat("any(") {
            return self.children().map(ConstraintExpr::Any);
        }
        if self.eat("not(") {
            let child = self.expr()?;
            self.eat(")").then(|| ConstraintExpr::not(child))
        } else if self.eat("vec{") {
            self.vector()
        } else {
            self.scalar_leaf()
        }
    }

    /// Parses `,`-separated children up to the closing `)` (possibly zero).
    fn children(&mut self) -> Option<Vec<ConstraintExpr>> {
        let mut children = Vec::new();
        if self.eat(")") {
            return Some(children);
        }
        loop {
            children.push(self.expr()?);
            if self.eat(")") {
                return Some(children);
            }
            if !self.eat(",") {
                return None;
            }
        }
    }

    fn vector(&mut self) -> Option<ConstraintExpr> {
        let mut demand = VectorDemand::default();
        if self.eat("}") {
            return Some(ConstraintExpr::Vector(demand));
        }
        loop {
            let end = self.rest.find(['=', '}', ',', ')'])?;
            let name = &self.rest[..end];
            self.rest = &self.rest[end..];
            if !self.eat("=") {
                return None;
            }
            let digits = self.rest.len()
                - self
                    .rest
                    .trim_start_matches(|c: char| c.is_ascii_digit())
                    .len();
            let value: u64 = self.rest[..digits].parse().ok()?;
            self.rest = &self.rest[digits..];
            match name {
                "cores" => demand.cores = value,
                "mem" => demand.memory_gb = value,
                "disks" => demand.disks = value,
                "clock" => demand.clock_mhz = value,
                "net" => demand.ethernet_mbps = value,
                _ => return None,
            }
            if self.eat("}") {
                return Some(ConstraintExpr::Vector(demand));
            }
            if !self.eat(";") {
                return None;
            }
        }
    }

    /// Parses a `class:kind:op:value` scalar leaf, stopping at the first
    /// delimiter (`,` or `)`).
    fn scalar_leaf(&mut self) -> Option<ConstraintExpr> {
        let end = self.rest.find([',', ')']).unwrap_or(self.rest.len());
        let token = &self.rest[..end];
        self.rest = &self.rest[end..];
        let mut parts = token.split(':');
        let class = ConstraintClass::from_name(parts.next()?)?;
        let kind = ConstraintKind::from_name(parts.next()?)?;
        let op = ConstraintOp::from_symbol(parts.next()?)?;
        let value: u64 = parts.next()?.parse().ok()?;
        parts
            .next()
            .is_none()
            .then(|| ConstraintExpr::Leaf(Constraint::new(kind, op, value, class)))
    }
}

impl fmt::Display for ConstraintExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintExpr::Leaf(c) => write!(f, "{}:{}:{}:{}", c.class, c.kind, c.op, c.value),
            ConstraintExpr::Vector(v) => write!(f, "{v}"),
            ConstraintExpr::All(children) | ConstraintExpr::Any(children) => {
                f.write_str(if matches!(self, ConstraintExpr::All(_)) {
                    "all("
                } else {
                    "any("
                })?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{c}")?;
                }
                f.write_str(")")
            }
            ConstraintExpr::Not(child) => write!(f, "not({child})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Isa;

    fn machine() -> AttributeVector {
        AttributeVector::builder()
            .isa(Isa::X86)
            .num_cores(16)
            .memory_gb(64)
            .num_disks(4)
            .cpu_clock_mhz(2600)
            .ethernet_mbps(10_000)
            .build()
    }

    fn cores_gt(v: u64) -> Constraint {
        Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, v)
    }

    #[test]
    fn boolean_semantics_hold() {
        let m = machine();
        let t = ConstraintExpr::leaf(cores_gt(8));
        let f_ = ConstraintExpr::leaf(cores_gt(100));
        assert!(t.eval(&m) && !f_.eval(&m));
        assert!(ConstraintExpr::All(vec![]).eval(&m), "empty All = true");
        assert!(!ConstraintExpr::Any(vec![]).eval(&m), "empty Any = false");
        assert!(ConstraintExpr::any_of(vec![f_.clone(), t.clone()]).eval(&m));
        assert!(!ConstraintExpr::all_of(vec![f_.clone(), t.clone()]).eval(&m));
        assert!(ConstraintExpr::not(f_).eval(&m));
        assert!(!ConstraintExpr::not(t).eval(&m));
    }

    #[test]
    fn vector_demand_fits_componentwise() {
        let m = machine();
        let fits = VectorDemand {
            cores: 16,
            memory_gb: 64,
            disks: 4,
            ..Default::default()
        };
        assert!(fits.satisfied_by(&m), ">= is inclusive");
        let too_big = VectorDemand {
            cores: 17,
            ..Default::default()
        };
        assert!(!too_big.satisfied_by(&m));
        assert!(
            VectorDemand::default().satisfied_by(&m),
            "empty demand fits"
        );
        assert!(VectorDemand::default().is_empty());
    }

    #[test]
    fn vector_lowering_matches_direct_evaluation() {
        let demand = VectorDemand {
            cores: 8,
            memory_gb: 32,
            clock_mhz: 2_500,
            ..Default::default()
        };
        let lowered = demand.to_constraints();
        assert_eq!(lowered.len(), 3, "zero dims are dropped");
        for cores in [7u32, 8, 9] {
            for clock in [2_499u32, 2_500, 2_501] {
                let m = AttributeVector::builder()
                    .num_cores(cores)
                    .memory_gb(32)
                    .cpu_clock_mhz(clock)
                    .build();
                assert_eq!(
                    lowered.iter().all(|c| c.satisfied_by(&m)),
                    demand.satisfied_by(&m),
                    "cores={cores} clock={clock}"
                );
            }
        }
    }

    #[test]
    fn hard_relaxation_drops_soft_literals_under_both_polarities() {
        let soft = Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 9_999);
        let hard = cores_gt(8);
        let m = machine();
        let expr =
            ConstraintExpr::all_of(vec![ConstraintExpr::leaf(hard), ConstraintExpr::leaf(soft)]);
        assert!(!expr.eval(&m), "soft clock bound fails as written");
        assert!(expr.hard_eval(&m), "hard relaxation passes");
        assert!(expr.hard_relaxation().eval(&m));

        // A negated soft literal is equally relaxable.
        let negated = ConstraintExpr::not(ConstraintExpr::leaf(Constraint::soft(
            ConstraintKind::CpuClockSpeed,
            ConstraintOp::Gt,
            1,
        )));
        assert!(!negated.eval(&m));
        assert!(negated.hard_eval(&m));
        // A negated *hard* literal is not.
        let negated_hard = ConstraintExpr::not(ConstraintExpr::leaf(cores_gt(8)));
        assert!(!negated_hard.hard_eval(&m));
        assert!(!negated_hard.hard_relaxation().eval(&m));
    }

    #[test]
    fn hard_relaxation_is_weaker_on_every_machine() {
        // Monotonicity spot-check over a structured expression.
        let expr = ConstraintExpr::any_of(vec![
            ConstraintExpr::all_of(vec![
                ConstraintExpr::leaf(cores_gt(8)),
                ConstraintExpr::leaf(Constraint::soft(
                    ConstraintKind::EthernetSpeed,
                    ConstraintOp::Gt,
                    40_000,
                )),
            ]),
            ConstraintExpr::not(ConstraintExpr::leaf(Constraint::hard(
                ConstraintKind::Architecture,
                ConstraintOp::Eq,
                Isa::X86 as u64,
            ))),
        ]);
        let relaxed = expr.hard_relaxation();
        for cores in [4u32, 16] {
            for isa in [Isa::X86, Isa::Arm] {
                let m = AttributeVector::builder().num_cores(cores).isa(isa).build();
                assert!(
                    !expr.eval(&m) || relaxed.eval(&m),
                    "relaxation must be implied: cores={cores} isa={isa:?}"
                );
                assert_eq!(relaxed.eval(&m), expr.hard_eval(&m));
            }
        }
    }

    #[test]
    fn projection_takes_min_demand_any_branch() {
        let heavy = ConstraintExpr::all_of(vec![
            ConstraintExpr::leaf(cores_gt(8)),
            ConstraintExpr::leaf(Constraint::hard(
                ConstraintKind::Memory,
                ConstraintOp::Gt,
                31,
            )),
        ]);
        let light = ConstraintExpr::leaf(Constraint::hard(
            ConstraintKind::PlatformFamily,
            ConstraintOp::Eq,
            2,
        ));
        let expr = ConstraintExpr::any_of(vec![heavy, light.clone()]);
        let proj = expr.projection();
        assert_eq!(proj.len(), 1);
        assert_eq!(proj[0].kind, ConstraintKind::PlatformFamily);
        // Not projects to nothing; All unions.
        let combined = ConstraintExpr::all_of(vec![
            expr,
            ConstraintExpr::not(light),
            ConstraintExpr::vector(VectorDemand {
                disks: 2,
                ..Default::default()
            }),
        ]);
        let proj = combined.projection();
        assert_eq!(proj.len(), 2, "min-branch + vector dim, Not dropped");
    }

    #[test]
    fn depth_and_leaf_count() {
        let leaf = ConstraintExpr::leaf(cores_gt(1));
        assert_eq!(leaf.depth(), 1);
        let tree = ConstraintExpr::all_of(vec![
            ConstraintExpr::any_of(vec![leaf.clone(), leaf.clone()]),
            ConstraintExpr::not(leaf.clone()),
        ]);
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.leaf_count(), 3);
        assert_eq!(ConstraintExpr::All(vec![]).depth(), 1);
    }

    #[test]
    fn as_conjunction_flattens_pure_and_trees_only() {
        let a = cores_gt(4);
        let b = Constraint::soft(ConstraintKind::MaxDisks, ConstraintOp::Lt, 8);
        let nested = ConstraintExpr::all_of(vec![
            ConstraintExpr::leaf(a),
            ConstraintExpr::all_of(vec![ConstraintExpr::leaf(b)]),
        ]);
        assert_eq!(nested.as_conjunction(), Some(vec![a, b]));
        assert_eq!(
            ConstraintExpr::vector(VectorDemand {
                cores: 8,
                ..Default::default()
            })
            .as_conjunction()
            .map(|v| v.len()),
            Some(1)
        );
        assert!(ConstraintExpr::any_of(vec![ConstraintExpr::leaf(a)])
            .as_conjunction()
            .is_none());
        assert!(ConstraintExpr::not(ConstraintExpr::leaf(a))
            .as_conjunction()
            .is_none());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let exprs = [
            ConstraintExpr::leaf(cores_gt(8)),
            ConstraintExpr::leaf(Constraint::soft(
                ConstraintKind::CpuClockSpeed,
                ConstraintOp::Lt,
                3_000,
            )),
            ConstraintExpr::vector(VectorDemand {
                cores: 8,
                memory_gb: 32,
                ethernet_mbps: 1_000,
                ..Default::default()
            }),
            ConstraintExpr::All(vec![]),
            ConstraintExpr::Any(vec![]),
            ConstraintExpr::all_of(vec![
                ConstraintExpr::any_of(vec![
                    ConstraintExpr::leaf(Constraint::hard(
                        ConstraintKind::PlatformFamily,
                        ConstraintOp::Eq,
                        1,
                    )),
                    ConstraintExpr::leaf(Constraint::hard(
                        ConstraintKind::PlatformFamily,
                        ConstraintOp::Eq,
                        2,
                    )),
                ]),
                ConstraintExpr::not(ConstraintExpr::leaf(Constraint::hard(
                    ConstraintKind::Architecture,
                    ConstraintOp::Eq,
                    Isa::Arm as u64,
                ))),
                ConstraintExpr::vector(VectorDemand {
                    disks: 2,
                    ..Default::default()
                }),
            ]),
        ];
        for expr in exprs {
            let text = expr.to_string();
            assert!(
                !text.contains(' '),
                "must embed in the trace format: {text}"
            );
            assert_eq!(ConstraintExpr::parse(&text), Some(expr), "{text}");
        }
        assert_eq!(ConstraintExpr::parse("bogus"), None);
        assert_eq!(ConstraintExpr::parse("all(hard:arch:=:0"), None, "unclosed");
        assert_eq!(ConstraintExpr::parse("all()trailing"), None);
    }
}
