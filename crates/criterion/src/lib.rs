//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal wall-clock benchmark harness exposing the API subset the
//! `phoenix-bench` benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::throughput`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it reports, per benchmark,
//! the minimum / mean / maximum sample time (and derived throughput when
//! one was declared) on stdout. Good enough to compare hot paths by
//! orders of magnitude, which is what the repo's acceptance criteria ask
//! for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (an implicit single-entry group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f` and prints a one-line report.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        // One untimed warm-up sample.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        let label = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.name, name)
        };
        let mut line = format!(
            "{label:<50} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
        );
        if let Some(t) = self.throughput {
            let per_sec = |count: u64| {
                if mean.is_zero() {
                    f64::INFINITY
                } else {
                    count as f64 / mean.as_secs_f64()
                }
            };
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  thrpt: {:.0} B/s", per_sec(n)));
                }
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (upstream parity; prints nothing extra).
    pub fn finish(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once, accumulating its wall-clock time into this sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        drop(out);
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..1_000u64).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(unit_group, sample_bench);

    #[test]
    fn harness_runs_and_times() {
        unit_group();
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
