//! The engine's debug conservation audit: a policy that desyncs the cached
//! `queued_bound_work_us` aggregate through `Worker::queue_mut` is caught
//! before the next dispatch.

use phoenix_constraints::{FeasibilityIndex, MachinePopulation, PopulationProfile};
use phoenix_sim::{Scheduler, SimConfig, SimCtx, Simulation, WorkerId};
use phoenix_traces::{Job, JobId, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn one_short_job_trace() -> Trace {
    Trace::new(
        "t",
        vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![1.0],
            estimated_task_duration_s: 1.0,
            constraints: Default::default(),
            short: true,
            user: 0,
        }],
    )
}

fn simulation(scheduler: Box<dyn Scheduler>) -> Simulation {
    let mut rng = StdRng::seed_from_u64(3);
    let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 4, &mut rng);
    Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &one_short_job_trace(),
        scheduler,
        3,
    )
}

/// Sends one speculative probe, then rewrites its bound duration in place —
/// exactly the desync `Worker::queue_mut` makes possible.
#[derive(Debug)]
struct DesyncingScheduler;

impl Scheduler for DesyncingScheduler {
    fn name(&self) -> &str {
        "desyncing"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let probe = ctx.new_probe(job);
        ctx.send_probe(WorkerId(0), probe);
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        // Illegally turn the queued speculative probe into a "bound" one
        // without going through enqueue/remove: the cached aggregate no
        // longer matches the queue.
        if let Some(p) = ctx.worker_mut(worker).queue_mut().first_mut() {
            p.bound_duration_us = Some(123_456);
        }
    }
}

/// A policy that only *reorders* through `queue_mut` stays within the
/// contract and must not trip the audit.
#[derive(Debug)]
struct ReorderingScheduler;

impl Scheduler for ReorderingScheduler {
    fn name(&self) -> &str {
        "reordering"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let bound = ctx.job_mut(job).take_task();
        let probe = ctx.new_bound_probe(job, bound);
        ctx.send_probe(WorkerId(0), probe);
        let probe = ctx.new_probe(job);
        ctx.send_probe(WorkerId(0), probe);
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        let w = ctx.worker_mut(worker);
        if w.queue_len() >= 2 {
            w.queue_mut().reverse();
            w.promote_to_front(w.queue_len() - 1);
        }
    }
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "queued_bound_work_us desynced")]
fn engine_audit_catches_bound_work_desync() {
    simulation(Box::new(DesyncingScheduler)).run();
}

#[test]
fn reordering_through_queue_mut_passes_the_audit() {
    let result = simulation(Box::new(ReorderingScheduler)).run();
    assert_eq!(result.incomplete_jobs, 0);
}
