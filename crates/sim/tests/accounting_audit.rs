//! The engine's debug conservation audit: a policy that desyncs the cached
//! `queued_bound_work_us` aggregate through `Worker::queue_mut` is caught
//! before the next dispatch.

use phoenix_constraints::{FeasibilityIndex, MachinePopulation, PopulationProfile};
use phoenix_sim::{Scheduler, SimConfig, SimCtx, SimDuration, Simulation, WorkerId};
use phoenix_traces::{Job, JobId, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn one_short_job_trace() -> Trace {
    Trace::new(
        "t",
        vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![1.0],
            estimated_task_duration_s: 1.0,
            constraints: Default::default(),
            short: true,
            user: 0,
        }],
    )
}

fn simulation(scheduler: Box<dyn Scheduler>) -> Simulation {
    let mut rng = StdRng::seed_from_u64(3);
    let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 4, &mut rng);
    Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &one_short_job_trace(),
        scheduler,
        3,
    )
}

/// Sends one speculative probe, then rewrites its bound duration in place —
/// exactly the desync `Worker::queue_mut` makes possible.
#[derive(Debug)]
struct DesyncingScheduler;

impl Scheduler for DesyncingScheduler {
    fn name(&self) -> &str {
        "desyncing"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let probe = ctx.new_probe(job);
        ctx.send_probe(WorkerId(0), probe);
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        // Illegally turn the queued speculative probe into a "bound" one
        // without going through enqueue/remove: the cached aggregate no
        // longer matches the queue.
        if let Some(p) = ctx.worker_mut(worker).queue_mut().first_mut() {
            p.bound_duration_us = Some(123_456);
        }
    }
}

/// A policy that only *reorders* through `queue_mut` stays within the
/// contract and must not trip the audit.
#[derive(Debug)]
struct ReorderingScheduler;

impl Scheduler for ReorderingScheduler {
    fn name(&self) -> &str {
        "reordering"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let bound = ctx.job_mut(job).take_task();
        let probe = ctx.new_bound_probe(job, bound);
        ctx.send_probe(WorkerId(0), probe);
        let probe = ctx.new_probe(job);
        ctx.send_probe(WorkerId(0), probe);
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        let w = ctx.worker_mut(worker);
        if w.queue_len() >= 2 {
            w.queue_mut().reverse();
            w.promote_to_front(w.queue_len() - 1);
        }
    }
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "queued_bound_work_us desynced")]
fn engine_audit_catches_bound_work_desync() {
    simulation(Box::new(DesyncingScheduler)).run();
}

#[test]
fn reordering_through_queue_mut_passes_the_audit() {
    let result = simulation(Box::new(ReorderingScheduler)).run();
    assert_eq!(result.incomplete_jobs, 0);
}

fn three_task_job_trace() -> Trace {
    Trace::new(
        "t",
        vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![1.0; 3],
            estimated_task_duration_s: 1.0,
            constraints: Default::default(),
            short: true,
            user: 0,
        }],
    )
}

/// Binds two probes to worker 0 and one to worker 1, then crashes worker 0
/// once both of its probes have arrived and re-binds the casualties onto
/// worker 1. The crash drains worker 0's queue through the ledger-aware
/// `steal_probes_if` path — if that path double-counted
/// `queued_bound_work_us`, the engine's debug audit (and the explicit
/// recomputation below) would catch the desync.
#[derive(Debug)]
struct CrashingScheduler {
    w0_enqueues: usize,
}

impl Scheduler for CrashingScheduler {
    fn name(&self) -> &str {
        "crashing"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        for target in [WorkerId(0), WorkerId(0), WorkerId(1)] {
            let bound = ctx.job_mut(job).take_task();
            let probe = ctx.new_bound_probe(job, bound);
            ctx.send_probe(target, probe);
        }
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        if worker != WorkerId(0) {
            return;
        }
        self.w0_enqueues += 1;
        if self.w0_enqueues < 2 {
            return;
        }
        // Both probes reached worker 0 (one may already be running).
        let (killed, dropped) = ctx.state_mut().crash_worker(WorkerId(0));
        assert_eq!(killed.len() + dropped.len(), 2, "both tasks are casualties");
        let w0 = ctx.worker(WorkerId(0));
        assert_eq!(w0.queue_len(), 0, "crash must drain the queue");
        assert_eq!(
            w0.queued_bound_work_us(),
            0,
            "drained queue must zero the bound-work aggregate, not double-drop it"
        );
        // Fail the casualties over to worker 1, re-bound.
        for task in killed {
            let probe = ctx.new_bound_probe(task.job, task.raw_duration_us);
            ctx.send_probe(WorkerId(1), probe);
        }
        for probe in dropped {
            ctx.send_probe(WorkerId(1), probe);
        }
        // Worker 1's aggregate must stay exact through all of the above.
        let w1 = ctx.worker(WorkerId(1));
        let recomputed: u64 = w1.queue().iter().filter_map(|p| p.bound_duration_us).sum();
        assert_eq!(w1.queued_bound_work_us(), recomputed);
    }
}

#[test]
fn crash_drain_keeps_bound_work_aggregate_exact() {
    let mut rng = StdRng::seed_from_u64(3);
    let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 4, &mut rng);
    let result = Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &three_task_job_trace(),
        Box::new(CrashingScheduler { w0_enqueues: 0 }),
        3,
    )
    .run();
    assert_eq!(result.incomplete_jobs, 0, "failed-over tasks must complete");
    assert_eq!(result.lost_tasks, 0);
    assert_eq!(result.counters.tasks_completed, 3);
}

/// Crashes worker 0 while idle, recovers it, and reuses it for a bound
/// placement: the recovered worker's accounting must be indistinguishable
/// from a fresh one.
#[derive(Debug)]
struct RecycleScheduler;

impl Scheduler for RecycleScheduler {
    fn name(&self) -> &str {
        "recycle"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let (killed, dropped) = ctx.state_mut().crash_worker(WorkerId(0));
        assert!(killed.is_empty() && dropped.is_empty(), "worker was idle");
        ctx.state_mut().recover_worker(WorkerId(0));
        let bound = ctx.job_mut(job).take_task();
        let probe = ctx.new_bound_probe(job, bound);
        ctx.send_probe(WorkerId(0), probe);
    }
}

/// Late-binds one task to worker 0, then crashes the worker *inside the
/// task-fetch RTT window*: the probe was dispatched (it holds a slot and
/// its full duration was credited to the busy-time metric), but the task
/// payload is still in flight and execution has not started. The crash
/// must refund exactly the never-executed portion — busy time can never
/// underflow — and the killed task must carry its raw duration so it can
/// be re-bound elsewhere and complete.
#[derive(Debug)]
struct CrashInRttScheduler {
    struck: bool,
}

impl Scheduler for CrashInRttScheduler {
    fn name(&self) -> &str {
        "crash-in-rtt"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        // Unbound (late-binding) probe: dispatch will pay the fetch RTT.
        let probe = ctx.new_probe(job);
        ctx.send_probe(WorkerId(0), probe);
    }

    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        // Dispatch happens right after this hook returns; the fetched task
        // starts only one RTT later. Strike 100 µs into that window. (The
        // re-bound probe lands on worker 1 later — only strike once.)
        if worker == WorkerId(0) && !self.struck {
            self.struck = true;
            ctx.schedule_wakeup(SimDuration::from_micros(100), 0);
        }
    }

    fn on_wakeup(&mut self, _token: u64, ctx: &mut SimCtx<'_>) {
        let now = ctx.now();
        let rtt = ctx.state().config.rtt();
        let (killed, dropped) = ctx.state_mut().crash_worker(WorkerId(0));
        assert!(dropped.is_empty(), "the probe was already dispatched");
        assert_eq!(killed.len(), 1, "the fetching task is a casualty");
        let task = &killed[0];
        let start = SimDuration(task.finish_at.as_micros() - task.duration_us);
        assert!(
            start.as_micros() > now.as_micros(),
            "crash must land before execution starts (start {start:?}, now {now:?})"
        );
        assert!(
            start.as_micros() - now.as_micros() < rtt.as_micros(),
            "crash must land inside the RTT window"
        );
        // The refund leaves exactly the slot-held time before the crash —
        // dispatch-to-crash — never a wrapped-around huge value.
        let residue = ctx.worker(WorkerId(0)).busy_us();
        assert_eq!(
            residue, 100,
            "only the 100 µs of slot time before the crash remains"
        );
        // Re-bind the casualty onto worker 1 so the job still completes.
        let probe = ctx.new_bound_probe(task.job, task.raw_duration_us);
        ctx.send_probe(WorkerId(1), probe);
    }
}

#[test]
fn crash_inside_rtt_window_refunds_unstarted_task_time() {
    let mut rng = StdRng::seed_from_u64(3);
    let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 4, &mut rng);
    let result = Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &one_short_job_trace(),
        Box::new(CrashInRttScheduler { struck: false }),
        3,
    )
    .run();
    assert_eq!(result.incomplete_jobs, 0, "re-bound task must complete");
    assert_eq!(result.lost_tasks, 0);
    assert_eq!(result.counters.tasks_completed, 1);
    // Busy-time ledger, reconstructed by hand: the crashed worker keeps the
    // 100 µs its slot was held (dispatch at t=250 µs, crash at t=350 µs);
    // worker 1 then runs the re-bound 1 s task in full. Any refund bug —
    // double-refund, missed refund, or u64 underflow — breaks this exactly.
    assert_eq!(
        result.metrics.busy_us,
        100 + 1_000_000,
        "busy time = pre-crash slot residue + full re-run"
    );
}

#[test]
fn recovered_worker_passes_the_audit_on_reuse() {
    let result = simulation(Box::new(RecycleScheduler)).run();
    assert_eq!(result.incomplete_jobs, 0);
    assert_eq!(result.lost_tasks, 0);
    assert_eq!(result.counters.bound_placements, 1);
}

/// Sends the job's single probe to worker 0 and records the task duration
/// the engine reports back at finish; retries fall back to the default
/// re-placement.
#[derive(Debug)]
struct OneProbeScheduler {
    reported: std::rc::Rc<std::cell::Cell<Option<u64>>>,
}

impl Scheduler for OneProbeScheduler {
    fn name(&self) -> &str {
        "one-probe"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let probe = ctx.new_probe(job);
        ctx.send_probe(WorkerId(0), probe);
    }

    fn on_task_finish(
        &mut self,
        _worker: WorkerId,
        _job: JobId,
        duration_us: u64,
        _ctx: &mut SimCtx<'_>,
    ) {
        self.reported.set(Some(duration_us));
    }
}

/// Trace durations are clamped to ≥1 µs at load, but clock scaling can
/// still shrink a 1 µs task to a *zero* integer duration on a machine
/// faster than the reference clock — while the engine schedules its finish
/// 1 µs out. The dispatch path must store that same clamped duration in
/// the running task: an unclamped zero desyncs every consumer of
/// `RunningTask::duration_us` (the `on_task_finish` callback feeding wait
/// estimators, crash-refund arithmetic) from the interval the slot is
/// actually held. Run under the heavy fault profile so the retry/crash
/// machinery is armed around the dispatch.
#[test]
fn rounds_to_zero_task_stores_clamped_duration() {
    let trace = Trace::new(
        "t",
        vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![1e-6],
            estimated_task_duration_s: 1.0,
            constraints: Default::default(),
            short: true,
            user: 0,
        }],
    );
    // 4× the reference clock: 1 µs scales to 0.25 µs, rounding to zero.
    let machine = phoenix_constraints::AttributeVector::builder()
        .cpu_clock_mhz(8_800)
        .build();
    let config = SimConfig {
        faults: phoenix_sim::FaultPlan::heavy(),
        scale_duration_by_clock: true,
        ..SimConfig::default()
    };
    let rtt_us = config.rtt().as_micros();
    let reported = std::rc::Rc::new(std::cell::Cell::new(None));
    let result = Simulation::new(
        config,
        FeasibilityIndex::new(vec![machine]),
        &trace,
        Box::new(OneProbeScheduler {
            reported: reported.clone(),
        }),
        3,
    )
    .run();
    assert_eq!(result.counters.tasks_completed, 1);
    assert_eq!(result.incomplete_jobs, 0);
    assert_eq!(
        reported.get(),
        Some(1),
        "finish must report the clamped 1 µs the slot actually ran, not the raw 0"
    );
    // Slot-held time: one fetch RTT (late-bound payload) plus the clamped
    // 1 µs of execution.
    assert_eq!(result.metrics.busy_us, rtt_us + 1);
}
