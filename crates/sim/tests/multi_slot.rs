//! Tests for the multi-slot worker extension (default remains the paper's
//! one-slot-per-worker model).

use phoenix_constraints::{AttributeVector, ConstraintSet, FeasibilityIndex};
use phoenix_sim::{RandomScheduler, SimConfig, Simulation};
use phoenix_traces::{Job, JobId, Trace};

fn trace_with_tasks(n: usize, dur: f64) -> Trace {
    Trace::new(
        "t",
        vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![dur; n],
            estimated_task_duration_s: dur,
            constraints: ConstraintSet::unconstrained(),
            short: true,
            user: 0,
        }],
    )
}

fn makespan_with_slots(tasks: usize, slots: usize) -> f64 {
    let config = SimConfig {
        slots_per_worker: slots,
        ..SimConfig::default()
    };
    let result = Simulation::new(
        config,
        FeasibilityIndex::new(vec![AttributeVector::default()]),
        &trace_with_tasks(tasks, 10.0),
        Box::new(RandomScheduler::new(1)),
        1,
    )
    .run();
    assert_eq!(result.incomplete_jobs, 0);
    assert_eq!(result.counters.tasks_completed as usize, tasks);
    result.metrics.makespan.as_secs_f64()
}

#[test]
fn slots_parallelize_on_one_machine() {
    let serial = makespan_with_slots(4, 1);
    let dual = makespan_with_slots(4, 2);
    let quad = makespan_with_slots(4, 4);
    assert!((serial - 40.0).abs() < 0.1, "serial {serial}");
    assert!((dual - 20.0).abs() < 0.1, "dual {dual}");
    assert!((quad - 10.0).abs() < 0.1, "quad {quad}");
}

#[test]
fn extra_slots_do_not_lose_or_duplicate_tasks() {
    let config = SimConfig {
        slots_per_worker: 3,
        ..SimConfig::default()
    };
    let result = Simulation::new(
        config,
        FeasibilityIndex::new(vec![AttributeVector::default(); 2]),
        &trace_with_tasks(17, 3.0),
        Box::new(RandomScheduler::new(2)),
        1,
    )
    .run();
    assert_eq!(result.counters.tasks_completed, 17);
    assert_eq!(
        result.counters.probes_sent,
        result.counters.tasks_completed + result.counters.redundant_probes
    );
}
