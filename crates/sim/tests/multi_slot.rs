//! Tests for the multi-slot worker extension (default remains the paper's
//! one-slot-per-worker model).

use phoenix_constraints::{AttributeVector, ConstraintSet, FeasibilityIndex};
use phoenix_sim::{RandomScheduler, SimConfig, Simulation};
use phoenix_traces::{Job, JobId, Trace};

fn trace_with_tasks(n: usize, dur: f64) -> Trace {
    Trace::new(
        "t",
        vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![dur; n],
            estimated_task_duration_s: dur,
            constraints: ConstraintSet::unconstrained(),
            short: true,
            user: 0,
        }],
    )
}

fn makespan_with_slots(tasks: usize, slots: usize) -> f64 {
    let config = SimConfig {
        slots_per_worker: slots,
        ..SimConfig::default()
    };
    let result = Simulation::new(
        config,
        FeasibilityIndex::new(vec![AttributeVector::default()]),
        &trace_with_tasks(tasks, 10.0),
        Box::new(RandomScheduler::new(1)),
        1,
    )
    .run();
    assert_eq!(result.incomplete_jobs, 0);
    assert_eq!(result.counters.tasks_completed as usize, tasks);
    result.metrics.makespan.as_secs_f64()
}

#[test]
fn slots_parallelize_on_one_machine() {
    let serial = makespan_with_slots(4, 1);
    let dual = makespan_with_slots(4, 2);
    let quad = makespan_with_slots(4, 4);
    assert!((serial - 40.0).abs() < 0.1, "serial {serial}");
    assert!((dual - 20.0).abs() < 0.1, "dual {dual}");
    assert!((quad - 10.0).abs() < 0.1, "quad {quad}");
}

/// Utilization must normalize by slot capacity, not machine count: a
/// 4-slot machine kept fully busy is at 100%, not 400%, and a contended
/// multi-slot, multi-machine run must never report more than 100%.
#[test]
fn utilization_is_normalized_by_slot_capacity() {
    // One machine, 4 slots, 4 equal tasks: perfectly packed — utilization
    // is ~1.0 (shy of exact only by the probe's network delay, which
    // stretches the makespan but not the busy time) and never above it.
    let config = SimConfig {
        slots_per_worker: 4,
        ..SimConfig::default()
    };
    let result = Simulation::new(
        config,
        FeasibilityIndex::new(vec![AttributeVector::default()]),
        &trace_with_tasks(4, 10.0),
        Box::new(RandomScheduler::new(1)),
        1,
    )
    .run();
    assert_eq!(result.incomplete_jobs, 0);
    let util = result.utilization();
    assert!(
        util > 0.999 && util <= 1.0,
        "4 tasks saturating 4 slots is ~100% utilization, got {util}"
    );

    // Two machines x 3 slots, uneven task count: busy but not perfectly
    // packed — strictly between 0 and 1.
    let config = SimConfig {
        slots_per_worker: 3,
        ..SimConfig::default()
    };
    let result = Simulation::new(
        config,
        FeasibilityIndex::new(vec![AttributeVector::default(); 2]),
        &trace_with_tasks(17, 3.0),
        Box::new(RandomScheduler::new(2)),
        1,
    )
    .run();
    assert_eq!(result.incomplete_jobs, 0);
    let util = result.utilization();
    assert!(
        util > 0.0 && util <= 1.0,
        "multi-slot utilization must land in (0, 1], got {util}"
    );
}

#[test]
fn extra_slots_do_not_lose_or_duplicate_tasks() {
    let config = SimConfig {
        slots_per_worker: 3,
        ..SimConfig::default()
    };
    let result = Simulation::new(
        config,
        FeasibilityIndex::new(vec![AttributeVector::default(); 2]),
        &trace_with_tasks(17, 3.0),
        Box::new(RandomScheduler::new(2)),
        1,
    )
    .run();
    assert_eq!(result.counters.tasks_completed, 17);
    assert_eq!(
        result.counters.probes_sent,
        result.counters.tasks_completed + result.counters.redundant_probes
    );
}
