//! Property tests on worker-queue mechanics: any sequence of enqueues,
//! promotions, removals and steals preserves the probe multiset and the
//! bound-work accounting.

use proptest::prelude::*;

use phoenix_sim::{Probe, ProbeId, SimTime, Worker};
use phoenix_traces::JobId;

#[derive(Debug, Clone)]
enum Op {
    Enqueue { id: u64, bound: Option<u64> },
    EnqueueFront { id: u64, bound: Option<u64> },
    Promote { from: usize, to: usize },
    Remove { index: usize },
    StealBound,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1_000, prop::option::of(1u64..500))
            .prop_map(|(id, bound)| Op::Enqueue { id, bound }),
        (0u64..1_000, prop::option::of(1u64..500))
            .prop_map(|(id, bound)| Op::EnqueueFront { id, bound }),
        (0usize..32, 0usize..32).prop_map(|(from, to)| Op::Promote { from, to }),
        (0usize..32).prop_map(|index| Op::Remove { index }),
        Just(Op::StealBound),
    ]
}

fn probe(id: u64, bound: Option<u64>) -> Probe {
    Probe {
        id: ProbeId(id),
        job: JobId(0),
        bound_duration_us: bound,
        est_duration_us: 1,
        slowdown: 1.0,
        enqueued_at: SimTime::ZERO,
        bypass_count: 0,
        migrations: 0,
        retries: 0,
    }
}

proptest! {
    #[test]
    fn queue_surgery_preserves_multiset_and_bound_work(ops in prop::collection::vec(arb_op(), 0..64)) {
        let mut worker = Worker::new();
        // Shadow model: plain vector of (id, bound).
        let mut shadow: Vec<(u64, Option<u64>)> = Vec::new();
        for op in ops {
            match op {
                Op::Enqueue { id, bound } => {
                    worker.enqueue(probe(id, bound));
                    shadow.push((id, bound));
                }
                Op::EnqueueFront { id, bound } => {
                    worker.enqueue_front(probe(id, bound));
                    shadow.insert(0, (id, bound));
                }
                Op::Promote { from, to } => {
                    if from < worker.queue_len() && to <= from {
                        worker.promote(from, to);
                        let moved = shadow.remove(from);
                        shadow.insert(to, moved);
                    }
                }
                Op::Remove { index } => {
                    if index < worker.queue_len() {
                        let removed = worker.remove_probe(index);
                        let expected = shadow.remove(index);
                        prop_assert_eq!(removed.id.0, expected.0);
                    }
                }
                Op::StealBound => {
                    let stolen = worker.steal_if(|p| p.is_bound());
                    let expected: Vec<_> =
                        shadow.iter().filter(|(_, b)| b.is_some()).cloned().collect();
                    shadow.retain(|(_, b)| b.is_none());
                    prop_assert_eq!(stolen.len(), expected.len());
                }
            }
            // Invariants after every op.
            prop_assert_eq!(worker.queue_len(), shadow.len());
            let bound_work: u64 = shadow.iter().filter_map(|(_, b)| *b).sum();
            prop_assert_eq!(worker.queued_bound_work_us(), bound_work);
            let ids: Vec<u64> = worker.queue().iter().map(|p| p.id.0).collect();
            let expected_ids: Vec<u64> = shadow.iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(ids, expected_ids, "order must match the model");
        }
    }
}
