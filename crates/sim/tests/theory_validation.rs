//! Validates the discrete-event engine against closed-form queueing
//! theory: a single worker fed Poisson arrivals must reproduce the M/M/1
//! and M/D/1 mean waiting times (the same Pollaczek–Khinchine formula
//! Phoenix's estimator uses — Equation 1 of the paper).

use phoenix_constraints::{AttributeVector, ConstraintSet, FeasibilityIndex};
use phoenix_metrics::{md1_mean_wait, mm1_mean_wait};
use phoenix_sim::{RandomScheduler, SimConfig, Simulation};
use phoenix_traces::{Exponential, Job, JobId, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a single-queue workload: Poisson arrivals at `lambda`, one task
/// per job with durations from `service`.
fn single_queue_trace(
    lambda: f64,
    n: usize,
    mut service: impl FnMut(&mut StdRng) -> f64,
    seed: u64,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let gaps = Exponential::new(lambda);
    let mut t = 0.0;
    let jobs = (0..n)
        .map(|i| {
            t += gaps.sample(&mut rng);
            let d = service(&mut rng);
            Job {
                id: JobId(i as u32),
                arrival_s: t,
                task_durations_s: vec![d],
                estimated_task_duration_s: d,
                constraints: ConstraintSet::unconstrained(),
                short: true,
                user: 0,
            }
        })
        .collect();
    Trace::new("single-queue", jobs)
}

/// Mean task wait when the trace runs on exactly one worker with FIFO
/// service (RandomScheduler with probe ratio 1 has no choice to make).
fn simulate_mean_wait(trace: &Trace) -> f64 {
    let cluster = vec![AttributeVector::default()];
    let result = Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster),
        trace,
        Box::new(RandomScheduler::new(1)),
        1,
    )
    .run();
    assert_eq!(result.incomplete_jobs, 0);
    result.metrics.task_waits.mean()
}

#[test]
fn engine_matches_mm1_theory() {
    // ρ = 0.7: E[W] = 0.7/0.3 · 1 = 2.333… seconds.
    let lambda = 0.7;
    let mean_service = 1.0;
    let service = Exponential::new(1.0 / mean_service);
    let trace = single_queue_trace(lambda, 200_000, |rng| service.sample(rng), 42);
    let measured = simulate_mean_wait(&trace);
    let theory = mm1_mean_wait(lambda, mean_service);
    let err = (measured - theory).abs() / theory;
    assert!(
        err < 0.08,
        "M/M/1: measured {measured:.3}s vs theory {theory:.3}s (err {err:.3})"
    );
}

#[test]
fn engine_matches_md1_theory() {
    // Deterministic service: E[W] is exactly half the M/M/1 value.
    let lambda = 0.7;
    let service = 1.0;
    let trace = single_queue_trace(lambda, 200_000, |_| service, 43);
    let measured = simulate_mean_wait(&trace);
    let theory = md1_mean_wait(lambda, service);
    let err = (measured - theory).abs() / theory;
    assert!(
        err < 0.08,
        "M/D/1: measured {measured:.3}s vs theory {theory:.3}s (err {err:.3})"
    );
}

#[test]
fn engine_wait_ordering_follows_load() {
    // Sanity across loads: measured waits are monotone in ρ and bracketed
    // by the closed forms' ordering (M/D/1 < M/G/1 hyperexponential).
    let mut last = 0.0;
    for &lambda in &[0.3, 0.5, 0.8] {
        let service = Exponential::new(1.0);
        let trace = single_queue_trace(lambda, 100_000, |rng| service.sample(rng), 44);
        let measured = simulate_mean_wait(&trace);
        assert!(
            measured > last,
            "wait must grow with load: {measured} after {last}"
        );
        last = measured;
    }
}
