//! Property test: the calendar event queue pops in exactly the order the
//! old `BinaryHeap` future-event list did — `(time, seq)` ascending, FIFO
//! among same-time events — under arbitrary interleavings of schedules and
//! pops, including same-timestamp bursts, events many windows in the
//! future, and (unlike the engine) non-monotone schedule times.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use phoenix_sim::{Event, EventQueue, SimTime};

#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event at (roughly) the given time; the marker payload
    /// lets the oracle check *which* event came out, not just when.
    Schedule(u64),
    Pop,
}

/// Times mix four scales so runs exercise intra-bucket ties, intra-window
/// ordering, window advances, and the far heap: the calendar bucket is
/// 2^16 us wide and the window 2^28 us.
fn arb_time() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,        // dense ties in one bucket
        0u64..(1 << 17), // a couple of buckets
        0u64..(1 << 29), // crosses the window boundary
        0u64..(1 << 33), // tens of windows out
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_time().prop_map(Op::Schedule),
        arb_time().prop_map(Op::Schedule),
        arb_time().prop_map(Op::Schedule),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

proptest! {
    #[test]
    fn calendar_queue_matches_binary_heap_oracle(ops in prop::collection::vec(arb_op(), 0..200)) {
        let mut queue = EventQueue::new();
        // Oracle: min-heap on (time, seq) with the marker payload, exactly
        // the ordering contract the old implementation provided.
        let mut oracle: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut marker = 0u32;
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    queue.schedule(SimTime(t), Event::JobArrival(marker));
                    oracle.push(Reverse((t, seq, marker)));
                    seq += 1;
                    marker += 1;
                }
                Op::Pop => {
                    let got = queue.pop();
                    let want = oracle.pop();
                    match (got, want) {
                        (None, None) => {}
                        (Some((t, Event::JobArrival(m))), Some(Reverse((wt, _, wm)))) => {
                            prop_assert_eq!(t.0, wt, "pop time diverged from heap oracle");
                            prop_assert_eq!(m, wm, "same-time FIFO tie-break diverged");
                        }
                        (got, want) => prop_assert!(false, "mismatch: {got:?} vs {want:?}"),
                    }
                }
            }
            prop_assert_eq!(queue.len(), oracle.len());
            prop_assert_eq!(queue.is_empty(), oracle.is_empty());
        }
        // Drain the remainder: full order must agree.
        while let Some(Reverse((wt, _, wm))) = oracle.pop() {
            let (t, e) = queue.pop().expect("queue drained before oracle");
            prop_assert_eq!(t.0, wt);
            match e {
                Event::JobArrival(m) => prop_assert_eq!(m, wm),
                other => prop_assert!(false, "unexpected event {other:?}"),
            }
        }
        prop_assert!(queue.pop().is_none());
    }
}
