//! Tests of the scheduler-facing SimCtx API through a fixture scheduler.

use phoenix_constraints::{AttributeVector, ConstraintSet, FeasibilityIndex};
use phoenix_sim::{Scheduler, SimConfig, SimCtx, SimDuration, Simulation, WorkerId};
use phoenix_traces::{Job, JobId, Trace};

fn trace(n: u32) -> Trace {
    Trace::new(
        "t",
        (0..n)
            .map(|i| Job {
                id: JobId(i),
                arrival_s: f64::from(i),
                task_durations_s: vec![1.0],
                estimated_task_duration_s: 1.0,
                constraints: ConstraintSet::unconstrained(),
                short: true,
                user: 0,
            })
            .collect(),
    )
}

fn cluster(n: usize) -> FeasibilityIndex {
    FeasibilityIndex::new(vec![AttributeVector::default(); n])
}

/// Exercises probe recall, local requeue, wakeups and counters.
#[derive(Debug, Default)]
struct ApiFixture {
    recalled: u32,
    wakeups: u32,
}

impl Scheduler for ApiFixture {
    fn name(&self) -> &str {
        "api-fixture"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        assert_eq!(ctx.num_workers(), 4);
        assert!(ctx.config().rtt() > SimDuration::ZERO);
        // Send the probe to worker 0, then schedule a wakeup that recalls
        // it and re-sends it to worker 1 (exercising remove_probe_by_id +
        // transfer_probe).
        let probe = ctx.new_probe(job);
        let probe_id = probe.id;
        ctx.send_probe(WorkerId(0), probe);
        // Encode the probe id in the token (ids are small here).
        ctx.schedule_wakeup(SimDuration::from_millis(1), probe_id.0);
    }

    fn select_probe(&mut self, worker: WorkerId, state: &phoenix_sim::SimState) -> Option<usize> {
        // Worker 0 never serves: probes must be recalled to worker 1.
        if worker == WorkerId(0) {
            None
        } else if state.workers[worker.index()].queue_len() > 0 {
            Some(0)
        } else {
            None
        }
    }

    fn on_wakeup(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        self.wakeups += 1;
        if let Some(mut probe) = ctx.remove_probe_by_id(WorkerId(0), phoenix_sim::ProbeId(token)) {
            probe.migrations += 1;
            self.recalled += 1;
            ctx.transfer_probe(WorkerId(1), probe);
            ctx.touch(WorkerId(0));
        }
    }
}

#[test]
fn probes_can_be_recalled_and_transferred() {
    let result = Simulation::new(
        SimConfig::default(),
        cluster(4),
        &trace(10),
        Box::new(ApiFixture::default()),
        1,
    )
    .run();
    assert_eq!(result.counters.jobs_completed, 10);
    assert_eq!(result.incomplete_jobs, 0);
    // All tasks ran on worker 1 (worker 0 refuses to serve).
    assert_eq!(result.counters.tasks_completed, 10);
}

/// A scheduler that relies on ctx.rng() determinism.
#[derive(Debug)]
struct RngFixture {
    draws: Vec<u64>,
}

impl Scheduler for RngFixture {
    fn name(&self) -> &str {
        "rng-fixture"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        use rand::Rng;
        let n = ctx.num_workers();
        let pick = ctx.rng().random_range(0..n) as u64;
        self.draws.push(pick);
        let probe = ctx.new_probe(job);
        ctx.send_probe(WorkerId(pick as u32), probe);
    }
}

#[test]
fn ctx_rng_is_seed_deterministic() {
    // All jobs arrive together so random placement shapes the queue waits.
    let burst = Trace::new(
        "burst",
        (0..30)
            .map(|i| Job {
                id: JobId(i),
                arrival_s: 0.0,
                task_durations_s: vec![5.0],
                estimated_task_duration_s: 5.0,
                constraints: ConstraintSet::unconstrained(),
                short: true,
                user: 0,
            })
            .collect(),
    );
    let run = |seed| {
        let r = Simulation::new(
            SimConfig::default(),
            cluster(8),
            &burst,
            Box::new(RngFixture { draws: Vec::new() }),
            seed,
        )
        .run();
        let per_job: Vec<Option<f64>> = r.job_outcomes.iter().map(|o| o.response_s).collect();
        (r.counters, per_job)
    };
    assert_eq!(run(5), run(5), "same seed, same everything");
    let (_, jobs_a) = run(5);
    let (_, jobs_b) = run(6);
    // Different seeds place jobs on different workers, so *which* job eats
    // each queue position differs (the wait multiset may coincide).
    assert_ne!(jobs_a, jobs_b, "different seeds must place differently");
}
