//! Tests for the opt-in machine-speed execution model.

use phoenix_constraints::{AttributeVector, ConstraintSet, FeasibilityIndex};
use phoenix_sim::{RandomScheduler, SimConfig, Simulation};
use phoenix_traces::{Job, JobId, Trace};

fn one_job_trace() -> Trace {
    Trace::new(
        "t",
        vec![Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![100.0],
            estimated_task_duration_s: 100.0,
            constraints: ConstraintSet::unconstrained(),
            short: true,
            user: 0,
        }],
    )
}

fn run_on_clock(mhz: u32, scale: bool) -> f64 {
    let machine = AttributeVector::builder().cpu_clock_mhz(mhz).build();
    let config = SimConfig {
        scale_duration_by_clock: scale,
        ..SimConfig::default()
    };
    let result = Simulation::new(
        config,
        FeasibilityIndex::new(vec![machine]),
        &one_job_trace(),
        Box::new(RandomScheduler::new(1)),
        1,
    )
    .run();
    result.metrics.makespan.as_secs_f64()
}

#[test]
fn faster_clock_finishes_sooner_when_enabled() {
    let slow = run_on_clock(1_100, true); // half the reference clock
    let reference = run_on_clock(2_200, true);
    let fast = run_on_clock(4_400, true); // double
    assert!((reference - 100.0).abs() < 0.1, "reference {reference}");
    assert!((slow - 200.0).abs() < 0.5, "slow {slow}");
    assert!((fast - 50.0).abs() < 0.5, "fast {fast}");
}

#[test]
fn scaling_disabled_ignores_clock() {
    let slow = run_on_clock(1_100, false);
    let fast = run_on_clock(4_400, false);
    assert!((slow - fast).abs() < 1e-6);
    assert!((slow - 100.0).abs() < 0.1);
}
