//! Simulation metrics: everything the paper's tables and figures need.

use std::fmt;

use phoenix_metrics::{
    ClassifiedLatencies, ConstraintStatus, Distribution, JobClass, LatencyKey, TimeSeries,
};

use crate::audit::AuditReport;
use crate::jobstate::JobState;
use crate::profile::ProfileReport;
use crate::time::{SimDuration, SimTime};

/// Monotone counters, some engine-maintained and some scheduler-maintained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Speculative probes sent to workers.
    pub probes_sent: u64,
    /// Speculative probes discarded because their job had no pending task.
    pub redundant_probes: u64,
    /// Early-bound task placements.
    pub bound_placements: u64,
    /// Tasks completed.
    pub tasks_completed: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Jobs failed by admission control (unsatisfiable hard constraints).
    pub jobs_failed: u64,
    /// Tasks launched with at least one relaxed soft constraint.
    pub relaxed_tasks: u64,
    /// Tasks promoted by heartbeat CRV-based reordering (Algorithm 1's
    /// `Reorder_Task` count — the paper's Table III statistic).
    pub crv_reordered_tasks: u64,
    /// Queue moves performed by the CRV insertion discipline during
    /// contention windows (continuous counterpart of the heartbeat pass).
    pub crv_insertions: u64,
    /// Queue promotions performed by SRPT reordering.
    pub srpt_reordered_tasks: u64,
    /// Probes moved by work stealing.
    pub stolen_probes: u64,
    /// Constrained probes migrated by Phoenix's dynamic rescheduling.
    pub migrated_probes: u64,
    /// Sticky-batch-probing continuations (local probes a worker enqueues
    /// for the job it just served; not network probes).
    pub sbp_continuations: u64,
    /// Promotions suppressed by the starvation (slack) bound.
    pub starvation_suppressions: u64,
    /// Fault injection: worker crash strikes delivered.
    pub worker_crashes: u64,
    /// Fault injection: crashed workers that came back up.
    pub worker_recoveries: u64,
    /// Fault injection: running tasks killed by crashes.
    pub tasks_killed: u64,
    /// Fault injection: probes lost in flight or addressed to dead workers.
    pub probes_lost: u64,
    /// Fault injection: probe re-placements performed after loss/kill.
    pub probe_retries: u64,
    /// Fault injection: probe deliveries that paid an extra delay.
    pub probes_delayed: u64,
    /// Fault injection: task launches undone by a crash and returned to
    /// their job's pending pool.
    pub requeued_tasks: u64,
}

/// Metrics accumulated during a run.
#[derive(Debug, Clone)]
pub struct SimMetrics {
    /// Job response times (arrival → last task completion), seconds.
    pub job_response: ClassifiedLatencies,
    /// Per-job mean task queuing times, seconds.
    pub job_queuing: ClassifiedLatencies,
    /// Per-task queue waits, seconds (optional, heavy).
    pub task_waits: Distribution,
    /// Queuing delay over time for constrained jobs (Fig. 3).
    pub constrained_wait_series: TimeSeries,
    /// Queuing delay over time for unconstrained jobs (Fig. 3).
    pub unconstrained_wait_series: TimeSeries,
    /// Counters.
    pub counters: Counters,
    /// Completion time of the last task.
    pub makespan: SimTime,
    /// Sum of busy slot time across workers, microseconds.
    pub busy_us: u64,
    /// Whether [`SimMetrics::record_task_wait`] feeds the heavy per-task
    /// `task_waits` distribution (the Fig.-3 time series are always fed).
    pub record_task_waits: bool,
}

impl SimMetrics {
    /// Creates empty metrics with the given time-series bucket width.
    /// `record_task_waits` gates only the per-task `task_waits`
    /// distribution, never the Fig.-3 time series.
    pub fn new(bucket: SimDuration, record_task_waits: bool) -> Self {
        let width = bucket.as_secs_f64().max(1e-6);
        SimMetrics {
            job_response: ClassifiedLatencies::new(),
            job_queuing: ClassifiedLatencies::new(),
            task_waits: Distribution::new(),
            constrained_wait_series: TimeSeries::new(width),
            unconstrained_wait_series: TimeSeries::new(width),
            counters: Counters::default(),
            makespan: SimTime::ZERO,
            busy_us: 0,
            record_task_waits,
        }
    }

    /// The (class, status) key for a job.
    pub fn key_for(job: &JobState) -> LatencyKey {
        LatencyKey::new(
            if job.short {
                JobClass::Short
            } else {
                JobClass::Long
            },
            if job.is_constrained() {
                ConstraintStatus::Constrained
            } else {
                ConstraintStatus::Unconstrained
            },
        )
    }

    /// Records a completed job's response and queuing metrics.
    pub fn record_job_completion(&mut self, job: &JobState) {
        let key = Self::key_for(job);
        if let Some(resp) = job.response_time() {
            self.job_response.record(key, resp.as_secs_f64());
        }
        if let Some(wait) = job.mean_wait() {
            self.job_queuing.record(key, wait.as_secs_f64());
        }
        self.counters.jobs_completed += 1;
    }

    /// Records one task launch's queue wait at simulated time `now`.
    ///
    /// The constrained/unconstrained time series (Fig. 3) are always fed;
    /// the heavy per-task `task_waits` distribution only when
    /// `record_task_waits` was set. This is the single wait-recording path
    /// — the engine's `try_dispatch` calls it rather than inlining a copy
    /// that can drift.
    pub fn record_task_wait(&mut self, job: &JobState, wait: SimDuration, now: SimTime) {
        let w = wait.as_secs_f64();
        if job.is_constrained() {
            self.constrained_wait_series.record(now.as_secs_f64(), w);
        } else {
            self.unconstrained_wait_series.record(now.as_secs_f64(), w);
        }
        if self.record_task_waits {
            self.task_waits.record(w);
        }
    }
}

/// Per-job outcome retained in the result for offline analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// Job id within the trace.
    pub job: phoenix_traces::JobId,
    /// Short/long classification.
    pub short: bool,
    /// Submitting user/tenant.
    pub user: u32,
    /// Whether the job's original set carried constraints.
    pub constrained: bool,
    /// Response time, seconds (`None` for failed jobs).
    pub response_s: Option<f64>,
    /// Mean task queue wait, seconds.
    pub mean_wait_s: Option<f64>,
    /// Ideal zero-wait response time (the longest task), seconds.
    pub ideal_s: f64,
    /// Whether admission control failed the job.
    pub failed: bool,
}

impl JobOutcome {
    /// Job slowdown: response over the ideal zero-wait response
    /// (`None` until complete). Always ≥ 1 up to rounding.
    pub fn slowdown(&self) -> Option<f64> {
        self.response_s.map(|r| r / self.ideal_s.max(1e-9))
    }
}

/// The outcome of a finished simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheduler name that produced this run.
    pub scheduler: String,
    /// Number of workers simulated.
    pub workers: usize,
    /// Execution slots per worker (≥ 1); utilization normalizes by
    /// `workers × slots`, not workers alone.
    pub slots_per_worker: usize,
    /// All metrics.
    pub metrics: SimMetrics,
    /// Counters (duplicated out of `metrics` for convenience).
    pub counters: Counters,
    /// Jobs that never completed (should be 0 for a well-formed run unless
    /// admission control failed them).
    pub incomplete_jobs: usize,
    /// Tasks of non-failed jobs that never completed — the liveness
    /// headline: must be 0 even under fault injection (every lost or
    /// killed task is retried until it lands).
    pub lost_tasks: u64,
    /// Per-job outcomes, in trace order.
    pub job_outcomes: Vec<JobOutcome>,
    /// Total per-worker crash downtime, microseconds, clamped to the
    /// makespan. Pure capacity accounting derived from the fault schedule
    /// (not a new outcome), so it is excluded from `digest()` — the fault
    /// counters already pin the crash schedule.
    pub downtime_us: u64,
    /// Federation gossip/sampling statistics (`None` unless
    /// [`crate::FederationConfig::is_active`]). Observability only,
    /// excluded from `digest()`.
    pub federation: Option<crate::federation::FederationStats>,
    /// Hot-path wall-clock profile (`None` unless profiling was enabled).
    /// Wall-clock varies run to run, so this is excluded from `digest()`.
    pub profile: Option<ProfileReport>,
    /// Invariant-audit outcome (`None` unless
    /// [`crate::Simulation::enable_audit`] was called). Auditing observes
    /// without participating, so this is excluded from `digest()` — an
    /// audited run must digest identically to an unaudited one.
    pub audit: Option<AuditReport>,
}

impl SimResult {
    /// Cluster utilization: busy slot time over *available* slot time
    /// until the makespan. `busy_us` accumulates across every execution
    /// slot, so the base capacity is `makespan × workers × slots` —
    /// dividing by workers alone reads > 100% on any loaded multi-slot
    /// run. Crashed-worker downtime (`downtime_us`, already clamped to the
    /// makespan) is capacity the cluster never had, so it is subtracted
    /// from the denominator — the naive formula undercounts utilization on
    /// every faulted run.
    pub fn utilization(&self) -> f64 {
        let slots = self.slots_per_worker.max(1);
        let capacity_us =
            self.metrics.makespan.as_micros() * (self.workers as u64) * (slots as u64);
        let available = capacity_us.saturating_sub(self.downtime_us * slots as u64) as f64;
        if available == 0.0 {
            return 0.0;
        }
        self.metrics.busy_us as f64 / available
    }

    /// Percentile of job response time for a (class, status) cell, seconds.
    pub fn response_percentile(&self, key: LatencyKey, p: f64) -> f64 {
        let mut d = self.metrics.job_response.cell(key).clone();
        d.percentile(p)
    }

    /// Percentile of job response time for a whole class, seconds.
    pub fn class_response_percentile(&self, class: JobClass, p: f64) -> f64 {
        self.metrics.job_response.by_class(class).percentile(p)
    }

    /// Percentile of per-job queuing time for a whole class, seconds.
    pub fn class_queuing_percentile(&self, class: JobClass, p: f64) -> f64 {
        self.metrics.job_queuing.by_class(class).percentile(p)
    }

    /// FNV-1a fingerprint over the run's deterministic content: makespan,
    /// busy time, every counter, `lost_tasks`, and all per-job outcomes
    /// (bit-exact floats). Two runs with the same fingerprint produced
    /// byte-identical results — the regression and determinism tests
    /// compare digests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.scheduler.as_bytes());
        eat(&(self.workers as u64).to_le_bytes());
        eat(&self.metrics.makespan.as_micros().to_le_bytes());
        eat(&self.metrics.busy_us.to_le_bytes());
        // Exhaustive destructure (no `..`): adding a counter field without
        // covering it in the fingerprint is a compile error, not a silent
        // regression-test blind spot. Keep the feed order in sync with the
        // declaration order, or every golden digest shifts.
        let Counters {
            probes_sent,
            redundant_probes,
            bound_placements,
            tasks_completed,
            jobs_completed,
            jobs_failed,
            relaxed_tasks,
            crv_reordered_tasks,
            crv_insertions,
            srpt_reordered_tasks,
            stolen_probes,
            migrated_probes,
            sbp_continuations,
            starvation_suppressions,
            worker_crashes,
            worker_recoveries,
            tasks_killed,
            probes_lost,
            probe_retries,
            probes_delayed,
            requeued_tasks,
        } = self.counters;
        for v in [
            probes_sent,
            redundant_probes,
            bound_placements,
            tasks_completed,
            jobs_completed,
            jobs_failed,
            relaxed_tasks,
            crv_reordered_tasks,
            crv_insertions,
            srpt_reordered_tasks,
            stolen_probes,
            migrated_probes,
            sbp_continuations,
            starvation_suppressions,
            worker_crashes,
            worker_recoveries,
            tasks_killed,
            probes_lost,
            probe_retries,
            probes_delayed,
            requeued_tasks,
        ] {
            eat(&v.to_le_bytes());
        }
        eat(&(self.incomplete_jobs as u64).to_le_bytes());
        eat(&self.lost_tasks.to_le_bytes());
        for o in &self.job_outcomes {
            eat(&o.job.0.to_le_bytes());
            eat(&[
                u8::from(o.short),
                u8::from(o.constrained),
                u8::from(o.failed),
            ]);
            eat(&o.user.to_le_bytes());
            eat(&o.response_s.unwrap_or(-1.0).to_bits().to_le_bytes());
            eat(&o.mean_wait_s.unwrap_or(-1.0).to_bits().to_le_bytes());
            eat(&o.ideal_s.to_bits().to_le_bytes());
        }
        h
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} jobs done ({} failed, {} incomplete), util {:.1}%, short p99 {:.2}s",
            self.scheduler,
            self.counters.jobs_completed,
            self.counters.jobs_failed,
            self.incomplete_jobs,
            self.utilization() * 100.0,
            self.class_response_percentile(JobClass::Short, 99.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{Constraint, ConstraintKind, ConstraintOp, ConstraintSet};
    use phoenix_traces::{Job, JobId};

    fn job(constrained: bool, short: bool) -> JobState {
        let constraints = if constrained {
            ConstraintSet::from_constraints(vec![Constraint::hard(
                ConstraintKind::NumCores,
                ConstraintOp::Gt,
                4,
            )])
        } else {
            ConstraintSet::unconstrained()
        };
        JobState::from_job(&Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![1.0],
            estimated_task_duration_s: 1.0,
            constraints,
            short,
            user: 0,
        })
    }

    #[test]
    fn key_classification() {
        let k = SimMetrics::key_for(&job(true, true));
        assert_eq!(k.class, JobClass::Short);
        assert_eq!(k.status, ConstraintStatus::Constrained);
        let k = SimMetrics::key_for(&job(false, false));
        assert_eq!(k.class, JobClass::Long);
        assert_eq!(k.status, ConstraintStatus::Unconstrained);
    }

    #[test]
    fn job_completion_recording() {
        let mut m = SimMetrics::new(SimDuration::from_secs(60), true);
        let mut j = job(false, true);
        let _ = j.take_task();
        j.wait_sum_us += 2_000_000;
        j.complete_task(SimTime::from_secs_f64(5.0));
        m.record_job_completion(&j);
        assert_eq!(m.counters.jobs_completed, 1);
        let key = SimMetrics::key_for(&j);
        assert_eq!(m.job_response.cell(key).len(), 1);
        let mut q = m.job_queuing.cell(key).clone();
        assert!((q.percentile(50.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn task_wait_series_split_by_constraint_status() {
        let mut m = SimMetrics::new(SimDuration::from_secs(1), true);
        m.record_task_wait(&job(true, true), SimDuration::from_secs(1), SimTime(0));
        m.record_task_wait(&job(false, true), SimDuration::from_secs(2), SimTime(0));
        assert_eq!(m.constrained_wait_series.len(), 1);
        assert_eq!(m.unconstrained_wait_series.len(), 1);
        assert_eq!(m.task_waits.len(), 2);
    }

    /// The `record_task_waits` gate suppresses only the heavy per-task
    /// distribution; the Fig.-3 time series must keep recording.
    #[test]
    fn task_wait_gate_spares_the_time_series() {
        let mut m = SimMetrics::new(SimDuration::from_secs(1), false);
        m.record_task_wait(&job(true, true), SimDuration::from_secs(1), SimTime(0));
        m.record_task_wait(&job(false, true), SimDuration::from_secs(2), SimTime(0));
        assert_eq!(m.constrained_wait_series.len(), 1);
        assert_eq!(m.unconstrained_wait_series.len(), 1);
        assert_eq!(m.task_waits.len(), 0, "distribution is gated off");
    }

    fn result_with(workers: usize, slots: usize, makespan_us: u64, busy_us: u64) -> SimResult {
        let mut m = SimMetrics::new(SimDuration::from_secs(60), false);
        m.makespan = SimTime(makespan_us);
        m.busy_us = busy_us;
        SimResult {
            scheduler: "test".into(),
            workers,
            slots_per_worker: slots,
            counters: m.counters,
            metrics: m,
            incomplete_jobs: 0,
            lost_tasks: 0,
            job_outcomes: Vec::new(),
            downtime_us: 0,
            federation: None,
            profile: None,
            audit: None,
        }
    }

    #[test]
    fn utilization_math() {
        let r = result_with(1, 1, 1_000_000, 500_000);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        assert!(!r.to_string().is_empty());
    }

    /// Multi-slot workers accumulate `busy_us` across every slot, so the
    /// denominator must scale by the slot count: 4 workers × 2 slots fully
    /// busy for the whole makespan is 100%, not 200%.
    #[test]
    fn utilization_normalizes_by_slot_count() {
        let saturated = result_with(4, 2, 1_000_000, 8_000_000);
        assert!((saturated.utilization() - 1.0).abs() < 1e-12);
        let half = result_with(4, 2, 1_000_000, 4_000_000);
        assert!((half.utilization() - 0.5).abs() < 1e-12);
    }

    /// A crashed worker's downtime is capacity the cluster never had;
    /// subtracting it must raise utilization, and a fully-busy surviving
    /// cluster must read exactly 100%, never more.
    #[test]
    fn utilization_excludes_crash_downtime() {
        // 2 workers × 1 s makespan; one worker down for the last 0.5 s,
        // the rest of the capacity fully busy: 1.5 s busy / 1.5 s avail.
        let mut r = result_with(2, 1, 1_000_000, 1_500_000);
        assert!((r.utilization() - 0.75).abs() < 1e-12, "naive before fix");
        r.downtime_us = 500_000;
        assert!((r.utilization() - 1.0).abs() < 1e-12);
        // Downtime scales by the slot count on multi-slot workers.
        let mut r = result_with(2, 2, 1_000_000, 3_000_000);
        r.downtime_us = 500_000;
        assert!((r.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let m = SimMetrics::new(SimDuration::from_secs(60), false);
        let mut r = SimResult {
            scheduler: "test".into(),
            workers: 4,
            slots_per_worker: 1,
            counters: m.counters,
            metrics: m,
            incomplete_jobs: 0,
            lost_tasks: 0,
            downtime_us: 0,
            federation: None,
            profile: None,
            audit: None,
            job_outcomes: vec![JobOutcome {
                job: JobId(7),
                short: true,
                user: 1,
                constrained: false,
                response_s: Some(1.25),
                mean_wait_s: None,
                ideal_s: 1.0,
                failed: false,
            }],
        };
        let d = r.digest();
        assert_eq!(d, r.digest(), "digest must be deterministic");
        r.counters.probes_lost += 1;
        assert_ne!(d, r.digest(), "fault counters must be covered");
        r.counters.probes_lost -= 1;
        r.job_outcomes[0].response_s = Some(1.250000001);
        assert_ne!(d, r.digest(), "outcomes must be covered bit-exactly");
    }
}
