//! Engine configuration.

use crate::fault::FaultPlan;
use crate::time::SimDuration;

/// Engine-level parameters (scheduler-specific parameters such as probe
/// ratios or heartbeat intervals live in the scheduler configs).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// One-way network delay for scheduler↔worker messages. The paper fixes
    /// the round trip at 0.5 ms (§V-A), so one way is 0.25 ms.
    pub network_delay: SimDuration,
    /// Bucket width for the Fig.-3 style queuing-delay time series.
    pub timeseries_bucket: SimDuration,
    /// Keep per-task wait samples (large); disable for big sweeps.
    pub record_task_waits: bool,
    /// Scale task execution times by the executing machine's CPU clock
    /// relative to [`SimConfig::reference_clock_mhz`] (a faster machine
    /// finishes the same task sooner). Off by default: the paper's
    /// simulator replays trace durations as-is, constraints being the only
    /// heterogeneity effect.
    pub scale_duration_by_clock: bool,
    /// Clock speed at which trace durations are considered measured, MHz.
    pub reference_clock_mhz: u32,
    /// Execution slots per worker. The paper's model (and the default) is
    /// one slot per worker; larger values are an extension.
    pub slots_per_worker: usize,
    /// Fault-injection plan (worker churn, probe loss/delay, heartbeat
    /// jitter). Defaults to [`FaultPlan::none`], which costs nothing.
    pub faults: FaultPlan,
}

impl SimConfig {
    /// The round-trip time (twice the one-way delay).
    pub fn rtt(&self) -> SimDuration {
        SimDuration(self.network_delay.as_micros() * 2)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            network_delay: SimDuration::from_micros(250),
            timeseries_bucket: SimDuration::from_secs(60),
            record_task_waits: true,
            scale_duration_by_clock: false,
            reference_clock_mhz: 2_200,
            slots_per_worker: 1,
            faults: FaultPlan::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.rtt(), SimDuration::from_micros(500));
    }
}
