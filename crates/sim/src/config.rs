//! Engine configuration.

use crate::fault::FaultPlan;
use crate::time::SimDuration;

/// Federated-scheduling parameters: the cluster is sharded into `domains`
/// contiguous worker ranges, each owning its own CRV ledger; domains learn
/// about each other only through periodic summary gossip delivered with a
/// configurable staleness (see [`crate::federation`]).
///
/// The load-bearing parity rule: with `domains <= 1` the engine behaves
/// **byte-identically** to the centralized configuration — no gossip events
/// are scheduled, placement sampling is unrestricted, and every golden
/// digest is unchanged. A single-domain federation still maintains its
/// (one) domain ledger, so the partitioned bookkeeping is exercised and
/// cross-checked without perturbing a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederationConfig {
    /// Number of federated domains. `0` or `1` disables federation effects
    /// (`0` skips even the single-domain bookkeeping).
    pub domains: usize,
    /// Interval between gossip rounds: each round, every domain publishes
    /// a fresh summary of its ledger.
    pub gossip_interval: SimDuration,
    /// Propagation delay before a published summary becomes visible to the
    /// other domains. Zero installs summaries at publish time (domains are
    /// then stale only by the gossip interval).
    pub staleness: SimDuration,
}

impl FederationConfig {
    /// Federation off: the centralized engine, bit for bit.
    pub fn off() -> Self {
        FederationConfig {
            domains: 0,
            gossip_interval: SimDuration::from_secs(5),
            staleness: SimDuration::ZERO,
        }
    }

    /// A `k`-domain federation with the default 5 s gossip interval and
    /// the given summary staleness.
    pub fn sharded(k: usize, staleness: SimDuration) -> Self {
        FederationConfig {
            domains: k,
            staleness,
            ..Self::off()
        }
    }

    /// Whether any federation bookkeeping runs (at least one domain).
    pub fn is_active(&self) -> bool {
        self.domains > 0
    }

    /// Whether placement is actually partitioned (two or more domains).
    /// Single-domain federations keep the centralized behavior.
    pub fn is_partitioned(&self) -> bool {
        self.domains > 1
    }
}

impl Default for FederationConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Engine-level parameters (scheduler-specific parameters such as probe
/// ratios or heartbeat intervals live in the scheduler configs).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// One-way network delay for scheduler↔worker messages. The paper fixes
    /// the round trip at 0.5 ms (§V-A), so one way is 0.25 ms.
    pub network_delay: SimDuration,
    /// Bucket width for the Fig.-3 style queuing-delay time series.
    pub timeseries_bucket: SimDuration,
    /// Keep per-task wait samples (large); disable for big sweeps.
    pub record_task_waits: bool,
    /// Scale task execution times by the executing machine's CPU clock
    /// relative to [`SimConfig::reference_clock_mhz`] (a faster machine
    /// finishes the same task sooner). Off by default: the paper's
    /// simulator replays trace durations as-is, constraints being the only
    /// heterogeneity effect.
    pub scale_duration_by_clock: bool,
    /// Clock speed at which trace durations are considered measured, MHz.
    pub reference_clock_mhz: u32,
    /// Execution slots per worker. The paper's model (and the default) is
    /// one slot per worker; larger values are an extension.
    pub slots_per_worker: usize,
    /// Fault-injection plan (worker churn, probe loss/delay, heartbeat
    /// jitter). Defaults to [`FaultPlan::none`], which costs nothing.
    pub faults: FaultPlan,
    /// Federated-scheduling plan (domain sharding + summary gossip).
    /// Defaults to [`FederationConfig::off`], which costs nothing.
    pub federation: FederationConfig,
}

impl SimConfig {
    /// The round-trip time (twice the one-way delay).
    pub fn rtt(&self) -> SimDuration {
        SimDuration(self.network_delay.as_micros() * 2)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            network_delay: SimDuration::from_micros(250),
            timeseries_bucket: SimDuration::from_secs(60),
            record_task_waits: true,
            scale_duration_by_clock: false,
            reference_clock_mhz: 2_200,
            slots_per_worker: 1,
            faults: FaultPlan::none(),
            federation: FederationConfig::off(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.rtt(), SimDuration::from_micros(500));
        assert!(!c.federation.is_active());
    }

    #[test]
    fn federation_activation_thresholds() {
        assert!(!FederationConfig::off().is_active());
        let one = FederationConfig::sharded(1, SimDuration::ZERO);
        assert!(one.is_active());
        assert!(!one.is_partitioned());
        let four = FederationConfig::sharded(4, SimDuration::from_millis(200));
        assert!(four.is_partitioned());
        assert_eq!(four.staleness, SimDuration::from_millis(200));
    }
}
