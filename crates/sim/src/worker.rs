//! Worker state: one execution slot plus a probe queue.

use std::fmt;

use phoenix_traces::JobId;

use crate::probe::Probe;
use crate::time::SimTime;

/// Dense worker identifier; doubles as the index into the machine
/// population of the [`phoenix_constraints::FeasibilityIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// The worker's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker-{}", self.0)
    }
}

/// A task occupying one of a worker's execution slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningTask {
    /// Owning job.
    pub job: JobId,
    /// When the task will complete.
    pub finish_at: SimTime,
    /// Effective execution time (after any soft-relaxation slowdown),
    /// microseconds.
    pub duration_us: u64,
    /// True task duration before slowdown/clock scaling, microseconds —
    /// what a fault-recovery retry must re-run elsewhere.
    pub raw_duration_us: u64,
    /// Soft-relaxation slowdown the placement carried (1.0 when none).
    pub slowdown: f64,
    /// Whether the task came from an early-bound (centralized) placement.
    pub bound: bool,
    /// Engine-assigned identifier pairing this task with its completion
    /// event (needed once a worker has more than one slot).
    pub seq: u64,
}

/// One worker: execution slot(s) and a reorderable probe queue.
///
/// The paper's simulator gives every worker exactly **one** slot (§V-A:
/// "At each worker node, there is one slot for execution and a queue for
/// tasks waiting to be executed") — the default here. Multi-slot workers
/// are supported as an extension via [`Worker::with_slots`] /
/// [`crate::SimConfig::slots_per_worker`].
#[derive(Debug, Clone)]
pub struct Worker {
    slots: usize,
    running: Vec<RunningTask>,
    /// Probe queue as a head-offset ring over a `Vec`: the live queue is
    /// `queue[head..]`, so popping the head (the overwhelmingly common
    /// removal — every dispatch) is a pointer bump instead of an O(queue)
    /// `Vec::remove(0)` shift. Dead slots before `head` are reclaimed by
    /// amortized compaction.
    queue: Vec<Probe>,
    head: usize,
    /// Total busy microseconds accumulated (for utilization).
    busy_us: u64,
    /// Sum of bound task durations currently queued, microseconds (an
    /// exact component of estimated queue work).
    queued_bound_work_us: u64,
    /// Sum of the snapshotted estimated durations of queued *speculative*
    /// probes, microseconds — with [`Worker::queued_bound_work_us`] this
    /// makes estimated-queue-work queries O(1) instead of an O(queue) walk
    /// through the job table.
    queued_spec_est_us: u64,
    /// Whether the worker is up. Crashed workers accept no probes and run
    /// no tasks until they recover.
    alive: bool,
}

impl Default for Worker {
    fn default() -> Self {
        Self::new()
    }
}

impl Worker {
    /// Creates an idle single-slot worker with an empty queue.
    pub fn new() -> Self {
        Self::with_slots(1)
    }

    /// Creates an idle worker with `slots` execution slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_slots(slots: usize) -> Self {
        assert!(slots >= 1, "a worker needs at least one slot");
        Worker {
            slots,
            running: Vec::with_capacity(slots),
            queue: Vec::new(),
            head: 0,
            busy_us: 0,
            queued_bound_work_us: 0,
            queued_spec_est_us: 0,
            alive: true,
        }
    }

    /// Whether the worker is up.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Marks the worker up or down. Draining the casualties of a crash is
    /// the engine's job ([`crate::SimState::crash_worker`]); this is just
    /// the flag.
    pub fn set_alive(&mut self, alive: bool) {
        self.alive = alive;
    }

    /// Whether a running task carries engine sequence `seq` (used to
    /// tombstone completion events of tasks killed by a crash).
    pub fn has_running_seq(&self, seq: u64) -> bool {
        self.running.iter().any(|t| t.seq == seq)
    }

    /// Drains every running task (a crash kills them mid-flight), returning
    /// the tasks and the total not-yet-executed microseconds, which are
    /// subtracted from [`Worker::busy_us`] (the time was credited in full
    /// at dispatch but never actually runs).
    pub fn take_running_tasks(&mut self, now: SimTime) -> (Vec<RunningTask>, u64) {
        let killed: Vec<RunningTask> = self.running.drain(..).collect();
        let unspent: u64 = killed
            .iter()
            .map(|t| t.finish_at.since(now).as_micros())
            .sum();
        self.busy_us = self.busy_us.saturating_sub(unspent);
        (killed, unspent)
    }

    /// Number of execution slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Whether no task is running on any slot.
    pub fn is_idle(&self) -> bool {
        self.running.is_empty()
    }

    /// Whether at least one slot is free.
    pub fn has_free_slot(&self) -> bool {
        self.running.len() < self.slots
    }

    /// The running task, if any (the earliest-started one on multi-slot
    /// workers).
    pub fn running(&self) -> Option<&RunningTask> {
        self.running.first()
    }

    /// All tasks currently occupying slots.
    pub fn running_tasks(&self) -> &[RunningTask] {
        &self.running
    }

    /// Occupies a free slot with a task.
    ///
    /// # Panics
    ///
    /// Panics if every slot is busy.
    pub fn start_task(&mut self, task: RunningTask, now: SimTime) {
        assert!(self.has_free_slot(), "worker slot already busy");
        self.busy_us += task.finish_at.since(now).as_micros();
        self.running.push(task);
    }

    /// Clears the slot running the task with engine sequence `seq`,
    /// returning it.
    ///
    /// # Panics
    ///
    /// Panics if no running task carries that sequence number.
    pub fn finish_task(&mut self, seq: u64) -> RunningTask {
        let idx = self
            .running
            .iter()
            .position(|t| t.seq == seq)
            .expect("no task running");
        self.running.swap_remove(idx)
    }

    /// The probe queue, in service order.
    pub fn queue(&self) -> &[Probe] {
        &self.queue[self.head..]
    }

    /// Mutable access to the probe queue for policy reordering.
    ///
    /// Reordering must preserve the multiset of probes; the engine's
    /// conservation accounting assumes probes are only added via
    /// [`Worker::enqueue`] and removed via [`Worker::remove_probe`] /
    /// [`Worker::steal_if`]. In particular, mutating a probe's
    /// `bound_duration_us` through this slice desyncs the cached
    /// [`Worker::queued_bound_work_us`] aggregate — the engine audits the
    /// aggregate in debug builds ([`Worker::audit_bound_work`]) and panics
    /// on divergence.
    pub fn queue_mut(&mut self) -> &mut [Probe] {
        let head = self.head;
        &mut self.queue[head..]
    }

    /// Recomputes the bound-work aggregate directly from the queue.
    pub fn recomputed_bound_work_us(&self) -> u64 {
        self.queue()
            .iter()
            .filter_map(|p| p.bound_duration_us)
            .sum()
    }

    /// Recomputes the speculative-estimate aggregate directly from the
    /// queue.
    pub fn recomputed_spec_est_us(&self) -> u64 {
        self.queue()
            .iter()
            .filter(|p| !p.is_bound())
            .map(|p| p.est_duration_us)
            .sum()
    }

    /// Asserts the cached [`Worker::queued_bound_work_us`] aggregate still
    /// matches the queue contents. The engine invokes this (debug builds
    /// only) before dispatching a touched worker, catching policies that
    /// desynced the aggregate through [`Worker::queue_mut`].
    ///
    /// # Panics
    ///
    /// Panics if the cached aggregate diverged.
    pub fn audit_bound_work(&self) {
        let recomputed = self.recomputed_bound_work_us();
        assert_eq!(
            self.queued_bound_work_us, recomputed,
            "queued_bound_work_us desynced: cached {} vs recomputed {} \
             (a policy mutated bound_duration_us via queue_mut?)",
            self.queued_bound_work_us, recomputed
        );
        let spec = self.recomputed_spec_est_us();
        assert_eq!(
            self.queued_spec_est_us, spec,
            "queued_spec_est_us desynced: cached {} vs recomputed {} \
             (a policy mutated est_duration_us via queue_mut?)",
            self.queued_spec_est_us, spec
        );
    }

    /// Appends a probe to the tail of the queue.
    pub fn enqueue(&mut self, probe: Probe) {
        match probe.bound_duration_us {
            Some(d) => self.queued_bound_work_us += d,
            None => self.queued_spec_est_us += probe.est_duration_us,
        }
        self.queue.push(probe);
    }

    /// Removes and returns the probe at `index` (relative to the queue
    /// head). Popping the head is O(1); middle removals shift whichever
    /// side of the queue is shorter.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove_probe(&mut self, index: usize) -> Probe {
        let len = self.queue_len();
        assert!(index < len, "remove_probe index out of bounds");
        let abs = self.head + index;
        let probe = self.queue[abs];
        if index * 2 < len {
            // Head side shorter: slide `[head, abs)` right into the gap and
            // advance the head (O(index); O(1) for the head itself).
            self.queue.copy_within(self.head..abs, self.head + 1);
            self.head += 1;
            self.maybe_compact();
        } else {
            self.queue.remove(abs);
        }
        match probe.bound_duration_us {
            Some(d) => self.queued_bound_work_us -= d,
            None => self.queued_spec_est_us -= probe.est_duration_us,
        }
        probe
    }

    /// Reclaims the dead prefix before `head` once it dominates the
    /// buffer; each compaction moves at most as many probes as were popped
    /// since the last one, so removal stays amortized O(1).
    fn maybe_compact(&mut self) {
        if self.head == self.queue.len() {
            self.queue.clear();
            self.head = 0;
        } else if self.head >= 32 && self.head * 2 >= self.queue.len() {
            self.queue.drain(..self.head);
            self.head = 0;
        }
    }

    /// Removes and returns every queued probe matching `predicate`
    /// (used by work stealing).
    pub fn steal_if(&mut self, mut predicate: impl FnMut(&Probe) -> bool) -> Vec<Probe> {
        let mut stolen = Vec::new();
        let mut i = 0;
        while i < self.queue_len() {
            if predicate(&self.queue()[i]) {
                stolen.push(self.remove_probe(i));
            } else {
                i += 1;
            }
        }
        stolen
    }

    /// Queue length.
    pub fn queue_len(&self) -> usize {
        self.queue.len() - self.head
    }

    /// Sum of bound task durations in the queue, microseconds.
    pub fn queued_bound_work_us(&self) -> u64 {
        self.queued_bound_work_us
    }

    /// Sum of snapshotted estimated durations of queued speculative probes,
    /// microseconds.
    pub fn queued_spec_est_us(&self) -> u64 {
        self.queued_spec_est_us
    }

    /// Total busy time accumulated, microseconds.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// Moves the probe at `index` to the front of the queue, incrementing
    /// the bypass counter of every probe it overtakes. Returns the number of
    /// probes bypassed.
    pub fn promote_to_front(&mut self, index: usize) -> usize {
        self.promote(index, 0)
    }

    /// Moves the probe at `from` to position `to` (`to <= from`),
    /// incrementing the bypass counter of every probe it overtakes.
    /// Returns the number of probes bypassed.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of bounds or `to > from`.
    pub fn promote(&mut self, from: usize, to: usize) -> usize {
        self.promote_tracking_pins(from, to, u32::MAX).0
    }

    /// [`Worker::promote`] that additionally reports the highest
    /// post-rotation position of a bypassed probe whose bypass count is at
    /// or above `slack_threshold` *after* the increment. CRV reordering
    /// uses this to keep its pinned-barrier frontier exact without
    /// re-scanning the queue: a probe pinned *by this very promotion* is a
    /// barrier for later promotions in the same pass.
    pub fn promote_tracking_pins(
        &mut self,
        from: usize,
        to: usize,
        slack_threshold: u32,
    ) -> (usize, Option<usize>) {
        assert!(from < self.queue_len(), "promote index out of bounds");
        assert!(to <= from, "promote must move toward the front");
        if from == to {
            return (0, None);
        }
        let (h_to, h_from) = (self.head + to, self.head + from);
        let mut last_pinned = None;
        for (j, p) in self.queue[h_to..h_from].iter_mut().enumerate() {
            p.bypass_count += 1;
            if p.bypass_count >= slack_threshold {
                // The probe at queue-relative index `to + j` lands at
                // `to + j + 1` after the rotation below.
                last_pinned = Some(to + j + 1);
            }
        }
        self.queue[h_to..=h_from].rotate_right(1);
        (from - to, last_pinned)
    }

    /// Inserts a probe at the *front* of the queue without touching bypass
    /// counters.
    ///
    /// This models Eagle's Sticky Batch Probing: the worker that just
    /// finished a task of a job immediately continues with that job's next
    /// task — a continuation of service, not a reordering.
    pub fn enqueue_front(&mut self, probe: Probe) {
        match probe.bound_duration_us {
            Some(d) => self.queued_bound_work_us += d,
            None => self.queued_spec_est_us += probe.est_duration_us,
        }
        if self.head > 0 {
            // Reuse a dead slot before the head: O(1).
            self.head -= 1;
            self.queue[self.head] = probe;
        } else {
            self.queue.insert(0, probe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeId;

    fn probe(id: u64, bound: Option<u64>) -> Probe {
        Probe {
            id: ProbeId(id),
            job: JobId(0),
            bound_duration_us: bound,
            est_duration_us: 7,
            slowdown: 1.0,
            enqueued_at: SimTime::ZERO,
            bypass_count: 0,
            migrations: 0,
            retries: 0,
        }
    }

    #[test]
    fn slot_lifecycle() {
        let mut w = Worker::new();
        assert!(w.is_idle());
        w.start_task(
            RunningTask {
                job: JobId(1),
                finish_at: SimTime(100),
                duration_us: 60,
                raw_duration_us: 60,
                slowdown: 1.0,
                bound: false,
                seq: 0,
            },
            SimTime(40),
        );
        assert!(!w.is_idle());
        assert_eq!(w.busy_us(), 60);
        let t = w.finish_task(0);
        assert_eq!(t.job, JobId(1));
        assert!(w.is_idle());
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_start_panics() {
        let mut w = Worker::new();
        let t = RunningTask {
            job: JobId(1),
            finish_at: SimTime(1),
            duration_us: 1,
            raw_duration_us: 1,
            slowdown: 1.0,
            bound: false,
            seq: 0,
        };
        w.start_task(t, SimTime::ZERO);
        w.start_task(t, SimTime::ZERO);
    }

    #[test]
    fn bound_work_accounting() {
        let mut w = Worker::new();
        w.enqueue(probe(1, Some(100)));
        w.enqueue(probe(2, None));
        w.enqueue(probe(3, Some(50)));
        assert_eq!(w.queued_bound_work_us(), 150);
        let p = w.remove_probe(0);
        assert_eq!(p.id, ProbeId(1));
        assert_eq!(w.queued_bound_work_us(), 50);
    }

    #[test]
    fn steal_if_removes_matching() {
        let mut w = Worker::new();
        for i in 0..5 {
            w.enqueue(probe(i, if i % 2 == 0 { None } else { Some(10) }));
        }
        let stolen = w.steal_if(|p| !p.is_bound());
        assert_eq!(stolen.len(), 3);
        assert_eq!(w.queue_len(), 2);
        assert!(w.queue().iter().all(Probe::is_bound));
        assert_eq!(w.queued_bound_work_us(), 20);
    }

    #[test]
    fn promote_to_front_counts_bypasses() {
        let mut w = Worker::new();
        for i in 0..4 {
            w.enqueue(probe(i, None));
        }
        let bypassed = w.promote_to_front(2);
        assert_eq!(bypassed, 2);
        let ids: Vec<u64> = w.queue().iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![2, 0, 1, 3]);
        assert_eq!(w.queue()[1].bypass_count, 1);
        assert_eq!(w.queue()[2].bypass_count, 1);
        assert_eq!(w.queue()[3].bypass_count, 0);
        // Promoting the head is a no-op.
        assert_eq!(w.promote_to_front(0), 0);
    }

    #[test]
    fn promote_partial_move() {
        let mut w = Worker::new();
        for i in 0..5 {
            w.enqueue(probe(i, None));
        }
        let bypassed = w.promote(3, 1);
        assert_eq!(bypassed, 2);
        let ids: Vec<u64> = w.queue().iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 3, 1, 2, 4]);
        assert_eq!(w.queue()[0].bypass_count, 0, "head not overtaken");
        assert_eq!(w.queue()[2].bypass_count, 1);
        assert_eq!(w.queue()[3].bypass_count, 1);
    }

    #[test]
    #[should_panic(expected = "toward the front")]
    fn promote_backwards_panics() {
        let mut w = Worker::new();
        w.enqueue(probe(0, None));
        w.enqueue(probe(1, None));
        let _ = w.promote(0, 1);
    }

    #[test]
    fn take_running_tasks_refunds_unspent_busy_time() {
        let mut w = Worker::with_slots(2);
        for seq in 0..2u64 {
            w.start_task(
                RunningTask {
                    job: JobId(seq as u32),
                    finish_at: SimTime(100),
                    duration_us: 100,
                    raw_duration_us: 100,
                    slowdown: 1.0,
                    bound: seq == 0,
                    seq,
                },
                SimTime::ZERO,
            );
        }
        assert_eq!(w.busy_us(), 200);
        assert!(w.has_running_seq(1));
        // Crash at t=60: each task has 40 µs it will never execute.
        let (killed, unspent) = w.take_running_tasks(SimTime(60));
        assert_eq!(killed.len(), 2);
        assert_eq!(unspent, 80);
        assert_eq!(w.busy_us(), 120);
        assert!(w.is_idle());
        assert!(!w.has_running_seq(1));
    }

    #[test]
    fn alive_flag_round_trips() {
        let mut w = Worker::new();
        assert!(w.is_alive());
        w.set_alive(false);
        assert!(!w.is_alive());
        w.set_alive(true);
        assert!(w.is_alive());
    }

    #[test]
    fn enqueue_front_skips_bypass_accounting() {
        let mut w = Worker::new();
        w.enqueue(probe(0, None));
        w.enqueue_front(probe(1, Some(30)));
        let ids: Vec<u64> = w.queue().iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![1, 0]);
        assert_eq!(w.queue()[1].bypass_count, 0);
        assert_eq!(w.queued_bound_work_us(), 30);
    }
}
