//! Simulated time: integer microseconds.
//!
//! Integer timestamps keep the event heap's ordering exact and runs
//! bit-for-bit reproducible; floats would accumulate drift over millions of
//! events.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// The duration in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// An absolute simulated timestamp, microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a timestamp from fractional seconds since start, saturating
    /// at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(s).0)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier timestamp, saturating at zero if `earlier`
    /// is actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_micros(), 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_durations_saturate_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(t.as_secs_f64(), 10.0);
        assert_eq!((t - SimTime::from_secs_f64(4.0)).as_secs_f64(), 6.0);
        // Saturating subtraction.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime(5) < SimTime(6));
        assert!(SimDuration(5) < SimDuration(6));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime(1_500_000).to_string(), "t=1.500000s");
        assert_eq!(SimDuration(500).to_string(), "0.000500s");
    }
}
