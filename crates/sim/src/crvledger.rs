//! Incrementally maintained CRV demand/supply ledger.
//!
//! The CRV monitor historically rebuilt its lookup table every heartbeat by
//! scanning every worker queue and re-deriving per-kind supply — an
//! O(workers × probes × constraints) pass repeated every 9 simulated
//! seconds. This ledger keeps the same quantities continuously up to date
//! from the engine's probe-movement and slot-transition hooks, so a
//! heartbeat refresh becomes an O(kinds) read:
//!
//! * **Demand**: one unit per queued probe per constraint of its job's
//!   effective set, updated as probes enter and leave queues. The set a
//!   probe demands is interned at enqueue time (jobs' effective constraints
//!   are final before any of their probes arrive; the monitor's
//!   debug-assertions oracle cross-checks this every heartbeat).
//! * **Supply**: per kind, the number of *idle* workers satisfying at least
//!   one currently-demanded constraint instance of that kind. Per-instance
//!   feasibility lists come from
//!   [`FeasibilityIndex::feasible_single`] (cached inside the index) and
//!   are walked only when an instance's refcount transitions between zero
//!   and nonzero — i.e. only when the distinct-instance set changes.
//!   Idle↔busy transitions cost O(kinds).
//!
//! All probe movement between queues and all slot transitions must go
//! through the [`crate::SimState`] / [`crate::SimCtx`] wrappers that feed
//! this ledger; mutating [`crate::Worker`] queues directly desynchronizes
//! it (the monitor's debug oracle will panic).

use std::collections::HashMap;

use phoenix_constraints::{Constraint, ConstraintKind, ConstraintSet, FeasibilityIndex};

use crate::probe::ProbeId;

/// Continuously maintained CRV demand/supply counters (see module docs).
#[derive(Debug, Clone, Default)]
pub struct CrvLedger {
    /// Per kind: queued (probe, constraint) pairs demanding it.
    demand: [u64; ConstraintKind::COUNT],
    /// Per kind: idle workers satisfying ≥1 currently-demanded instance.
    idle_supply: [u64; ConstraintKind::COUNT],
    /// Interned constraint sets, indexed by the ids in `probe_set`.
    sets: Vec<Vec<Constraint>>,
    set_ids: HashMap<Vec<Constraint>, u32>,
    /// Interned set of each queued *constrained* probe.
    probe_set: HashMap<ProbeId, u32>,
    /// Refcount of each distinct constraint instance under demand.
    instance_refs: HashMap<Constraint, u64>,
    /// Per worker, per kind: demanded instances of that kind it satisfies.
    sat_count: Vec<[u32; ConstraintKind::COUNT]>,
    /// Mirror of each worker's idleness.
    idle: Vec<bool>,
    idle_workers: usize,
    queued_probes: usize,
    constrained_probes: usize,
}

impl CrvLedger {
    /// An empty ledger over `workers` all-idle workers.
    pub fn new(workers: usize) -> Self {
        CrvLedger {
            sat_count: vec![[0; ConstraintKind::COUNT]; workers],
            idle: vec![true; workers],
            idle_workers: workers,
            ..Default::default()
        }
    }

    /// Queued (probe, constraint) pairs demanding `kind`.
    pub fn demand(&self, kind: ConstraintKind) -> u64 {
        self.demand[kind.index()]
    }

    /// Idle workers satisfying at least one currently-demanded instance of
    /// `kind`.
    pub fn idle_supply(&self, kind: ConstraintKind) -> u64 {
        self.idle_supply[kind.index()]
    }

    /// Total queued probes.
    pub fn queued_probes(&self) -> usize {
        self.queued_probes
    }

    /// Queued probes belonging to constrained jobs.
    pub fn constrained_probes(&self) -> usize {
        self.constrained_probes
    }

    /// Workers with no running task.
    pub fn idle_workers(&self) -> usize {
        self.idle_workers
    }

    /// Distinct constraint instances currently under demand.
    pub fn distinct_instances(&self) -> usize {
        self.instance_refs.len()
    }

    /// Records a probe demanding `set` entering some worker's queue.
    pub fn probe_enqueued(
        &mut self,
        id: ProbeId,
        set: &ConstraintSet,
        feasibility: &FeasibilityIndex,
    ) {
        self.queued_probes += 1;
        if set.is_unconstrained() {
            return;
        }
        self.constrained_probes += 1;
        let set_id = self.intern(set);
        let prev = self.probe_set.insert(id, set_id);
        debug_assert!(
            prev.is_none(),
            "probe {id:?} enqueued twice without removal"
        );
        for i in 0..self.sets[set_id as usize].len() {
            let c = self.sets[set_id as usize][i];
            self.demand[c.kind.index()] += 1;
            let refs = self.instance_refs.entry(c).or_insert(0);
            *refs += 1;
            if *refs == 1 {
                self.instance_added(&c, feasibility);
            }
        }
    }

    /// Records a queued probe leaving its worker's queue (dispatch, steal,
    /// recall, redundant-probe discard).
    pub fn probe_removed(&mut self, id: ProbeId, feasibility: &FeasibilityIndex) {
        debug_assert!(
            self.queued_probes > 0,
            "probe {id:?} removed from empty ledger"
        );
        self.queued_probes -= 1;
        let Some(set_id) = self.probe_set.remove(&id) else {
            return; // unconstrained probe
        };
        self.constrained_probes -= 1;
        for i in 0..self.sets[set_id as usize].len() {
            let c = self.sets[set_id as usize][i];
            self.demand[c.kind.index()] -= 1;
            let refs = self
                .instance_refs
                .get_mut(&c)
                .expect("removed probe's instances are refcounted");
            *refs -= 1;
            if *refs == 0 {
                self.instance_refs.remove(&c);
                self.instance_removed(&c, feasibility);
            }
        }
    }

    /// Records `worker` transitioning idle → busy (first slot occupied).
    /// A no-op if already busy.
    pub fn worker_busy(&mut self, worker: usize) {
        if !self.idle[worker] {
            return;
        }
        self.idle[worker] = false;
        self.idle_workers -= 1;
        for (k, supply) in self.idle_supply.iter_mut().enumerate() {
            if self.sat_count[worker][k] > 0 {
                *supply -= 1;
            }
        }
    }

    /// Records `worker` transitioning busy → idle (last slot freed).
    /// A no-op if already idle.
    pub fn worker_idle(&mut self, worker: usize) {
        if self.idle[worker] {
            return;
        }
        self.idle[worker] = true;
        self.idle_workers += 1;
        for (k, supply) in self.idle_supply.iter_mut().enumerate() {
            if self.sat_count[worker][k] > 0 {
                *supply += 1;
            }
        }
    }

    /// A previously-undemanded instance became demanded: walk its feasible
    /// workers once (the cached list from the index).
    fn instance_added(&mut self, c: &Constraint, feasibility: &FeasibilityIndex) {
        let k = c.kind.index();
        for &w in feasibility.feasible_single(c).iter() {
            let sat = &mut self.sat_count[w as usize][k];
            *sat += 1;
            if *sat == 1 && self.idle[w as usize] {
                self.idle_supply[k] += 1;
            }
        }
    }

    /// The last probe demanding an instance left: reverse of
    /// [`CrvLedger::instance_added`].
    fn instance_removed(&mut self, c: &Constraint, feasibility: &FeasibilityIndex) {
        let k = c.kind.index();
        for &w in feasibility.feasible_single(c).iter() {
            let sat = &mut self.sat_count[w as usize][k];
            *sat -= 1;
            if *sat == 0 && self.idle[w as usize] {
                self.idle_supply[k] -= 1;
            }
        }
    }

    fn intern(&mut self, set: &ConstraintSet) -> u32 {
        let key: Vec<Constraint> = set.iter().copied().collect();
        if let Some(&id) = self.set_ids.get(&key) {
            return id;
        }
        let id = u32::try_from(self.sets.len()).expect("fewer than 2^32 distinct sets");
        self.sets.push(key.clone());
        self.set_ids.insert(key, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{AttributeVector, ConstraintOp};

    fn machines() -> Vec<AttributeVector> {
        // Two big-core machines, two small-core ones.
        (0..4)
            .map(|i| AttributeVector {
                num_cores: if i < 2 { 16 } else { 2 },
                ..AttributeVector::default()
            })
            .collect()
    }

    fn cores_gt(value: u64) -> ConstraintSet {
        ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            value,
        )])
    }

    #[test]
    fn demand_and_supply_track_probe_lifecycle() {
        let index = FeasibilityIndex::new(machines());
        let mut ledger = CrvLedger::new(4);
        let set = cores_gt(4);
        ledger.probe_enqueued(ProbeId(1), &set, &index);
        ledger.probe_enqueued(ProbeId(2), &set, &index);
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 2);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);
        assert_eq!(ledger.constrained_probes(), 2);
        assert_eq!(ledger.distinct_instances(), 1);

        ledger.probe_removed(ProbeId(1), &index);
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 1);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);

        // Last demanding probe leaves: the instance (and its supply) clears.
        ledger.probe_removed(ProbeId(2), &index);
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 0);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 0);
        assert_eq!(ledger.distinct_instances(), 0);
        assert_eq!(ledger.queued_probes(), 0);
    }

    #[test]
    fn unconstrained_probes_only_count_queue_depth() {
        let index = FeasibilityIndex::new(machines());
        let mut ledger = CrvLedger::new(4);
        ledger.probe_enqueued(ProbeId(9), &ConstraintSet::unconstrained(), &index);
        assert_eq!(ledger.queued_probes(), 1);
        assert_eq!(ledger.constrained_probes(), 0);
        ledger.probe_removed(ProbeId(9), &index);
        assert_eq!(ledger.queued_probes(), 0);
    }

    #[test]
    fn busy_workers_leave_the_supply() {
        let index = FeasibilityIndex::new(machines());
        let mut ledger = CrvLedger::new(4);
        ledger.probe_enqueued(ProbeId(1), &cores_gt(4), &index);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);
        ledger.worker_busy(0);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 1);
        assert_eq!(ledger.idle_workers(), 3);
        // Transition hooks are idempotent.
        ledger.worker_busy(0);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 1);
        ledger.worker_idle(0);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);
        assert_eq!(ledger.idle_workers(), 4);
    }

    #[test]
    fn overlapping_sets_share_instances() {
        let index = FeasibilityIndex::new(machines());
        let mut ledger = CrvLedger::new(4);
        let shared = Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 4);
        let a = ConstraintSet::from_constraints(vec![shared]);
        let b = ConstraintSet::from_constraints(vec![
            shared,
            Constraint::hard(ConstraintKind::MinDisks, ConstraintOp::Gt, 0),
        ]);
        ledger.probe_enqueued(ProbeId(1), &a, &index);
        ledger.probe_enqueued(ProbeId(2), &b, &index);
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 2);
        assert_eq!(ledger.distinct_instances(), 2);
        // Removing the pure-core probe keeps the shared instance alive.
        ledger.probe_removed(ProbeId(1), &index);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);
        assert_eq!(ledger.distinct_instances(), 2);
        ledger.probe_removed(ProbeId(2), &index);
        assert_eq!(ledger.distinct_instances(), 0);
    }
}
