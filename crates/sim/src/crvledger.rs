//! Incrementally maintained CRV demand/supply ledger.
//!
//! The CRV monitor historically rebuilt its lookup table every heartbeat by
//! scanning every worker queue and re-deriving per-kind supply — an
//! O(workers × probes × constraints) pass repeated every 9 simulated
//! seconds. This ledger keeps the same quantities continuously up to date
//! from the engine's probe-movement and slot-transition hooks, so a
//! heartbeat refresh becomes an O(kinds) read:
//!
//! * **Demand**: one unit per queued probe per constraint of its job's
//!   effective set, updated as probes enter and leave queues. The set a
//!   probe demands is interned at enqueue time (jobs' effective constraints
//!   are final before any of their probes arrive; the monitor's
//!   debug-assertions oracle cross-checks this every heartbeat).
//! * **Supply**: per kind, the number of *idle* workers satisfying at least
//!   one currently-demanded constraint instance of that kind. Per-instance
//!   feasibility lists come from
//!   [`FeasibilityIndex::feasible_single`] (cached inside the index) and
//!   are walked only when an instance's refcount transitions between zero
//!   and nonzero — i.e. only when the distinct-instance set changes.
//!   Idle↔busy transitions cost O(kinds).
//!
//! The ledger sits on the engine's per-probe hot path (every enqueue,
//! dispatch, steal, and migration goes through it), so its steady state is
//! hash-free: sets are interned once per *job* into a dense id (a job's
//! effective set is final before its first probe arrives), each queued
//! probe's set id lives in a dense vector indexed by the sequential probe
//! id, and per-constraint refcounts are plain vector slots addressed by
//! interned instance ids. Hash maps are only touched when a never-seen set
//! or instance is interned.
//!
//! All probe movement between queues and all slot transitions must go
//! through the [`crate::SimState`] / [`crate::SimCtx`] wrappers that feed
//! this ledger; mutating [`crate::Worker`] queues directly desynchronizes
//! it (the monitor's debug oracle will panic).

use std::collections::HashMap;

use phoenix_constraints::{Constraint, ConstraintKind, ConstraintSet, FeasibilityIndex};
use phoenix_traces::JobId;

use crate::probe::ProbeId;

/// Dense-id sentinel: "no interned set here".
const ABSENT: u32 = u32::MAX;

/// Continuously maintained CRV demand/supply counters (see module docs).
#[derive(Debug, Clone, Default)]
pub struct CrvLedger {
    /// Per kind: queued (probe, constraint) pairs demanding it.
    demand: [u64; ConstraintKind::COUNT],
    /// Per kind: idle workers satisfying ≥1 currently-demanded instance.
    idle_supply: [u64; ConstraintKind::COUNT],
    /// Interned constraint sets, by set id (kept for the debug oracle).
    sets: Vec<Vec<Constraint>>,
    /// Interned instance ids of each set, parallel to `sets`.
    set_instances: Vec<Vec<u32>>,
    set_ids: HashMap<Vec<Constraint>, u32>,
    /// Memoized set id per job (dense by job index, `ABSENT` until the
    /// job's first constrained probe is enqueued).
    job_sets: Vec<u32>,
    /// Interned set id of each queued *constrained* probe, dense by probe
    /// id (`ABSENT` = unconstrained or not queued).
    probe_set: Vec<u32>,
    /// Interned distinct constraint instances, by instance id.
    instances: Vec<Constraint>,
    instance_ids: HashMap<Constraint, u32>,
    /// Refcount per interned instance (parallel to `instances`).
    instance_refs: Vec<u64>,
    /// Instances with a nonzero refcount.
    demanded_instances: usize,
    /// Per in-range worker, per kind: demanded instances of that kind it
    /// satisfies (indexed by `worker - base`).
    sat_count: Vec<[u32; ConstraintKind::COUNT]>,
    /// Mirror of each in-range worker's idleness (indexed by
    /// `worker - base`).
    idle: Vec<bool>,
    /// First global worker id this ledger accounts for. Zero for the
    /// cluster-wide ledger; federated domain ledgers cover a contiguous
    /// `[base, base + idle.len())` slice and ignore everything outside it.
    base: usize,
    idle_workers: usize,
    queued_probes: usize,
    constrained_probes: usize,
}

impl CrvLedger {
    /// An empty ledger over `workers` all-idle workers.
    pub fn new(workers: usize) -> Self {
        Self::with_range(0, workers)
    }

    /// An empty ledger over the contiguous worker range
    /// `[base, base + len)`. Worker-indexed updates (idle transitions,
    /// per-instance supply walks) outside the range are ignored; probe
    /// demand ops are range-blind — the caller routes each probe to the
    /// ledger of the worker queue it sits on.
    pub fn with_range(base: usize, len: usize) -> Self {
        CrvLedger {
            sat_count: vec![[0; ConstraintKind::COUNT]; len],
            idle: vec![true; len],
            base,
            idle_workers: len,
            ..Default::default()
        }
    }

    /// Translates a global worker id into this ledger's dense slot, or
    /// `None` when the worker is outside the owned range.
    fn slot(&self, worker: usize) -> Option<usize> {
        worker
            .checked_sub(self.base)
            .filter(|&i| i < self.idle.len())
    }

    /// Queued (probe, constraint) pairs demanding `kind`.
    pub fn demand(&self, kind: ConstraintKind) -> u64 {
        self.demand[kind.index()]
    }

    /// Idle workers satisfying at least one currently-demanded instance of
    /// `kind`.
    pub fn idle_supply(&self, kind: ConstraintKind) -> u64 {
        self.idle_supply[kind.index()]
    }

    /// Total queued probes.
    pub fn queued_probes(&self) -> usize {
        self.queued_probes
    }

    /// Queued probes belonging to constrained jobs.
    pub fn constrained_probes(&self) -> usize {
        self.constrained_probes
    }

    /// Workers with no running task.
    pub fn idle_workers(&self) -> usize {
        self.idle_workers
    }

    /// Distinct constraint instances currently under demand.
    pub fn distinct_instances(&self) -> usize {
        self.demanded_instances
    }

    /// Records a probe of `job` demanding `set` entering some worker's
    /// queue. `set` must be the job's effective set — it is interned once
    /// per job and subsequent probes reuse the handle.
    pub fn probe_enqueued(
        &mut self,
        id: ProbeId,
        job: JobId,
        set: &ConstraintSet,
        feasibility: &FeasibilityIndex,
    ) {
        self.queued_probes += 1;
        if set.is_unconstrained() {
            return;
        }
        self.constrained_probes += 1;
        let job_idx = job.0 as usize;
        if self.job_sets.len() <= job_idx {
            self.job_sets.resize(job_idx + 1, ABSENT);
        }
        let mut set_id = self.job_sets[job_idx];
        if set_id == ABSENT {
            set_id = self.intern(set);
            self.job_sets[job_idx] = set_id;
        }
        debug_assert!(
            self.sets[set_id as usize]
                .iter()
                .copied()
                .eq(set.iter().copied()),
            "job {job:?} effective set changed after its first probe was interned"
        );
        let pid = usize::try_from(id.0).expect("probe id fits usize");
        if self.probe_set.len() <= pid {
            self.probe_set.resize(pid + 1, ABSENT);
        }
        debug_assert_eq!(
            self.probe_set[pid], ABSENT,
            "probe {id:?} enqueued twice without removal"
        );
        self.probe_set[pid] = set_id;
        for i in 0..self.set_instances[set_id as usize].len() {
            let inst = self.set_instances[set_id as usize][i] as usize;
            let c = self.instances[inst];
            self.demand[c.kind.index()] += 1;
            self.instance_refs[inst] += 1;
            if self.instance_refs[inst] == 1 {
                self.demanded_instances += 1;
                self.instance_added(&c, feasibility);
            }
        }
    }

    /// Records a queued probe leaving its worker's queue (dispatch, steal,
    /// recall, redundant-probe discard).
    pub fn probe_removed(&mut self, id: ProbeId, feasibility: &FeasibilityIndex) {
        debug_assert!(
            self.queued_probes > 0,
            "probe {id:?} removed from empty ledger"
        );
        self.queued_probes -= 1;
        let pid = usize::try_from(id.0).expect("probe id fits usize");
        let set_id = match self.probe_set.get(pid) {
            Some(&s) if s != ABSENT => s,
            _ => return, // unconstrained probe
        };
        self.probe_set[pid] = ABSENT;
        self.constrained_probes -= 1;
        for i in 0..self.set_instances[set_id as usize].len() {
            let inst = self.set_instances[set_id as usize][i] as usize;
            let c = self.instances[inst];
            self.demand[c.kind.index()] -= 1;
            debug_assert!(
                self.instance_refs[inst] > 0,
                "removed probe's instances are refcounted"
            );
            self.instance_refs[inst] -= 1;
            if self.instance_refs[inst] == 0 {
                self.demanded_instances -= 1;
                self.instance_removed(&c, feasibility);
            }
        }
    }

    /// Records `worker` transitioning idle → busy (first slot occupied).
    /// A no-op if already busy or outside the owned range.
    pub fn worker_busy(&mut self, worker: usize) {
        let Some(i) = self.slot(worker) else { return };
        if !self.idle[i] {
            return;
        }
        self.idle[i] = false;
        self.idle_workers -= 1;
        for (k, supply) in self.idle_supply.iter_mut().enumerate() {
            if self.sat_count[i][k] > 0 {
                *supply -= 1;
            }
        }
    }

    /// Records `worker` transitioning busy → idle (last slot freed).
    /// A no-op if already idle or outside the owned range.
    pub fn worker_idle(&mut self, worker: usize) {
        let Some(i) = self.slot(worker) else { return };
        if self.idle[i] {
            return;
        }
        self.idle[i] = true;
        self.idle_workers += 1;
        for (k, supply) in self.idle_supply.iter_mut().enumerate() {
            if self.sat_count[i][k] > 0 {
                *supply += 1;
            }
        }
    }

    /// A previously-undemanded instance became demanded: walk its feasible
    /// workers once (the cached list from the index), counting only the
    /// ones this ledger owns.
    fn instance_added(&mut self, c: &Constraint, feasibility: &FeasibilityIndex) {
        let k = c.kind.index();
        for &w in feasibility.feasible_single(c).iter() {
            let Some(i) = self.slot(w as usize) else {
                continue;
            };
            let sat = &mut self.sat_count[i][k];
            *sat += 1;
            if *sat == 1 && self.idle[i] {
                self.idle_supply[k] += 1;
            }
        }
    }

    /// The last probe demanding an instance left: reverse of
    /// [`CrvLedger::instance_added`].
    fn instance_removed(&mut self, c: &Constraint, feasibility: &FeasibilityIndex) {
        let k = c.kind.index();
        for &w in feasibility.feasible_single(c).iter() {
            let Some(i) = self.slot(w as usize) else {
                continue;
            };
            let sat = &mut self.sat_count[i][k];
            *sat -= 1;
            if *sat == 0 && self.idle[i] {
                self.idle_supply[k] -= 1;
            }
        }
    }

    /// Interns a constraint set (and each of its instances) into dense
    /// ids. Only reached once per distinct set — per-probe traffic goes
    /// through the `job_sets` memo.
    fn intern(&mut self, set: &ConstraintSet) -> u32 {
        let key: Vec<Constraint> = set.iter().copied().collect();
        if let Some(&id) = self.set_ids.get(&key) {
            return id;
        }
        let id = u32::try_from(self.sets.len()).expect("fewer than 2^32 distinct sets");
        let instances = key
            .iter()
            .map(|c| {
                if let Some(&i) = self.instance_ids.get(c) {
                    return i;
                }
                let i = u32::try_from(self.instances.len())
                    .expect("fewer than 2^32 distinct instances");
                self.instances.push(*c);
                self.instance_refs.push(0);
                self.instance_ids.insert(*c, i);
                i
            })
            .collect();
        self.sets.push(key.clone());
        self.set_instances.push(instances);
        self.set_ids.insert(key, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_constraints::{AttributeVector, ConstraintOp};

    fn machines() -> Vec<AttributeVector> {
        // Two big-core machines, two small-core ones.
        (0..4)
            .map(|i| AttributeVector {
                num_cores: if i < 2 { 16 } else { 2 },
                ..AttributeVector::default()
            })
            .collect()
    }

    fn cores_gt(value: u64) -> ConstraintSet {
        ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            value,
        )])
    }

    #[test]
    fn demand_and_supply_track_probe_lifecycle() {
        let index = FeasibilityIndex::new(machines());
        let mut ledger = CrvLedger::new(4);
        let set = cores_gt(4);
        ledger.probe_enqueued(ProbeId(1), JobId(0), &set, &index);
        ledger.probe_enqueued(ProbeId(2), JobId(0), &set, &index);
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 2);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);
        assert_eq!(ledger.constrained_probes(), 2);
        assert_eq!(ledger.distinct_instances(), 1);

        ledger.probe_removed(ProbeId(1), &index);
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 1);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);

        // Last demanding probe leaves: the instance (and its supply) clears.
        ledger.probe_removed(ProbeId(2), &index);
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 0);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 0);
        assert_eq!(ledger.distinct_instances(), 0);
        assert_eq!(ledger.queued_probes(), 0);
    }

    #[test]
    fn unconstrained_probes_only_count_queue_depth() {
        let index = FeasibilityIndex::new(machines());
        let mut ledger = CrvLedger::new(4);
        ledger.probe_enqueued(
            ProbeId(9),
            JobId(3),
            &ConstraintSet::unconstrained(),
            &index,
        );
        assert_eq!(ledger.queued_probes(), 1);
        assert_eq!(ledger.constrained_probes(), 0);
        ledger.probe_removed(ProbeId(9), &index);
        assert_eq!(ledger.queued_probes(), 0);
    }

    #[test]
    fn busy_workers_leave_the_supply() {
        let index = FeasibilityIndex::new(machines());
        let mut ledger = CrvLedger::new(4);
        ledger.probe_enqueued(ProbeId(1), JobId(0), &cores_gt(4), &index);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);
        ledger.worker_busy(0);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 1);
        assert_eq!(ledger.idle_workers(), 3);
        // Transition hooks are idempotent.
        ledger.worker_busy(0);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 1);
        ledger.worker_idle(0);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);
        assert_eq!(ledger.idle_workers(), 4);
    }

    #[test]
    fn overlapping_sets_share_instances() {
        let index = FeasibilityIndex::new(machines());
        let mut ledger = CrvLedger::new(4);
        let shared = Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 4);
        let a = ConstraintSet::from_constraints(vec![shared]);
        let b = ConstraintSet::from_constraints(vec![
            shared,
            Constraint::hard(ConstraintKind::MinDisks, ConstraintOp::Gt, 0),
        ]);
        ledger.probe_enqueued(ProbeId(1), JobId(0), &a, &index);
        ledger.probe_enqueued(ProbeId(2), JobId(1), &b, &index);
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 2);
        assert_eq!(ledger.distinct_instances(), 2);
        // Removing the pure-core probe keeps the shared instance alive.
        ledger.probe_removed(ProbeId(1), &index);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);
        assert_eq!(ledger.distinct_instances(), 2);
        ledger.probe_removed(ProbeId(2), &index);
        assert_eq!(ledger.distinct_instances(), 0);
    }

    #[test]
    fn range_ledger_only_counts_owned_workers() {
        let index = FeasibilityIndex::new(machines());
        // Domain owning only the two small-core machines (workers 2..4).
        let mut ledger = CrvLedger::with_range(2, 2);
        assert_eq!(ledger.idle_workers(), 2);
        ledger.probe_enqueued(ProbeId(1), JobId(0), &cores_gt(4), &index);
        // Both feasible workers (0, 1) are outside the range: no supply.
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 1);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 0);
        // Out-of-range transitions are ignored; in-range ones tracked.
        ledger.worker_busy(0);
        assert_eq!(ledger.idle_workers(), 2);
        ledger.worker_busy(3);
        assert_eq!(ledger.idle_workers(), 1);
        ledger.worker_idle(3);
        assert_eq!(ledger.idle_workers(), 2);

        // A constraint the small-core workers do satisfy contributes.
        let low = ConstraintSet::from_constraints(vec![Constraint::hard(
            ConstraintKind::NumCores,
            ConstraintOp::Gt,
            1,
        )]);
        ledger.probe_enqueued(ProbeId(2), JobId(1), &low, &index);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 2);
        ledger.probe_removed(ProbeId(2), &index);
        assert_eq!(ledger.idle_supply(ConstraintKind::NumCores), 0);
    }

    #[test]
    fn probe_ids_and_job_memo_reuse_dense_handles() {
        let index = FeasibilityIndex::new(machines());
        let mut ledger = CrvLedger::new(4);
        let set = cores_gt(4);
        // Re-enqueue after removal (migration) reuses the probe id slot.
        ledger.probe_enqueued(ProbeId(5), JobId(2), &set, &index);
        ledger.probe_removed(ProbeId(5), &index);
        ledger.probe_enqueued(ProbeId(5), JobId(2), &set, &index);
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 1);
        assert_eq!(ledger.constrained_probes(), 1);
        ledger.probe_removed(ProbeId(5), &index);
        assert_eq!(ledger.demand(ConstraintKind::NumCores), 0);
        assert_eq!(ledger.queued_probes(), 0);
    }
}
