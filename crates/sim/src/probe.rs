//! Task probes: the unit queued at workers.

use std::fmt;

use phoenix_traces::JobId;

use crate::time::SimTime;

/// Unique probe identifier (monotone per simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProbeId(pub u64);

impl fmt::Display for ProbeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "probe-{}", self.0)
    }
}

/// A queued probe.
///
/// Two flavours exist:
///
/// * **Speculative** (`bound_duration_us == None`): a late-binding
///   reservation. When the worker pops it, the job is asked for a task; if
///   every task has already been launched elsewhere the probe is discarded.
/// * **Bound** (`bound_duration_us == Some(d)`): an early-bound task (the
///   centralized path). Popping it always launches a task of duration `d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// Unique id.
    pub id: ProbeId,
    /// The job this probe belongs to.
    pub job: JobId,
    /// `Some(duration)` for early-bound tasks.
    pub bound_duration_us: Option<u64>,
    /// Scheduler-visible estimated task duration of the owning job,
    /// microseconds, snapshotted at probe creation (the job's estimate is
    /// immutable after trace load). Carrying it on the probe lets ranking
    /// and queue-work aggregation run without chasing the job table.
    pub est_duration_us: u64,
    /// Execution-time multiplier applied at launch (>1 when the admission
    /// controller relaxed a soft constraint for this placement).
    pub slowdown: f64,
    /// Time the probe was enqueued at its current worker.
    pub enqueued_at: SimTime,
    /// Number of times another probe bypassed this one through reordering
    /// (the paper's starvation `slack` counter).
    pub bypass_count: u32,
    /// Number of times this probe has been migrated between worker queues
    /// (Phoenix's dynamic probe rescheduling); bounded to avoid
    /// oscillation.
    pub migrations: u8,
    /// Number of fault-recovery retries this probe has been through (lost
    /// in flight, addressed to a dead worker, or killed by a crash); drives
    /// the capped exponential backoff of
    /// [`crate::FaultPlan::retry_delay`].
    pub retries: u8,
}

impl Probe {
    /// Whether the probe carries its task with it (early binding).
    pub fn is_bound(&self) -> bool {
        self.bound_duration_us.is_some()
    }

    /// Estimated service time, microseconds: the bound task's duration for
    /// early-bound probes, the job's estimated task duration (snapshotted
    /// at creation) for speculative ones.
    pub fn estimate_us(&self) -> u64 {
        self.bound_duration_us.unwrap_or(self.est_duration_us)
    }
}

impl fmt::Display for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}, {})",
            self.id,
            self.job,
            if self.is_bound() {
                "bound"
            } else {
                "speculative"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_flag_tracks_duration() {
        let mut p = Probe {
            id: ProbeId(1),
            job: JobId(0),
            bound_duration_us: None,
            est_duration_us: 1,
            slowdown: 1.0,
            enqueued_at: SimTime::ZERO,
            bypass_count: 0,
            migrations: 0,
            retries: 0,
        };
        assert!(!p.is_bound());
        p.bound_duration_us = Some(5);
        assert!(p.is_bound());
    }

    #[test]
    fn display_mentions_flavour() {
        let p = Probe {
            id: ProbeId(2),
            job: JobId(3),
            bound_duration_us: Some(5),
            est_duration_us: 1,
            slowdown: 1.0,
            enqueued_at: SimTime::ZERO,
            bypass_count: 0,
            migrations: 0,
            retries: 0,
        };
        assert!(p.to_string().contains("bound"));
    }
}
