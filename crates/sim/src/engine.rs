//! The discrete-event simulation engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phoenix_constraints::FeasibilityIndex;
use phoenix_traces::Trace;

use crate::audit::{AuditConfig, AuditReport, InvariantAuditor, TeeSink};
use crate::config::SimConfig;
use crate::context::SimCtx;
use crate::crvledger::CrvLedger;
use crate::event::{Event, EventQueue};
use crate::federation::FederationState;
use crate::jobstate::JobState;
use crate::metrics::{SimMetrics, SimResult};
use crate::probe::{Probe, ProbeId};
use crate::profile::{ProfileScope, Profiler};
use crate::scheduler::Scheduler;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceRecord, TraceSink, Tracer};
use crate::worker::{RunningTask, Worker, WorkerId};

/// Mutable simulation state shared between the engine and the scheduler
/// (through [`SimCtx`]).
#[derive(Debug)]
pub struct SimState {
    /// Current simulated time.
    pub now: crate::time::SimTime,
    /// Engine configuration.
    pub config: SimConfig,
    /// All workers, indexed by [`WorkerId`].
    pub workers: Vec<Worker>,
    /// All jobs, indexed by [`phoenix_traces::JobId`].
    pub jobs: Vec<JobState>,
    /// Feasibility oracle over the cluster's machine attributes.
    pub feasibility: FeasibilityIndex,
    /// Metrics under accumulation.
    pub metrics: SimMetrics,
    pub(crate) rng: StdRng,
    /// Dedicated RNG stream for fault injection. Separate from the policy
    /// RNG so that enabling/disabling faults never shifts the draws
    /// schedulers see, and a [`crate::FaultPlan::none`] run stays
    /// byte-identical to a build without the fault layer.
    pub(crate) fault_rng: StdRng,
    pub(crate) touched: Vec<WorkerId>,
    crv_ledger: CrvLedger,
    /// Federated domain state (`None` unless
    /// [`crate::config::FederationConfig::is_active`]). The global
    /// `crv_ledger` above stays authoritative; the per-domain ledgers in
    /// here are an additive partition of it, maintained by the same
    /// wrappers.
    federation: Option<Box<FederationState>>,
    /// The placement domain of the event currently being handled (the
    /// job's home domain, or the domain of the worker an event fired on).
    /// `None` outside federated runs and for cluster-wide control-plane
    /// events (heartbeats, gossip); read by the [`SimCtx`] sampling
    /// ladder.
    pub(crate) active_domain: Option<usize>,
    /// Per worker: virtual time of the crash currently keeping it down.
    crash_started: Vec<Option<u64>>,
    /// Closed `(crash_us, recover_us)` downtime intervals; open crashes
    /// are closed against the final makespan by [`finalize_result`]. Pure
    /// accounting for [`SimResult::downtime_us`] — not part of the digest.
    downtime_log: Vec<(u64, u64)>,
    next_probe: u64,
    next_task_seq: u64,
    /// Trace record dispatcher (no-op unless a sink is attached). Emits
    /// nothing into the simulation: no RNG draws, no metric writes — a
    /// traced run is byte-identical to an untraced one.
    pub(crate) tracer: Tracer,
    /// Wall-clock hot-path profiler (disabled by default).
    pub(crate) profiler: Profiler,
    /// Jobs neither complete nor failed, maintained incrementally so the
    /// fault layer's continue-striking check is O(1) instead of O(jobs).
    pub(crate) outstanding_jobs: usize,
}

/// XOR'd into the simulation seed to derive the fault RNG stream.
const FAULT_SEED_SALT: u64 = 0xF417_5EED_0BAD_C0DE;

impl SimState {
    pub(crate) fn next_probe_id(&mut self) -> ProbeId {
        let id = ProbeId(self.next_probe);
        self.next_probe += 1;
        id
    }

    /// The incrementally maintained CRV demand/supply ledger.
    pub fn crv_ledger(&self) -> &CrvLedger {
        &self.crv_ledger
    }

    /// The federated domain state, when federation is active.
    pub fn federation(&self) -> Option<&FederationState> {
        self.federation.as_deref()
    }

    /// Mutable federation state (engine and sampling-ladder stats).
    pub(crate) fn federation_mut(&mut self) -> Option<&mut FederationState> {
        self.federation.as_deref_mut()
    }

    /// Mirrors a probe-enqueued ledger update into the owning domain's
    /// ledger. No-op when federation is off.
    fn domain_probe_enqueued(&mut self, worker: WorkerId, probe: &Probe) {
        if let Some(fed) = self.federation.as_deref_mut() {
            let d = fed.domain_of_worker(worker.index());
            let set = &self.jobs[probe.job.0 as usize].effective_constraints;
            fed.ledger_mut(d)
                .probe_enqueued(probe.id, probe.job, set, &self.feasibility);
        }
    }

    /// Mirrors a probe-removed ledger update into the owning domain's
    /// ledger. No-op when federation is off.
    fn domain_probe_removed(&mut self, worker: WorkerId, probe: ProbeId) {
        if let Some(fed) = self.federation.as_deref_mut() {
            let d = fed.domain_of_worker(worker.index());
            fed.ledger_mut(d).probe_removed(probe, &self.feasibility);
        }
    }

    /// Mirrors an idle→busy transition into the owning domain's ledger.
    fn domain_worker_busy(&mut self, worker: WorkerId) {
        if let Some(fed) = self.federation.as_deref_mut() {
            let d = fed.domain_of_worker(worker.index());
            fed.ledger_mut(d).worker_busy(worker.index());
        }
    }

    /// Mirrors a busy→idle transition into the owning domain's ledger.
    fn domain_worker_idle(&mut self, worker: WorkerId) {
        if let Some(fed) = self.federation.as_deref_mut() {
            let d = fed.domain_of_worker(worker.index());
            fed.ledger_mut(d).worker_idle(worker.index());
        }
    }

    /// The trace dispatcher (read side: `enabled()` checks).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The trace dispatcher (emission side). Policy code emits via
    /// `tracer_mut().emit(|| …)`; the closure never runs without a sink.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The wall-clock profiler (read side: `begin()`).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The wall-clock profiler (accumulation side: `end(scope, started)`).
    pub fn profiler_mut(&mut self) -> &mut Profiler {
        &mut self.profiler
    }

    /// Appends `probe` to the tail of `worker`'s queue, keeping the CRV
    /// ledger in sync.
    ///
    /// All probe movement between queues must go through these
    /// `SimState`/[`SimCtx`] wrappers rather than [`Worker::enqueue`] /
    /// [`Worker::remove_probe`] directly, or the incremental monitor
    /// desyncs (and its debug oracle panics). Pure reordering
    /// ([`Worker::promote`]) needs no wrapper.
    pub fn enqueue_probe(&mut self, worker: WorkerId, probe: Probe) {
        let set = &self.jobs[probe.job.0 as usize].effective_constraints;
        self.crv_ledger
            .probe_enqueued(probe.id, probe.job, set, &self.feasibility);
        self.domain_probe_enqueued(worker, &probe);
        self.workers[worker.index()].enqueue(probe);
    }

    /// Inserts `probe` at the *front* of `worker`'s queue (sticky batch
    /// probing), keeping the CRV ledger in sync.
    pub fn enqueue_probe_front(&mut self, worker: WorkerId, probe: Probe) {
        let set = &self.jobs[probe.job.0 as usize].effective_constraints;
        self.crv_ledger
            .probe_enqueued(probe.id, probe.job, set, &self.feasibility);
        self.domain_probe_enqueued(worker, &probe);
        self.workers[worker.index()].enqueue_front(probe);
    }

    /// Removes and returns the probe at `index` of `worker`'s queue,
    /// keeping the CRV ledger in sync.
    pub fn remove_probe_at(&mut self, worker: WorkerId, index: usize) -> Probe {
        let probe = self.workers[worker.index()].remove_probe(index);
        self.crv_ledger.probe_removed(probe.id, &self.feasibility);
        self.domain_probe_removed(worker, probe.id);
        probe
    }

    /// Removes and returns every queued probe of `worker` matching
    /// `predicate` (work stealing), keeping the CRV ledger in sync.
    pub fn steal_probes_if(
        &mut self,
        worker: WorkerId,
        predicate: impl FnMut(&Probe) -> bool,
    ) -> Vec<Probe> {
        let stolen = self.workers[worker.index()].steal_if(predicate);
        for probe in &stolen {
            self.crv_ledger.probe_removed(probe.id, &self.feasibility);
        }
        if self.federation.is_some() {
            for probe in &stolen {
                let id = probe.id;
                self.domain_probe_removed(worker, id);
            }
        }
        stolen
    }

    /// Occupies a slot of `worker` with `task`, keeping the CRV ledger's
    /// idle-supply side in sync.
    pub fn start_task_on(&mut self, worker: WorkerId, task: RunningTask, now: SimTime) {
        let w = &mut self.workers[worker.index()];
        let was_idle = w.is_idle();
        w.start_task(task, now);
        if was_idle {
            self.crv_ledger.worker_busy(worker.index());
            self.domain_worker_busy(worker);
        }
    }

    /// Clears the slot of `worker` running sequence `seq`, keeping the CRV
    /// ledger's idle-supply side in sync.
    pub fn finish_task_on(&mut self, worker: WorkerId, seq: u64) -> RunningTask {
        let w = &mut self.workers[worker.index()];
        let task = w.finish_task(seq);
        if w.is_idle() {
            self.crv_ledger.worker_idle(worker.index());
            self.domain_worker_idle(worker);
        }
        task
    }

    /// Crashes `worker`: drops its queued probes, kills its running tasks,
    /// and marks it down, keeping the CRV ledger exact (a dead worker is
    /// never idle supply) and refunding the killed tasks' not-yet-executed
    /// time from the busy-time metric. Returns the casualties — the caller
    /// (engine or test harness) decides how to fail them over.
    pub fn crash_worker(&mut self, worker: WorkerId) -> (Vec<RunningTask>, Vec<Probe>) {
        debug_assert!(self.workers[worker.index()].is_alive(), "double crash");
        // Drain the queue through the ledger-aware path so each probe's
        // demand is subtracted exactly once.
        let dropped = self.steal_probes_if(worker, |_| true);
        let now = self.now;
        let w = &mut self.workers[worker.index()];
        let (killed, unspent) = w.take_running_tasks(now);
        w.set_alive(false);
        // Supply removal: dead counts as busy; idempotent if it already was.
        self.crv_ledger.worker_busy(worker.index());
        self.domain_worker_busy(worker);
        // Open a downtime interval for capacity accounting; closed by
        // recovery (or against the final makespan).
        self.crash_started[worker.index()] = Some(now.as_micros());
        self.metrics.busy_us = self.metrics.busy_us.saturating_sub(unspent);
        (killed, dropped)
    }

    /// Brings a crashed worker back up, idle with an empty queue, restoring
    /// its idle supply in the CRV ledger.
    pub fn recover_worker(&mut self, worker: WorkerId) {
        let w = &mut self.workers[worker.index()];
        debug_assert!(!w.is_alive(), "recovering a live worker");
        debug_assert!(w.is_idle() && w.queue_len() == 0, "crash did not drain");
        w.set_alive(true);
        self.crv_ledger.worker_idle(worker.index());
        self.domain_worker_idle(worker);
        if let Some(start) = self.crash_started[worker.index()].take() {
            self.downtime_log.push((start, self.now.as_micros()));
        }
    }

    /// Rebuilds the CRV ledger from scratch out of the current queues and
    /// slots. For tests and harnesses that mutate workers directly.
    pub fn rebuild_crv_ledger(&mut self) {
        let mut ledger = CrvLedger::new(self.workers.len());
        for (i, w) in self.workers.iter().enumerate() {
            if !w.is_idle() || !w.is_alive() {
                ledger.worker_busy(i);
            }
        }
        for w in &self.workers {
            for p in w.queue() {
                let set = &self.jobs[p.job.0 as usize].effective_constraints;
                ledger.probe_enqueued(p.id, p.job, set, &self.feasibility);
            }
        }
        self.crv_ledger = ledger;
        if let Some(fed) = self.federation.as_deref_mut() {
            fed.reset_ledgers();
            for (i, w) in self.workers.iter().enumerate() {
                let d = fed.domain_of_worker(i);
                if !w.is_idle() || !w.is_alive() {
                    fed.ledger_mut(d).worker_busy(i);
                }
                for p in w.queue() {
                    let set = &self.jobs[p.job.0 as usize].effective_constraints;
                    fed.ledger_mut(d)
                        .probe_enqueued(p.id, p.job, set, &self.feasibility);
                }
            }
        }
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
pub struct Simulation {
    state: SimState,
    events: EventQueue,
    scheduler: Box<dyn Scheduler>,
    /// Online invariant checker (`None` unless
    /// [`Simulation::enable_audit`] was called — the disabled cost is one
    /// branch per event, same discipline as the tracer and profiler).
    auditor: Option<Box<InvariantAuditor>>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("scheduler", &self.scheduler.name())
            .field("workers", &self.state.workers.len())
            .field("jobs", &self.state.jobs.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

impl Simulation {
    /// Builds a simulation of `trace` on the cluster described by
    /// `feasibility`, scheduled by `scheduler`.
    ///
    /// `seed` drives every random choice the scheduler makes (probe
    /// sampling, steal victims); the run is fully deterministic given
    /// `(trace, feasibility, scheduler, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is empty.
    pub fn new(
        config: SimConfig,
        feasibility: FeasibilityIndex,
        trace: &Trace,
        scheduler: Box<dyn Scheduler>,
        seed: u64,
    ) -> Self {
        assert!(!feasibility.is_empty(), "cluster must have workers");
        let n_workers = feasibility.len();
        let slots = config.slots_per_worker.max(1);
        let workers = (0..feasibility.len())
            .map(|_| Worker::with_slots(slots))
            .collect();
        let jobs: Vec<JobState> = trace.iter().map(JobState::from_job).collect();
        let mut events = EventQueue::new();
        for job in &jobs {
            events.schedule(job.arrival, Event::JobArrival(job.id.0));
        }
        let mut fault_rng = StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT);
        if config.faults.crashes_enabled() && !jobs.is_empty() {
            let interval = config.faults.crash_interval.as_micros().max(1);
            let at = SimDuration(interval / 2 + fault_rng.random_range(0..interval));
            let victim = WorkerId(fault_rng.random_range(0..n_workers) as u32);
            events.schedule(SimTime::ZERO + at, Event::WorkerCrash(victim));
        }
        let federation = config.federation;
        if federation.is_partitioned() && !jobs.is_empty() {
            // First gossip round; subsequent rounds chain themselves while
            // work is outstanding. Never scheduled at K <= 1 (byte parity).
            events.schedule(
                SimTime::ZERO + federation.gossip_interval,
                Event::GossipPublish,
            );
        }
        let metrics = SimMetrics::new(config.timeseries_bucket, config.record_task_waits);
        // Zero-task jobs are born complete, so the outstanding count is a
        // filter, not `jobs.len()`.
        let outstanding_jobs = jobs
            .iter()
            .filter(|j| !j.is_complete() && !j.is_failed())
            .count();
        Simulation {
            state: SimState {
                now: crate::time::SimTime::ZERO,
                config,
                workers,
                jobs,
                feasibility,
                metrics,
                rng: StdRng::seed_from_u64(seed),
                fault_rng,
                touched: Vec::new(),
                crv_ledger: CrvLedger::new(n_workers),
                federation: federation
                    .is_active()
                    .then(|| Box::new(FederationState::new(federation, n_workers))),
                active_domain: None,
                crash_started: vec![None; n_workers],
                downtime_log: Vec::new(),
                next_probe: 0,
                next_task_seq: 0,
                tracer: Tracer::disabled(),
                profiler: Profiler::disabled(),
                outstanding_jobs,
            },
            events,
            scheduler,
            auditor: None,
        }
    }

    /// Attaches a [`TraceSink`] receiving this run's [`TraceRecord`]s.
    /// Tracing observes only — it draws no randomness and writes no
    /// metrics, so the run's `digest()` is unchanged.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.state.tracer = Tracer::with_sink(sink);
    }

    /// Enables wall-clock profiling of the engine hot paths; the report is
    /// returned in [`SimResult::profile`].
    pub fn enable_profiling(&mut self) {
        self.state.profiler = Profiler::enabled();
    }

    /// Attaches an [`InvariantAuditor`] re-checking the engine's
    /// conservation laws after every event; the report is returned in
    /// [`SimResult::audit`]. Auditing observes only — it draws no
    /// randomness and writes no metrics, so the run's `digest()` is
    /// unchanged (the parity tests pin this).
    ///
    /// The auditor also tees the trace stream through a record-level
    /// checker, wrapping any sink attached so far — call
    /// [`Simulation::set_trace_sink`] *before* this, not after (a later
    /// `set_trace_sink` replaces the tee and silences the stream checks).
    pub fn enable_audit(&mut self, config: AuditConfig) {
        let auditor = Box::new(InvariantAuditor::new(config));
        let observer = auditor.stream_observer();
        self.state.tracer = match self.state.tracer.take_sink() {
            Some(existing) => Tracer::with_sink(Box::new(TeeSink {
                first: existing,
                second: observer,
            })),
            None => Tracer::with_sink(observer),
        };
        self.auditor = Some(auditor);
    }

    /// Read access to the state (tests and tools).
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// Consumes the simulation, returning its state without running it.
    ///
    /// Intended for tests and policy harnesses that drive state directly
    /// (e.g. exercising queue-reordering helpers on a realistic state).
    pub fn into_state_for_tests(self) -> SimState {
        self.state
    }

    /// Decomposes the simulation for the reference executor, which drives
    /// the same state and scheduler through its own naive event loop.
    pub(crate) fn into_parts(self) -> (SimState, EventQueue, Box<dyn Scheduler>) {
        (self.state, self.events, self.scheduler)
    }

    /// Runs the simulation to completion and returns the result.
    pub fn run(mut self) -> SimResult {
        loop {
            let started = self.state.profiler.begin();
            let popped = self.events.pop();
            self.state.profiler.end(ProfileScope::EventPop, started);
            let Some((t, event)) = popped else { break };
            debug_assert!(t >= self.state.now, "time must not go backwards");
            let heartbeat = self.auditor.is_some() && matches!(event, Event::SchedulerWakeup(_));
            self.state.now = t;
            self.state.active_domain = self.placement_domain(&event);
            let started = self.state.profiler.begin();
            self.handle(event);
            self.state.profiler.end(ProfileScope::HandleEvent, started);
            self.drain_touched();
            self.state.active_domain = None;
            if let Some(auditor) = self.auditor.as_deref_mut() {
                auditor.after_event(heartbeat, &self.state, &self.events);
            }
        }
        let audit = self.auditor.map(|a| a.finish());
        finalize_result(self.state, self.scheduler.name().to_string(), audit)
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::JobArrival(index) => {
                let id = phoenix_traces::JobId(index);
                let mut ctx = SimCtx {
                    state: &mut self.state,
                    events: &mut self.events,
                };
                self.scheduler.on_job_arrival(id, &mut ctx);
            }
            Event::ProbeArrival(worker, mut probe) => {
                if !self.state.workers[worker.index()].is_alive() {
                    // The target died while the probe was in flight: bounce
                    // it into the retry path after its backoff.
                    self.state.metrics.counters.probes_lost += 1;
                    self.schedule_probe_retry(probe);
                    return;
                }
                probe.enqueued_at = self.state.now;
                self.state.enqueue_probe(worker, probe);
                let mut ctx = SimCtx {
                    state: &mut self.state,
                    events: &mut self.events,
                };
                self.scheduler.on_probe_enqueued(worker, &mut ctx);
                self.state.touched.push(worker);
            }
            Event::TaskFinish(worker, seq) => {
                if !self.state.workers[worker.index()].has_running_seq(seq) {
                    // Stale completion of a task killed by a crash; its
                    // retry probe already carries the work elsewhere.
                    return;
                }
                let task = self.state.finish_task_on(worker, seq);
                self.state.metrics.counters.tasks_completed += 1;
                let job_idx = task.job.0 as usize;
                let done = self.state.jobs[job_idx].complete_task(self.state.now);
                if self.state.now > self.state.metrics.makespan {
                    self.state.metrics.makespan = self.state.now;
                }
                if done {
                    if !self.state.jobs[job_idx].is_failed() {
                        // The job just left the outstanding set (a failed
                        // job already left it when it was failed).
                        self.state.outstanding_jobs -= 1;
                    }
                    let snapshot = self.state.jobs[job_idx].clone();
                    self.state.metrics.record_job_completion(&snapshot);
                    let mut ctx = SimCtx {
                        state: &mut self.state,
                        events: &mut self.events,
                    };
                    self.scheduler.on_job_complete(task.job, &mut ctx);
                }
                let mut ctx = SimCtx {
                    state: &mut self.state,
                    events: &mut self.events,
                };
                self.scheduler
                    .on_task_finish(worker, task.job, task.duration_us, &mut ctx);
                self.state.touched.push(worker);
            }
            Event::SchedulerWakeup(token) => {
                let mut ctx = SimCtx {
                    state: &mut self.state,
                    events: &mut self.events,
                };
                self.scheduler.on_wakeup(token, &mut ctx);
            }
            Event::WorkerCrash(worker) => {
                // Chain the next strike first (gated on outstanding work so
                // the event loop terminates once the trace is done).
                self.schedule_next_crash();
                if self.state.workers[worker.index()].is_alive() {
                    self.apply_crash(worker);
                }
            }
            Event::WorkerRecover(worker) => {
                self.state.recover_worker(worker);
                self.state.metrics.counters.worker_recoveries += 1;
                let at_us = self.state.now.as_micros();
                self.state.tracer.emit(|| TraceRecord::Recover {
                    at_us,
                    worker: worker.0,
                });
                let mut ctx = SimCtx {
                    state: &mut self.state,
                    events: &mut self.events,
                };
                self.scheduler.on_worker_recover(worker, &mut ctx);
            }
            Event::ProbeRetry(probe) => {
                let mut ctx = SimCtx {
                    state: &mut self.state,
                    events: &mut self.events,
                };
                self.scheduler.on_probe_retry(probe, &mut ctx);
            }
            Event::GossipPublish => {
                // Chain the next round first (gated on outstanding work,
                // like the crash chain, so the event loop terminates).
                self.schedule_next_gossip();
                // Partition oracle: the domain ledgers must tile the global
                // one — any drift means a wrapper bypassed the mirrors.
                #[cfg(debug_assertions)]
                {
                    let global = self.state.crv_ledger().queued_probes();
                    if let Some(fed) = self.state.federation() {
                        let sum: usize = (0..fed.domains())
                            .map(|d| fed.ledger(d).queued_probes())
                            .sum();
                        debug_assert_eq!(sum, global, "domain ledgers desynced from global");
                    }
                }
                let now = self.state.now;
                let mut deliver_after = None;
                if let Some(fed) = self.state.federation_mut() {
                    if fed.publish(now) {
                        deliver_after = Some(fed.config().staleness);
                    }
                }
                if let Some(staleness) = deliver_after {
                    self.events.schedule(now + staleness, Event::GossipDeliver);
                }
            }
            Event::GossipDeliver => {
                if let Some(fed) = self.state.federation_mut() {
                    fed.deliver();
                }
            }
        }
    }

    /// The placement domain of `event` under a partitioned federation:
    /// job-scoped events belong to the job's home domain, worker-scoped
    /// events to the worker's domain, and control-plane events (wakeups,
    /// gossip) to none. `None` whenever federation is off or single-domain.
    fn placement_domain(&self, event: &Event) -> Option<usize> {
        let fed = self.state.federation.as_deref()?;
        if !fed.config().is_partitioned() {
            return None;
        }
        match event {
            Event::JobArrival(index) => Some(fed.domain_of_job(*index)),
            Event::ProbeRetry(probe) => Some(fed.domain_of_job(probe.job.0)),
            Event::ProbeArrival(worker, _)
            | Event::TaskFinish(worker, _)
            | Event::WorkerCrash(worker)
            | Event::WorkerRecover(worker) => Some(fed.domain_of_worker(worker.index())),
            Event::SchedulerWakeup(_) | Event::GossipPublish | Event::GossipDeliver => None,
        }
    }

    /// Chains the next gossip round while any job still has work
    /// outstanding. Gossip draws no randomness — the policy and fault RNG
    /// streams are untouched, so a K-domain run is reproducible and a
    /// K <= 1 run (which never schedules gossip) stays byte-identical to
    /// the centralized engine.
    fn schedule_next_gossip(&mut self) {
        let Some(fed) = self.state.federation() else {
            return;
        };
        if !fed.config().is_partitioned() || self.state.outstanding_jobs == 0 {
            return;
        }
        let interval = fed.config().gossip_interval;
        self.events
            .schedule(self.state.now + interval, Event::GossipPublish);
    }

    /// Bounces a casualty probe into the retry path: schedules a
    /// [`Event::ProbeRetry`] after the probe's current backoff and bumps
    /// its retry count.
    fn schedule_probe_retry(&mut self, mut probe: Probe) {
        let backoff = self.state.config.faults.retry_delay(probe.retries);
        probe.retries = probe.retries.saturating_add(1);
        self.events
            .schedule(self.state.now + backoff, Event::ProbeRetry(probe));
    }

    /// Schedules the next crash strike (jittered interval, uniform victim)
    /// while any job still has work outstanding.
    fn schedule_next_crash(&mut self) {
        if !self.state.config.faults.crashes_enabled() {
            return;
        }
        // Incremental counter instead of an O(jobs) rescan per strike; the
        // oracle below keeps it honest in debug builds.
        debug_assert_eq!(
            self.state.outstanding_jobs,
            self.state
                .jobs
                .iter()
                .filter(|j| !j.is_complete() && !j.is_failed())
                .count(),
            "outstanding-jobs counter desynced from the job table"
        );
        if self.state.outstanding_jobs == 0 {
            return;
        }
        let interval = self.state.config.faults.crash_interval.as_micros().max(1);
        let n = self.state.workers.len();
        let at = SimDuration(interval / 2 + self.state.fault_rng.random_range(0..interval));
        let victim = WorkerId(self.state.fault_rng.random_range(0..n) as u32);
        self.events
            .schedule(self.state.now + at, Event::WorkerCrash(victim));
    }

    /// Delivers a crash strike to a live worker: kills its running tasks,
    /// drops its queued probes, fails every casualty over into the retry
    /// path, and schedules the recovery.
    fn apply_crash(&mut self, worker: WorkerId) {
        self.state.metrics.counters.worker_crashes += 1;
        let (killed, dropped) = self.state.crash_worker(worker);
        let at_us = self.state.now.as_micros();
        let (n_killed, n_dropped) = (killed.len() as u32, dropped.len() as u32);
        self.state.tracer.emit(|| TraceRecord::Crash {
            at_us,
            worker: worker.0,
            killed: n_killed,
            dropped: n_dropped,
        });
        for probe in dropped {
            self.state.metrics.counters.probes_lost += 1;
            self.schedule_probe_retry(probe);
        }
        for task in killed {
            self.state.metrics.counters.tasks_killed += 1;
            let job_idx = task.job.0 as usize;
            if self.state.jobs[job_idx].is_failed() {
                // Failed jobs' tasks are cancelled work; nothing to retry.
                continue;
            }
            let bound_duration_us = if task.bound {
                // Early-bound payload travels with its retry probe.
                Some(task.raw_duration_us)
            } else {
                // Late-bound launch is undone: the duration returns to the
                // job's pending pool and a fresh speculative probe will
                // reclaim it (or be discarded as redundant if a sibling
                // probe got there first).
                self.state.jobs[job_idx].requeue_task(task.raw_duration_us);
                self.state.metrics.counters.requeued_tasks += 1;
                None
            };
            let retry = Probe {
                id: self.state.next_probe_id(),
                job: task.job,
                bound_duration_us,
                est_duration_us: self.state.jobs[job_idx].estimated_task_us,
                slowdown: task.slowdown,
                enqueued_at: self.state.now,
                bypass_count: 0,
                migrations: 0,
                retries: 0,
            };
            self.schedule_probe_retry(retry);
        }
        let downtime = self.state.config.faults.downtime.as_micros();
        let back_up = if downtime > 0 {
            SimDuration(downtime / 2 + self.state.fault_rng.random_range(0..downtime))
        } else {
            SimDuration(1)
        };
        self.events
            .schedule(self.state.now + back_up, Event::WorkerRecover(worker));
        let mut ctx = SimCtx {
            state: &mut self.state,
            events: &mut self.events,
        };
        self.scheduler.on_worker_crash(worker, &mut ctx);
    }

    fn drain_touched(&mut self) {
        while let Some(worker) = self.state.touched.pop() {
            // Conservation audit: a policy hook may have reordered the
            // queue through `Worker::queue_mut`; verify it did not desync
            // the cached bound-work aggregate.
            #[cfg(debug_assertions)]
            self.state.workers[worker.index()].audit_bound_work();
            let started = self.state.profiler.begin();
            self.try_dispatch(worker);
            self.state.profiler.end(ProfileScope::Dispatch, started);
        }
    }

    /// Serves a worker's queue while it has free slots: pops probes in
    /// policy order, discards redundant speculative probes for free, and
    /// launches probes that yield tasks.
    fn try_dispatch(&mut self, worker: WorkerId) {
        loop {
            let w = &self.state.workers[worker.index()];
            if !w.is_alive() || !w.has_free_slot() || w.queue_len() == 0 {
                return;
            }
            let Some(idx) = self.scheduler.select_probe(worker, &self.state) else {
                return;
            };
            let probe = self.state.remove_probe_at(worker, idx);
            let job_idx = probe.job.0 as usize;
            let (raw_duration_us, fetch_delay) = match probe.bound_duration_us {
                // Early-bound task: the payload travelled with the probe.
                Some(d) => (d, SimDuration::ZERO),
                None => {
                    if !self.state.jobs[job_idx].has_pending() {
                        // Late binding win: every task already launched
                        // elsewhere; drop the redundant probe.
                        self.state.metrics.counters.redundant_probes += 1;
                        continue;
                    }
                    // Ask the job's scheduler for a task: one round trip.
                    let d = self.state.jobs[job_idx].take_task();
                    (d, self.state.config.rtt())
                }
            };
            if let Some(auditor) = self.auditor.as_deref_mut() {
                // Every actual launch (not redundant-probe discards) is
                // re-verified against the job's hard constraints.
                auditor.check_placement(&self.state, worker, probe.job);
            }
            let clock_factor = if self.state.config.scale_duration_by_clock {
                let clock = self.state.feasibility.machines()[worker.index()].cpu_clock_mhz;
                f64::from(self.state.config.reference_clock_mhz) / f64::from(clock.max(1))
            } else {
                1.0
            };
            // Clamp to 1 us once, here: sub-microsecond tasks round to a
            // zero duration, but the engine schedules their finish 1 us
            // out. Storing the unclamped value would desync every
            // consumer of RunningTask::duration_us (busy-time accounting,
            // estimator service records, scheduler callbacks) from the
            // interval the worker is actually occupied.
            let duration_us = (((raw_duration_us as f64) * probe.slowdown.max(1.0) * clock_factor)
                .round() as u64)
                .max(1);
            if probe.slowdown > 1.0 {
                self.state.metrics.counters.relaxed_tasks += 1;
            }
            let start = self.state.now + fetch_delay;
            let finish = start + SimDuration(duration_us);
            let now = self.state.now;
            {
                // Borrow-split so the job's wait accumulator and the
                // metrics sink can be touched in one pass.
                let SimState { jobs, metrics, .. } = &mut self.state;
                let job = &mut jobs[job_idx];
                let wait = start.since(job.arrival);
                job.wait_sum_us += wait.as_micros();
                metrics.record_task_wait(job, wait, now);
            }
            let seq = self.state.next_task_seq;
            self.state.next_task_seq += 1;
            self.state.start_task_on(
                worker,
                RunningTask {
                    job: probe.job,
                    finish_at: finish,
                    duration_us,
                    raw_duration_us,
                    slowdown: probe.slowdown,
                    bound: probe.is_bound(),
                    seq,
                },
                now,
            );
            self.state.metrics.busy_us += finish.since(now).as_micros();
            self.events.schedule(finish, Event::TaskFinish(worker, seq));
            // Multi-slot workers may admit further probes right away.
            if self.state.workers[worker.index()].has_free_slot() {
                continue;
            }
            return;
        }
    }
}

/// Builds the [`SimResult`] out of a finished run's state — the shared
/// epilogue of [`Simulation::run`] and the reference executor (the epilogue
/// summarizes; the content it summarizes was computed independently).
pub(crate) fn finalize_result(
    mut state: SimState,
    scheduler: String,
    audit: Option<AuditReport>,
) -> SimResult {
    state.tracer.flush();
    // Close still-open crash intervals against the end of the run and sum
    // per-worker downtime, clamped to the final makespan (capacity lost
    // after the last task finished is outside the utilization window).
    let final_us = state.metrics.makespan.as_micros();
    for started in &mut state.crash_started {
        if let Some(start) = started.take() {
            state.downtime_log.push((start, final_us));
        }
    }
    let downtime_us: u64 = state
        .downtime_log
        .iter()
        .map(|&(start, end)| end.min(final_us).saturating_sub(start.min(final_us)))
        .sum();
    let incomplete = state
        .jobs
        .iter()
        .filter(|j| !j.is_complete() && !j.is_failed())
        .count();
    let lost_tasks: u64 = state
        .jobs
        .iter()
        .filter(|j| !j.is_failed())
        .map(|j| (j.num_tasks() - j.completed_tasks()) as u64)
        .sum();
    let job_outcomes = state
        .jobs
        .iter()
        .map(|j| crate::metrics::JobOutcome {
            job: j.id,
            short: j.short,
            user: j.user,
            constrained: j.is_constrained(),
            response_s: j.response_time().map(|d| d.as_secs_f64()),
            mean_wait_s: j.mean_wait().map(|d| d.as_secs_f64()),
            ideal_s: j.max_task_us as f64 / 1e6,
            failed: j.is_failed(),
        })
        .collect();
    SimResult {
        scheduler,
        workers: state.workers.len(),
        slots_per_worker: state.config.slots_per_worker.max(1),
        counters: state.metrics.counters,
        metrics: state.metrics,
        incomplete_jobs: incomplete,
        lost_tasks,
        job_outcomes,
        downtime_us,
        federation: state.federation.as_deref().map(|f| f.stats),
        profile: state.profiler.report(),
        audit,
    }
}
