//! The discrete-event queue.
//!
//! A two-tier calendar queue: events inside the current ~268 s window live
//! in fixed-width time buckets (65.536 ms each) and cost O(1) amortized to
//! push and pop; events beyond the window wait in an overflow heap and are
//! transferred in bulk whenever the window advances. Buckets are sorted
//! lazily — a bucket is only ordered when the pop cursor actually reaches
//! it, so same-timestamp bursts are sorted once and then drained O(1) per
//! event. The pop order is exactly `(time, seq)` — identical to the former
//! `BinaryHeap` implementation, including FIFO tie-breaks among same-time
//! events (property-tested against a heap oracle in
//! `tests/event_queue_properties.rs`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::probe::Probe;
use crate::time::SimTime;
use crate::worker::WorkerId;

/// A simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The `index`-th job of the trace arrives at the scheduler.
    JobArrival(u32),
    /// A probe (speculative or bound) reaches a worker's queue after its
    /// network delay.
    ProbeArrival(WorkerId, Probe),
    /// The task with the given engine sequence number finishes on a
    /// worker.
    TaskFinish(WorkerId, u64),
    /// A scheduler-requested wakeup (heartbeats, delayed actions). The token
    /// is opaque to the engine.
    SchedulerWakeup(u64),
    /// Fault injection: the worker crashes, killing its running tasks and
    /// dropping its queued probes.
    WorkerCrash(WorkerId),
    /// Fault injection: a crashed worker comes back up, idle and empty.
    WorkerRecover(WorkerId),
    /// A probe that was lost, killed, or addressed to a dead worker comes
    /// up for re-placement after its backoff; handled by
    /// [`crate::Scheduler::on_probe_retry`].
    ProbeRetry(Probe),
    /// Federation: every domain snapshots its ledger into a summary batch
    /// (and chains the next round). Only scheduled with two or more
    /// domains; draws no randomness.
    GossipPublish,
    /// Federation: the oldest published-but-undelivered summary batch
    /// becomes visible (fires `staleness` after its publish).
    GossipDeliver,
}

/// An event scheduled at a time, with a sequence number breaking ties
/// deterministically (FIFO among same-time events).
#[derive(Debug, Clone)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Width of one calendar bucket in microseconds (65.536 ms). A power of
/// two so the bucket index is a shift, not a division.
const BUCKET_BITS: u32 = 16;
const BUCKET_WIDTH: u64 = 1 << BUCKET_BITS;
/// Buckets per window. At the paper's event densities (~100 events per
/// second of simulated time) a bucket holds a handful of events.
const NUM_BUCKETS: usize = 4096;
/// Time span of the near window (~268 s of simulated time).
const WINDOW: u64 = BUCKET_WIDTH * NUM_BUCKETS as u64;

/// A deterministic future-event list (two-tier calendar queue).
#[derive(Debug)]
pub struct EventQueue {
    /// Near window: `buckets[i]` holds events with
    /// `base + i*BUCKET_WIDTH <= t < base + (i+1)*BUCKET_WIDTH`.
    buckets: Vec<Vec<Scheduled>>,
    /// Per-bucket "needs sorting" flag; set on push, cleared when the pop
    /// cursor sorts the bucket (descending, so `Vec::pop` yields the min).
    dirty: Vec<bool>,
    /// First bucket index that may still hold events; buckets before it
    /// are empty. Only advances while searching for the next event.
    cursor: usize,
    /// Start of the near window. Always a multiple of `WINDOW`.
    base: u64,
    /// Events at or beyond `base + WINDOW`, transferred into buckets when
    /// the window advances past the last near event.
    far: BinaryHeap<Scheduled>,
    len: usize,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            dirty: vec![false; NUM_BUCKETS],
            cursor: 0,
            base: 0,
            far: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
        }
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_scheduled(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    fn push_scheduled(&mut self, s: Scheduled) {
        if s.time.0 < self.base {
            // Scheduling before the window start only happens when a test
            // drives the queue with non-monotone times (the engine never
            // schedules in the past); rewind the whole window to cover it.
            self.rebase(s.time.0);
        }
        self.len += 1;
        if s.time.0 < self.base + WINDOW {
            let idx = ((s.time.0 - self.base) >> BUCKET_BITS) as usize;
            // Non-monotone test drivers may also land behind the cursor
            // inside the window; pull the cursor back so pop re-scans.
            if idx < self.cursor {
                self.cursor = idx;
            }
            self.buckets[idx].push(s);
            self.dirty[idx] = true;
        } else {
            self.far.push(s);
        }
    }

    /// Rewinds the window so it starts at or before `t`, rehoming every
    /// pending event. O(len); never hit by the monotone engine.
    fn rebase(&mut self, t: u64) {
        let mut pending: Vec<Scheduled> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            pending.append(b);
        }
        pending.extend(self.far.drain());
        self.dirty.iter_mut().for_each(|d| *d = false);
        self.base = t / WINDOW * WINDOW;
        self.cursor = 0;
        self.len = 0;
        for s in pending {
            self.push_scheduled(s);
        }
    }

    /// Advances the window to the earliest far event and moves every far
    /// event that now fits into the buckets. Caller guarantees the near
    /// window is empty and `far` is not.
    fn advance_window(&mut self) {
        let earliest = self.far.peek().expect("advance_window on empty far").time.0;
        self.base = earliest / WINDOW * WINDOW;
        self.cursor = ((earliest - self.base) >> BUCKET_BITS) as usize;
        let limit = self.base + WINDOW;
        while let Some(s) = self.far.peek() {
            if s.time.0 >= limit {
                break;
            }
            let s = self.far.pop().expect("peeked");
            let idx = ((s.time.0 - self.base) >> BUCKET_BITS) as usize;
            self.buckets[idx].push(s);
            self.dirty[idx] = true;
        }
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        if self.len == 0 {
            return None;
        }
        loop {
            while self.cursor < NUM_BUCKETS {
                if !self.buckets[self.cursor].is_empty() {
                    let idx = self.cursor;
                    if self.dirty[idx] {
                        if self.buckets[idx].len() > 1 {
                            self.buckets[idx]
                                .sort_unstable_by_key(|s| std::cmp::Reverse((s.time, s.seq)));
                        }
                        self.dirty[idx] = false;
                    }
                    let s = self.buckets[idx].pop().expect("non-empty bucket");
                    self.len -= 1;
                    return Some((s.time, s.event));
                }
                self.cursor += 1;
            }
            debug_assert!(!self.far.is_empty(), "len > 0 but near and far empty");
            self.advance_window();
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the pending events in unspecified order (the invariant
    /// auditor scans for in-flight probes; it never consumes).
    pub(crate) fn pending_events(&self) -> impl Iterator<Item = &Event> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter())
            .chain(self.far.iter())
            .map(|s| &s.event)
    }

    /// Drains every pending event, unordered, keeping the assigned
    /// `(time, seq)` pairs — the reference executor absorbs them into its
    /// naive flat list and re-derives the ordering itself. The sequence
    /// counter is *not* reset, so later schedules keep numbering from where
    /// the engine left off.
    pub(crate) fn drain_unordered(&mut self) -> Vec<(SimTime, u64, Event)> {
        let mut out = Vec::with_capacity(self.len);
        for (i, b) in self.buckets.iter_mut().enumerate() {
            out.extend(b.drain(..).map(|s| (s.time, s.seq, s.event)));
            self.dirty[i] = false;
        }
        out.extend(self.far.drain().map(|s| (s.time, s.seq, s.event)));
        self.len = 0;
        self.cursor = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), Event::JobArrival(3));
        q.schedule(SimTime(10), Event::JobArrival(1));
        q.schedule(SimTime(20), Event::JobArrival(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), Event::JobArrival(1));
        q.schedule(SimTime(5), Event::JobArrival(2));
        q.schedule(SimTime(5), Event::JobArrival(3));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::JobArrival(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), Event::SchedulerWakeup(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn crosses_window_boundaries_in_order() {
        let mut q = EventQueue::new();
        // Events spread over several windows, pushed shuffled, with ties
        // straddling an exact window boundary.
        let times = [
            WINDOW * 3 + 7,
            5,
            WINDOW,
            WINDOW - 1,
            WINDOW * 2 + BUCKET_WIDTH,
            WINDOW,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), Event::JobArrival(i as u32));
        }
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::JobArrival(i) => (t.0, i),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            order,
            vec![
                (5, 1),
                (WINDOW - 1, 3),
                (WINDOW, 2),
                (WINDOW, 5),
                (WINDOW * 2 + BUCKET_WIDTH, 4),
                (WINDOW * 3 + 7, 0),
            ]
        );
    }

    #[test]
    fn interleaved_push_pop_at_current_time() {
        // The engine schedules zero-delay events at the time it just
        // popped; they must come out before anything later.
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), Event::JobArrival(0));
        q.schedule(SimTime(200), Event::JobArrival(1));
        let (t, _) = q.pop().expect("first");
        assert_eq!(t.0, 100);
        q.schedule(SimTime(100), Event::JobArrival(2));
        q.schedule(SimTime(150), Event::JobArrival(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![100, 150, 200]);
    }

    #[test]
    fn bucket_edge_event_lands_in_the_next_bucket() {
        // t = BUCKET_WIDTH is the first instant of bucket 1 and
        // t = BUCKET_WIDTH - 1 the last of bucket 0; an exact-edge event
        // must not be misfiled into the earlier bucket (or pop late).
        let mut q = EventQueue::new();
        q.schedule(SimTime(BUCKET_WIDTH), Event::JobArrival(0));
        q.schedule(SimTime(BUCKET_WIDTH - 1), Event::JobArrival(1));
        q.schedule(SimTime(BUCKET_WIDTH + 1), Event::JobArrival(2));
        // Same-edge tie: FIFO after the first edge event.
        q.schedule(SimTime(BUCKET_WIDTH), Event::JobArrival(3));
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::JobArrival(i) => (t.0, i),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            order,
            vec![
                (BUCKET_WIDTH - 1, 1),
                (BUCKET_WIDTH, 0),
                (BUCKET_WIDTH, 3),
                (BUCKET_WIDTH + 1, 2),
            ]
        );
    }

    #[test]
    fn window_edge_event_goes_far_and_comes_back() {
        // t = WINDOW - 1 is the last near instant and t = WINDOW the first
        // far one; the pop sequence must cross the edge seamlessly.
        let mut q = EventQueue::new();
        q.schedule(SimTime(WINDOW), Event::JobArrival(0));
        q.schedule(SimTime(WINDOW - 1), Event::JobArrival(1));
        assert_eq!(q.len(), 2);
        let (t1, e1) = q.pop().expect("near event");
        assert_eq!((t1.0, e1), (WINDOW - 1, Event::JobArrival(1)));
        let (t2, e2) = q.pop().expect("far event after window advance");
        assert_eq!((t2.0, e2), (WINDOW, Event::JobArrival(0)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn window_advance_drains_far_heap_in_fifo_time_order() {
        // Far events spread over two later windows, pushed out of order
        // with same-time ties: each window advance must surface exactly
        // the events of the next window, (time, seq)-FIFO, and keep the
        // rest in the heap for the advance after that.
        let last_bucket = WINDOW + BUCKET_WIDTH * (NUM_BUCKETS as u64 - 1);
        let mut q = EventQueue::new();
        q.schedule(SimTime(WINDOW * 2 + 5), Event::JobArrival(0));
        q.schedule(SimTime(WINDOW + 5), Event::JobArrival(1));
        q.schedule(SimTime(WINDOW + 5), Event::JobArrival(2));
        q.schedule(SimTime(WINDOW * 2 + 5), Event::JobArrival(3));
        q.schedule(SimTime(last_bucket), Event::JobArrival(4));
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::JobArrival(i) => (t.0, i),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            order,
            vec![
                (WINDOW + 5, 1),
                (WINDOW + 5, 2),
                (last_bucket, 4),
                (WINDOW * 2 + 5, 0),
                (WINDOW * 2 + 5, 3),
            ]
        );
    }

    #[test]
    fn non_monotone_pushes_rebase() {
        // Test drivers may schedule before the current window; the queue
        // rewinds instead of misordering.
        let mut q = EventQueue::new();
        q.schedule(SimTime(WINDOW * 5), Event::JobArrival(0));
        let _ = q.pop();
        q.schedule(SimTime(3), Event::JobArrival(1));
        q.schedule(SimTime(WINDOW * 6), Event::JobArrival(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![3, WINDOW * 6]);
    }
}
