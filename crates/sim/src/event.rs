//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::probe::Probe;
use crate::time::SimTime;
use crate::worker::WorkerId;

/// A simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The `index`-th job of the trace arrives at the scheduler.
    JobArrival(u32),
    /// A probe (speculative or bound) reaches a worker's queue after its
    /// network delay.
    ProbeArrival(WorkerId, Probe),
    /// The task with the given engine sequence number finishes on a
    /// worker.
    TaskFinish(WorkerId, u64),
    /// A scheduler-requested wakeup (heartbeats, delayed actions). The token
    /// is opaque to the engine.
    SchedulerWakeup(u64),
    /// Fault injection: the worker crashes, killing its running tasks and
    /// dropping its queued probes.
    WorkerCrash(WorkerId),
    /// Fault injection: a crashed worker comes back up, idle and empty.
    WorkerRecover(WorkerId),
    /// A probe that was lost, killed, or addressed to a dead worker comes
    /// up for re-placement after its backoff; handled by
    /// [`crate::Scheduler::on_probe_retry`].
    ProbeRetry(Probe),
}

/// An event scheduled at a time, with a sequence number breaking ties
/// deterministically (FIFO among same-time events).
#[derive(Debug, Clone)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Iterates the pending events in unspecified order (the invariant
    /// auditor scans for in-flight probes; it never consumes).
    pub(crate) fn pending_events(&self) -> impl Iterator<Item = &Event> {
        self.heap.iter().map(|s| &s.event)
    }

    /// Drains every pending event, unordered, keeping the assigned
    /// `(time, seq)` pairs — the reference executor absorbs them into its
    /// naive flat list and re-derives the ordering itself. The sequence
    /// counter is *not* reset, so later schedules keep numbering from where
    /// the engine left off.
    pub(crate) fn drain_unordered(&mut self) -> Vec<(SimTime, u64, Event)> {
        self.heap
            .drain()
            .map(|s| (s.time, s.seq, s.event))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), Event::JobArrival(3));
        q.schedule(SimTime(10), Event::JobArrival(1));
        q.schedule(SimTime(20), Event::JobArrival(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), Event::JobArrival(1));
        q.schedule(SimTime(5), Event::JobArrival(2));
        q.schedule(SimTime(5), Event::JobArrival(3));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::JobArrival(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), Event::SchedulerWakeup(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
