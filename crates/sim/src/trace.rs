//! Zero-cost-when-disabled event tracing for the decisions the paper
//! reasons about.
//!
//! The engine and the schedulers emit typed [`TraceRecord`]s — placement
//! choices, CRV reorders/insertions, starvation suppressions, steals,
//! migrations, crash/recover strikes, and periodic heartbeat snapshots —
//! into a pluggable [`TraceSink`]. The default is *no sink at all*: every
//! emission site is guarded by an [`Tracer::enabled`] check (or routed
//! through [`Tracer::emit`], whose record-building closure never runs when
//! disabled), so a run without a sink executes exactly the instructions it
//! executed before this module existed. Tracing draws no randomness and
//! touches no metrics, so enabling it cannot perturb a run either — the
//! digest-parity tests pin both properties.
//!
//! Three sinks ship with the crate:
//!
//! * [`MemorySink`] — a bounded in-memory ring buffer, shareable with the
//!   test/tool that wants to inspect the records afterwards;
//! * [`JsonlSink`] — newline-delimited JSON to a file (the bench runner's
//!   `--trace-out <path>` flag);
//! * no sink — the no-op default.

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

use phoenix_constraints::ConstraintKind;

/// Per-constraint-kind demand/supply cell of a heartbeat snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindCrv {
    /// Constraint kind.
    pub kind: ConstraintKind,
    /// Queued demand units for the kind at snapshot time.
    pub demand: f64,
    /// Idle-feasible supply for the kind at snapshot time.
    pub supply: f64,
}

impl KindCrv {
    /// Demand over supply (`inf` when demand exists with zero supply).
    pub fn ratio(&self) -> f64 {
        if self.demand <= 0.0 {
            0.0
        } else {
            self.demand / self.supply
        }
    }
}

/// Per-worker load cell of a heartbeat snapshot (only workers whose
/// estimator windows have data are included).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerLoad {
    /// Worker index.
    pub worker: u32,
    /// Observed offered load `ρ = λ·E[S]`.
    pub rho: f64,
    /// Pollaczek–Khinchine expected wait, microseconds.
    pub expected_wait_us: u64,
}

/// One traced scheduling decision or periodic snapshot.
///
/// All timestamps are simulated microseconds (`at_us`).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A scheduler chose a worker for a probe ([`crate::SimCtx::send_probe`]).
    Placement {
        /// Simulated time, microseconds.
        at_us: u64,
        /// Owning job.
        job: u32,
        /// Chosen worker.
        worker: u32,
        /// Whether the probe carries its task (early binding).
        bound: bool,
        /// Soft-relaxation slowdown carried by the placement.
        slowdown: f64,
    },
    /// A heartbeat CRV pass promoted probes in a worker's queue.
    Reorder {
        /// Simulated time, microseconds.
        at_us: u64,
        /// Reordered worker.
        worker: u32,
        /// Probes promoted by this pass.
        promoted: u32,
    },
    /// The CRV insertion discipline moved a newly enqueued probe forward.
    Insertion {
        /// Simulated time, microseconds.
        at_us: u64,
        /// Worker whose queue was reordered.
        worker: u32,
        /// Probes the new probe bypassed.
        bypassed: u32,
    },
    /// The starvation (slack) bound suppressed a promotion.
    Suppression {
        /// Simulated time, microseconds.
        at_us: u64,
        /// Worker whose queue held the pinned probe.
        worker: u32,
    },
    /// An idle worker stole queued probes from a victim.
    Steal {
        /// Simulated time, microseconds.
        at_us: u64,
        /// Worker the probes were taken from.
        victim: u32,
        /// Worker that took them.
        thief: u32,
        /// Number of probes stolen.
        probes: u32,
    },
    /// Dynamic rescheduling migrated a stuck constrained probe.
    Migration {
        /// Simulated time, microseconds.
        at_us: u64,
        /// Owning job.
        job: u32,
        /// Queue the probe was recalled from.
        from: u32,
        /// Queue it was re-sent to.
        to: u32,
    },
    /// Fault injection crashed a worker.
    Crash {
        /// Simulated time, microseconds.
        at_us: u64,
        /// Crashed worker.
        worker: u32,
        /// Running tasks killed by the strike.
        killed: u32,
        /// Queued probes dropped by the strike.
        dropped: u32,
    },
    /// A crashed worker came back up.
    Recover {
        /// Simulated time, microseconds.
        at_us: u64,
        /// Recovered worker.
        worker: u32,
    },
    /// Periodic monitor snapshot (one per scheduler heartbeat).
    Heartbeat {
        /// Simulated time, microseconds.
        at_us: u64,
        /// Whether the CRV trigger condition held at this heartbeat.
        crv_mode: bool,
        /// Per-kind demand/supply (kinds with zero demand and supply are
        /// omitted).
        crv: Vec<KindCrv>,
        /// Per-worker offered load and P-K expected wait (workers without
        /// estimator data are omitted).
        workers: Vec<WorkerLoad>,
        /// Worker count per queue-length bucket: `[0, 1, 2-3, 4-7, 8-15,
        /// ...]` (power-of-two buckets, last bucket open-ended).
        queue_histogram: Vec<u32>,
    },
}

/// Formats an `f64` as JSON: finite values verbatim, `inf`/`nan` as `null`.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

impl TraceRecord {
    /// The record's type tag as it appears in the JSONL `"type"` field.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceRecord::Placement { .. } => "placement",
            TraceRecord::Reorder { .. } => "reorder",
            TraceRecord::Insertion { .. } => "insertion",
            TraceRecord::Suppression { .. } => "suppression",
            TraceRecord::Steal { .. } => "steal",
            TraceRecord::Migration { .. } => "migration",
            TraceRecord::Crash { .. } => "crash",
            TraceRecord::Recover { .. } => "recover",
            TraceRecord::Heartbeat { .. } => "heartbeat",
        }
    }

    /// The record's simulated timestamp, microseconds.
    pub fn at_us(&self) -> u64 {
        match *self {
            TraceRecord::Placement { at_us, .. }
            | TraceRecord::Reorder { at_us, .. }
            | TraceRecord::Insertion { at_us, .. }
            | TraceRecord::Suppression { at_us, .. }
            | TraceRecord::Steal { at_us, .. }
            | TraceRecord::Migration { at_us, .. }
            | TraceRecord::Crash { at_us, .. }
            | TraceRecord::Recover { at_us, .. }
            | TraceRecord::Heartbeat { at_us, .. } => at_us,
        }
    }

    /// Renders the record as one line of JSON (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        write!(
            s,
            "{{\"type\":\"{}\",\"at_us\":{}",
            self.kind_name(),
            self.at_us()
        )
        .unwrap();
        match self {
            TraceRecord::Placement {
                job,
                worker,
                bound,
                slowdown,
                ..
            } => {
                write!(
                    s,
                    ",\"job\":{job},\"worker\":{worker},\"bound\":{bound},\"slowdown\":{}",
                    json_f64(*slowdown)
                )
                .unwrap();
            }
            TraceRecord::Reorder {
                worker, promoted, ..
            } => {
                write!(s, ",\"worker\":{worker},\"promoted\":{promoted}").unwrap();
            }
            TraceRecord::Insertion {
                worker, bypassed, ..
            } => {
                write!(s, ",\"worker\":{worker},\"bypassed\":{bypassed}").unwrap();
            }
            TraceRecord::Suppression { worker, .. } => {
                write!(s, ",\"worker\":{worker}").unwrap();
            }
            TraceRecord::Steal {
                victim,
                thief,
                probes,
                ..
            } => {
                write!(
                    s,
                    ",\"victim\":{victim},\"thief\":{thief},\"probes\":{probes}"
                )
                .unwrap();
            }
            TraceRecord::Migration { job, from, to, .. } => {
                write!(s, ",\"job\":{job},\"from\":{from},\"to\":{to}").unwrap();
            }
            TraceRecord::Crash {
                worker,
                killed,
                dropped,
                ..
            } => {
                write!(
                    s,
                    ",\"worker\":{worker},\"killed\":{killed},\"dropped\":{dropped}"
                )
                .unwrap();
            }
            TraceRecord::Recover { worker, .. } => {
                write!(s, ",\"worker\":{worker}").unwrap();
            }
            TraceRecord::Heartbeat {
                crv_mode,
                crv,
                workers,
                queue_histogram,
                ..
            } => {
                write!(s, ",\"crv_mode\":{crv_mode},\"crv\":[").unwrap();
                for (i, cell) in crv.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    write!(
                        s,
                        "{{\"kind\":\"{}\",\"demand\":{},\"supply\":{},\"ratio\":{}}}",
                        cell.kind,
                        json_f64(cell.demand),
                        json_f64(cell.supply),
                        json_f64(cell.ratio())
                    )
                    .unwrap();
                }
                write!(s, "],\"workers\":[").unwrap();
                for (i, w) in workers.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    write!(
                        s,
                        "{{\"worker\":{},\"rho\":{},\"expected_wait_us\":{}}}",
                        w.worker,
                        json_f64(w.rho),
                        w.expected_wait_us
                    )
                    .unwrap();
                }
                write!(s, "],\"queue_histogram\":[").unwrap();
                for (i, count) in queue_histogram.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    write!(s, "{count}").unwrap();
                }
                s.push(']');
            }
        }
        s.push('}');
        s
    }
}

/// Destination for trace records. Implementations must not feed anything
/// back into the simulation: a sink observes, it never participates.
pub trait TraceSink: Send {
    /// Consumes one record.
    fn record(&mut self, record: &TraceRecord);

    /// Flushes buffered output (called once when the run finishes).
    fn flush(&mut self) {}
}

/// The engine-side dispatcher: either no sink (the zero-cost default) or
/// one boxed [`TraceSink`].
#[derive(Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that drops everything (the default).
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer feeding `sink`.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Whether a sink is attached. Emission sites that need to *build*
    /// state-derived records check this first; everything else goes through
    /// [`Tracer::emit`], which checks internally.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the record produced by `build` — which is never invoked when
    /// no sink is attached, keeping disabled-tracing cost to one branch.
    #[inline]
    pub fn emit(&mut self, build: impl FnOnce() -> TraceRecord) {
        if let Some(sink) = &mut self.sink {
            sink.record(&build());
        }
    }

    /// Emits an already-built record.
    pub fn emit_record(&mut self, record: TraceRecord) {
        if let Some(sink) = &mut self.sink {
            sink.record(&record);
        }
    }

    /// Flushes the sink, if any.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
    }

    /// Detaches and returns the sink, if any (the audit layer re-wraps an
    /// existing sink in a tee).
    pub(crate) fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }
}

/// Shared view into a [`MemorySink`]'s ring buffer.
pub type MemoryTraceHandle = Arc<Mutex<VecDeque<TraceRecord>>>;

/// Bounded in-memory ring buffer sink: keeps the most recent `capacity`
/// records, dropping the oldest on overflow. The buffer is shared, so a
/// test or tool can hold a [`MemoryTraceHandle`] and read the records after
/// (or during) the run.
#[derive(Debug)]
pub struct MemorySink {
    buffer: MemoryTraceHandle,
    capacity: usize,
}

impl MemorySink {
    /// Creates a ring sink retaining at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs capacity");
        MemorySink {
            buffer: Arc::new(Mutex::new(VecDeque::with_capacity(capacity.min(1024)))),
            capacity,
        }
    }

    /// A shared handle onto the ring buffer.
    pub fn handle(&self) -> MemoryTraceHandle {
        Arc::clone(&self.buffer)
    }

    /// Snapshots the buffered records, oldest first.
    pub fn records(handle: &MemoryTraceHandle) -> Vec<TraceRecord> {
        handle
            .lock()
            .expect("trace ring not poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, record: &TraceRecord) {
        let mut buffer = self.buffer.lock().expect("trace ring not poisoned");
        if buffer.len() == self.capacity {
            buffer.pop_front();
        }
        buffer.push_back(record.clone());
    }
}

/// Newline-delimited-JSON file sink (one [`TraceRecord::to_jsonl`] line per
/// record), buffered, flushed at end of run and on drop.
#[derive(Debug)]
pub struct JsonlSink {
    writer: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Creates (truncating) the output file.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            writer: std::io::BufWriter::new(file),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, record: &TraceRecord) {
        // Trace output is best-effort observability: an I/O error must not
        // abort a deterministic run that is 2 hours in.
        let _ = writeln!(self.writer, "{}", record.to_jsonl());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Buckets a queue length into the heartbeat histogram's power-of-two
/// buckets: `[0, 1, 2-3, 4-7, 8-15, ...]`.
pub fn queue_histogram_bucket(len: usize) -> usize {
    match len {
        0 => 0,
        n => (usize::BITS - n.leading_zeros()) as usize,
    }
}

/// Builds the heartbeat queue-length histogram over `lens`.
pub fn queue_histogram(lens: impl Iterator<Item = usize>) -> Vec<u32> {
    let mut hist: Vec<u32> = Vec::new();
    for len in lens {
        let bucket = queue_histogram_bucket(len);
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement(at: u64) -> TraceRecord {
        TraceRecord::Placement {
            at_us: at,
            job: 3,
            worker: 9,
            bound: false,
            slowdown: 1.0,
        }
    }

    #[test]
    fn disabled_tracer_never_builds_records() {
        let mut tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.emit(|| unreachable!("closure must not run without a sink"));
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let sink = MemorySink::new(3);
        let handle = sink.handle();
        let mut tracer = Tracer::with_sink(Box::new(sink));
        for at in 0..5 {
            tracer.emit(|| placement(at));
        }
        let records = MemorySink::records(&handle);
        assert_eq!(records.len(), 3);
        let ats: Vec<u64> = records.iter().map(TraceRecord::at_us).collect();
        assert_eq!(ats, vec![2, 3, 4], "oldest records evicted first");
    }

    #[test]
    fn jsonl_rendering_is_line_parseable() {
        let rec = TraceRecord::Heartbeat {
            at_us: 120,
            crv_mode: true,
            crv: vec![KindCrv {
                kind: ConstraintKind::NumCores,
                demand: 4.0,
                supply: 0.0,
            }],
            workers: vec![WorkerLoad {
                worker: 2,
                rho: 0.5,
                expected_wait_us: 1500,
            }],
            queue_histogram: vec![3, 1, 0, 2],
        };
        let line = rec.to_jsonl();
        assert!(!line.contains('\n'), "one record per line");
        assert!(line.starts_with("{\"type\":\"heartbeat\",\"at_us\":120"));
        // demand 4 with supply 0 is infinite contention: rendered as null.
        assert!(line.contains("\"ratio\":null"), "{line}");
        assert!(line.contains("\"demand\":4.0"), "{line}");
        assert!(line.contains("\"queue_histogram\":[3,1,0,2]"), "{line}");
        assert!(line.ends_with('}'));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the dependency-free build).
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(line.matches('[').count(), line.matches(']').count());
    }

    #[test]
    fn every_variant_renders_with_type_and_timestamp() {
        let records = [
            placement(1),
            TraceRecord::Reorder {
                at_us: 2,
                worker: 0,
                promoted: 3,
            },
            TraceRecord::Insertion {
                at_us: 3,
                worker: 0,
                bypassed: 1,
            },
            TraceRecord::Suppression {
                at_us: 4,
                worker: 1,
            },
            TraceRecord::Steal {
                at_us: 5,
                victim: 1,
                thief: 2,
                probes: 4,
            },
            TraceRecord::Migration {
                at_us: 6,
                job: 7,
                from: 1,
                to: 2,
            },
            TraceRecord::Crash {
                at_us: 7,
                worker: 3,
                killed: 1,
                dropped: 2,
            },
            TraceRecord::Recover {
                at_us: 8,
                worker: 3,
            },
            TraceRecord::Heartbeat {
                at_us: 9,
                crv_mode: false,
                crv: vec![],
                workers: vec![],
                queue_histogram: vec![],
            },
        ];
        for rec in &records {
            let line = rec.to_jsonl();
            assert!(
                line.contains(&format!("\"type\":\"{}\"", rec.kind_name())),
                "{line}"
            );
            assert!(
                line.contains(&format!("\"at_us\":{}", rec.at_us())),
                "{line}"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(queue_histogram_bucket(0), 0);
        assert_eq!(queue_histogram_bucket(1), 1);
        assert_eq!(queue_histogram_bucket(2), 2);
        assert_eq!(queue_histogram_bucket(3), 2);
        assert_eq!(queue_histogram_bucket(4), 3);
        assert_eq!(queue_histogram_bucket(7), 3);
        assert_eq!(queue_histogram_bucket(8), 4);
        let hist = queue_histogram([0usize, 0, 1, 3, 8].into_iter());
        assert_eq!(hist, vec![2, 1, 1, 0, 1]);
    }
}
