//! Trace-driven discrete-event cluster simulator for the Phoenix
//! reproduction.
//!
//! This crate rebuilds, in Rust, the simulation substrate the paper uses
//! (§V-A: the trace-driven simulator of Sparrow and Eagle): a cluster of
//! heterogeneous workers, each with **one execution slot and a queue** of
//! task *probes*, driven by a deterministic discrete-event engine. Messages
//! between schedulers and workers pay a configurable network delay (0.5 ms
//! by default, as in the paper).
//!
//! The scheduling policy itself is pluggable through the [`Scheduler`]
//! trait; the baseline schedulers (Sparrow-C, Hawk-C, Eagle-C, Yaq-d) live
//! in `phoenix-schedulers` and Phoenix itself in `phoenix-core`.
//!
//! Key modelling decisions (all mirrored from the Sparrow/Eagle simulators
//! and the paper's §IV–§V):
//!
//! * **Late binding**: schedulers place lightweight probes; a worker that
//!   pops a probe asks the job for a task, paying one network round trip.
//!   If the job has no unlaunched tasks left the probe is discarded for
//!   free (the "redundant probe" win of batch sampling).
//! * **Early binding**: centralized placement (long jobs in hybrid
//!   schedulers, all jobs in Yaq-d) enqueues *bound* probes that carry
//!   their task with them.
//! * **Queue reordering**: schedulers may reorder worker queues (SRPT, CRV)
//!   via [`SimCtx`]; per-probe bypass counters support starvation bounds.
//! * **Metrics**: per-job response and queuing times are recorded into
//!   short/long × constrained/unconstrained cells, plus the time series and
//!   counters the paper's figures need.
//!
//! # Example
//!
//! ```
//! use phoenix_sim::{RandomScheduler, SimConfig, Simulation};
//! use phoenix_traces::{TraceGenerator, TraceProfile};
//! use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let profile = TraceProfile::yahoo();
//! let mut rng = StdRng::seed_from_u64(1);
//! let cluster = MachinePopulation::generate(profile.population.clone(), 50, &mut rng);
//! let trace = TraceGenerator::new(profile, 1).generate(100, 50, 0.4);
//! let sim = Simulation::new(
//!     SimConfig::default(),
//!     FeasibilityIndex::new(cluster.into_machines()),
//!     &trace,
//!     Box::new(RandomScheduler::new(2)),
//!     7,
//! );
//! let result = sim.run();
//! // Every job either completed or was failed by admission control
//! // (hard-unsatisfiable constraint sets on a tiny 50-node cluster).
//! assert_eq!(result.counters.jobs_completed + result.counters.jobs_failed, 100);
//! assert_eq!(result.incomplete_jobs, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod context;
pub mod crvledger;
pub mod engine;
pub mod event;
pub mod fault;
pub mod federation;
pub mod jobstate;
pub mod metrics;
pub mod probe;
pub mod profile;
pub mod random;
pub mod scheduler;
pub mod time;
pub mod trace;
pub mod worker;

pub use audit::{
    first_trace_divergence, AuditConfig, AuditReport, InvariantAuditor, ReferenceExecutor,
};
pub use config::{FederationConfig, SimConfig};
pub use context::SimCtx;
pub use crvledger::CrvLedger;
pub use engine::{SimState, Simulation};
pub use event::{Event, EventQueue};
pub use fault::FaultPlan;
pub use federation::{DomainSummary, FederationState, FederationStats};
pub use jobstate::JobState;
pub use metrics::{Counters, JobOutcome, SimMetrics, SimResult};
pub use probe::{Probe, ProbeId};
pub use profile::{ProfileReport, ProfileScope, Profiler, ScopeTotals};
pub use random::RandomScheduler;
pub use scheduler::Scheduler;
pub use time::{SimDuration, SimTime};
pub use trace::{
    JsonlSink, KindCrv, MemorySink, MemoryTraceHandle, TraceRecord, TraceSink, Tracer, WorkerLoad,
};
pub use worker::{RunningTask, Worker, WorkerId};
