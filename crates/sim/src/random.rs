//! A minimal constraint-respecting random scheduler.
//!
//! Serves two purposes: a sanity baseline ("what if probes land on uniform
//! random feasible workers with FIFO queues?") and the engine's own test
//! fixture. Real baselines (Sparrow-C, Hawk-C, Eagle-C, Yaq-d) live in
//! `phoenix-schedulers`.

use phoenix_constraints::ConstraintSet;
use phoenix_traces::JobId;

use crate::context::SimCtx;
use crate::scheduler::Scheduler;
use crate::worker::WorkerId;

/// Random feasible placement with FIFO worker queues and late binding.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    probe_ratio: u32,
}

impl RandomScheduler {
    /// Creates a random scheduler sending `probe_ratio` probes per task.
    ///
    /// # Panics
    ///
    /// Panics if `probe_ratio` is zero.
    pub fn new(probe_ratio: u32) -> Self {
        assert!(probe_ratio > 0, "probe ratio must be at least 1");
        RandomScheduler { probe_ratio }
    }

    /// Picks target workers for `count` probes of a job with `set`
    /// constraints, progressively relaxing soft constraints if nothing is
    /// feasible. Returns `None` when even the hard subset is unsatisfiable.
    pub(crate) fn pick_targets(
        ctx: &mut SimCtx<'_>,
        set: &ConstraintSet,
        count: usize,
    ) -> Option<(Vec<WorkerId>, bool)> {
        let targets = ctx.sample_feasible_workers(set, count);
        if !targets.is_empty() {
            return Some((targets, false));
        }
        let hard = set.hard_only();
        let relaxed = ctx.sample_feasible_workers(&hard, count);
        if relaxed.is_empty() {
            None
        } else {
            Some((relaxed, true))
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &str {
        "random"
    }

    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let (set, tasks) = {
            let j = ctx.job(job);
            (j.effective_constraints.clone(), j.num_tasks())
        };
        let want = tasks * self.probe_ratio as usize;
        let Some((targets, relaxed)) = Self::pick_targets(ctx, &set, want) else {
            ctx.fail_job(job);
            return;
        };
        if relaxed {
            ctx.job_mut(job).effective_constraints = set.hard_only();
        }
        for i in 0..want {
            let worker = targets[i % targets.len()];
            let probe = ctx.new_probe(job);
            ctx.send_probe(worker, probe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Simulation;
    use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
    use phoenix_metrics::JobClass;
    use phoenix_traces::{TraceGenerator, TraceProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_sim(jobs: usize, nodes: usize, util: f64, seed: u64) -> Simulation {
        let profile = TraceProfile::yahoo();
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
        let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
        Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(cluster.into_machines()),
            &trace,
            Box::new(RandomScheduler::new(2)),
            seed,
        )
    }

    #[test]
    fn all_jobs_complete() {
        let result = small_sim(200, 80, 0.5, 3).run();
        assert_eq!(result.incomplete_jobs, 0);
        assert_eq!(
            result.counters.jobs_completed + result.counters.jobs_failed,
            200
        );
        assert!(result.counters.tasks_completed > 0);
    }

    #[test]
    fn conservation_probes_accounted() {
        let result = small_sim(150, 60, 0.6, 5).run();
        let c = result.counters;
        // Every speculative probe either launched a task or was redundant;
        // every bound placement launched a task.
        // Failed jobs (hard-unsatisfiable on a tiny cluster) send no probes
        // at all, so the equation holds regardless of failures.
        assert_eq!(
            c.probes_sent + c.bound_placements,
            c.tasks_completed + c.redundant_probes,
        );
    }

    #[test]
    fn determinism_across_runs() {
        let a = small_sim(100, 50, 0.5, 11).run();
        let b = small_sim(100, 50, 0.5, 11).run();
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.metrics.makespan, b.metrics.makespan);
        assert_eq!(
            a.class_response_percentile(JobClass::Short, 99.0),
            b.class_response_percentile(JobClass::Short, 99.0)
        );
    }

    #[test]
    fn utilization_is_reasonable() {
        let result = small_sim(400, 60, 0.6, 13).run();
        let u = result.utilization();
        assert!(u > 0.1 && u <= 1.0, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "probe ratio")]
    fn zero_probe_ratio_rejected() {
        let _ = RandomScheduler::new(0);
    }
}
