//! The pluggable scheduler interface.

use phoenix_traces::JobId;

use crate::context::SimCtx;
use crate::engine::SimState;
use crate::worker::WorkerId;

/// A scheduling policy driven by the simulation engine.
///
/// The engine owns the mechanics (event ordering, probe queues, slot
/// lifecycle, metrics); implementations own the policy (where probes go, in
/// what order queues are served, when queues are reordered or stolen from).
///
/// Hook call order for one event:
///
/// 1. The engine applies the event's mechanical effect (enqueue the probe,
///    free the slot, ...).
/// 2. The matching hook runs and may mutate state through [`SimCtx`].
/// 3. The engine re-runs the dispatch loop on every touched worker, calling
///    [`Scheduler::select_probe`] to pick which queued probe each idle
///    worker serves next.
pub trait Scheduler {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> &str;

    /// A job has arrived; place its probes / tasks.
    fn on_job_arrival(&mut self, job: JobId, ctx: &mut SimCtx<'_>);

    /// A probe was appended to `worker`'s queue (reorder here if the policy
    /// orders on insertion).
    fn on_probe_enqueued(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        let _ = (worker, ctx);
    }

    /// Chooses which queued probe an idle `worker` serves next, as an index
    /// into its queue. `None` leaves the worker idle (no default policy
    /// does this). The default serves the queue head.
    fn select_probe(&mut self, worker: WorkerId, state: &SimState) -> Option<usize> {
        if state.workers[worker.index()].queue_len() == 0 {
            None
        } else {
            Some(0)
        }
    }

    /// A task of `job` finished on `worker` (its true duration is reported
    /// in microseconds). Steal or rebalance here.
    fn on_task_finish(
        &mut self,
        worker: WorkerId,
        job: JobId,
        duration_us: u64,
        ctx: &mut SimCtx<'_>,
    ) {
        let _ = (worker, job, duration_us, ctx);
    }

    /// Every task of `job` completed.
    fn on_job_complete(&mut self, job: JobId, ctx: &mut SimCtx<'_>) {
        let _ = (job, ctx);
    }

    /// A wakeup requested via [`SimCtx::schedule_wakeup`] fired.
    fn on_wakeup(&mut self, token: u64, ctx: &mut SimCtx<'_>) {
        let _ = (token, ctx);
    }

    /// A probe that was lost in flight, addressed to a dead worker, or
    /// whose task was killed by a crash comes up for re-placement (its
    /// backoff has elapsed). The default re-samples a feasible worker and
    /// resends ([`SimCtx::default_probe_retry`]); override to apply
    /// policy-specific placement to retries.
    fn on_probe_retry(&mut self, probe: crate::probe::Probe, ctx: &mut SimCtx<'_>) {
        ctx.default_probe_retry(probe);
    }

    /// Fault injection: `worker` crashed. The engine has already drained
    /// its queue and killed its running tasks (scheduling retries for
    /// both); override to drop policy-side state tied to the worker
    /// (load caches, stickiness, ...).
    fn on_worker_crash(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        let _ = (worker, ctx);
    }

    /// Fault injection: `worker` recovered (idle, empty queue).
    fn on_worker_recover(&mut self, worker: WorkerId, ctx: &mut SimCtx<'_>) {
        let _ = (worker, ctx);
    }
}
