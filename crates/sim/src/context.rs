//! The mutation interface schedulers use during hooks.

use rand::rngs::StdRng;
use rand::Rng;

use phoenix_constraints::FeasibilityIndex;
use phoenix_traces::JobId;

use crate::config::SimConfig;
use crate::engine::SimState;
use crate::event::{Event, EventQueue};
use crate::jobstate::JobState;
use crate::metrics::Counters;
use crate::probe::{Probe, ProbeId};
use crate::time::{SimDuration, SimTime};
use crate::worker::{Worker, WorkerId};

/// Scheduler-facing view of the simulation: state plus the ability to
/// schedule future events.
///
/// Obtained only inside [`crate::Scheduler`] hooks.
#[derive(Debug)]
pub struct SimCtx<'a> {
    pub(crate) state: &'a mut SimState,
    pub(crate) events: &'a mut EventQueue,
}

impl<'a> SimCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.state.now
    }

    /// The full simulation state (read-only).
    pub fn state(&self) -> &SimState {
        self.state
    }

    /// Full mutable access to the simulation state.
    ///
    /// Prefer the targeted accessors ([`SimCtx::worker_mut`],
    /// [`SimCtx::job_mut`], ...); this exists for policy helpers that need
    /// simultaneous access to several parts of the state (queue reordering
    /// reads job estimates while mutating worker queues).
    pub fn state_mut(&mut self) -> &mut SimState {
        self.state
    }

    /// Engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.state.config
    }

    /// Number of workers in the cluster.
    pub fn num_workers(&self) -> usize {
        self.state.workers.len()
    }

    /// Read access to a worker.
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.state.workers[id.index()]
    }

    /// Mutable access to a worker (queue reordering).
    ///
    /// Use this only for operations that preserve the queue's probe
    /// multiset (e.g. [`Worker::promote`]). Adding or removing probes must
    /// go through the ledger-aware wrappers ([`SimCtx::enqueue_front`],
    /// [`SimCtx::remove_probe_by_id`], [`SimCtx::steal_probes_if`]) or the
    /// incremental CRV monitor desyncs.
    pub fn worker_mut(&mut self, id: WorkerId) -> &mut Worker {
        &mut self.state.workers[id.index()]
    }

    /// Read access to a job.
    pub fn job(&self, id: JobId) -> &JobState {
        &self.state.jobs[id.0 as usize]
    }

    /// Mutable access to a job (admission control rewrites
    /// `effective_constraints`).
    pub fn job_mut(&mut self, id: JobId) -> &mut JobState {
        &mut self.state.jobs[id.0 as usize]
    }

    /// All jobs (read-only).
    pub fn jobs(&self) -> &[JobState] {
        &self.state.jobs
    }

    /// The feasibility oracle over the cluster's machines.
    pub fn feasibility(&self) -> &FeasibilityIndex {
        &self.state.feasibility
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.state.rng
    }

    /// Scheduler-maintained counters.
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.state.metrics.counters
    }

    /// Creates a fresh speculative probe for `job` (not yet sent).
    pub fn new_probe(&mut self, job: JobId) -> Probe {
        Probe {
            id: self.state.next_probe_id(),
            job,
            bound_duration_us: None,
            est_duration_us: self.state.jobs[job.0 as usize].estimated_task_us,
            slowdown: 1.0,
            enqueued_at: self.state.now,
            bypass_count: 0,
            migrations: 0,
            retries: 0,
        }
    }

    /// Creates a fresh *bound* probe carrying a task of `duration_us`
    /// (early binding; not yet sent).
    pub fn new_bound_probe(&mut self, job: JobId, duration_us: u64) -> Probe {
        Probe {
            bound_duration_us: Some(duration_us),
            ..self.new_probe(job)
        }
    }

    /// Sends a probe to a worker; it arrives after the one-way network
    /// delay. Updates the probe/placement counters and traces the
    /// placement choice (this is the single send path every scheduler
    /// goes through).
    pub fn send_probe(&mut self, worker: WorkerId, probe: Probe) {
        if probe.is_bound() {
            self.state.metrics.counters.bound_placements += 1;
        } else {
            self.state.metrics.counters.probes_sent += 1;
        }
        let at_us = self.state.now.as_micros();
        self.state
            .tracer
            .emit(|| crate::trace::TraceRecord::Placement {
                at_us,
                job: probe.job.0,
                worker: worker.0,
                bound: probe.is_bound(),
                slowdown: probe.slowdown,
            });
        self.transfer_probe(worker, probe);
    }

    /// Moves an already-counted probe to another worker (work stealing,
    /// rebalancing); it arrives after the one-way network delay. Does not
    /// touch the send counters — bump [`Counters::stolen_probes`] yourself
    /// if this is a steal.
    ///
    /// Under fault injection the transfer may be lost (the probe re-enters
    /// placement via [`crate::Scheduler::on_probe_retry`] after its
    /// backoff) or delayed by an extra uniform amount. With
    /// [`crate::FaultPlan::none`] neither gate draws randomness.
    pub fn transfer_probe(&mut self, worker: WorkerId, probe: Probe) {
        let state = &mut *self.state;
        let faults = &state.config.faults;
        if faults.probe_loss > 0.0 && state.fault_rng.random_bool(faults.probe_loss) {
            state.metrics.counters.probes_lost += 1;
            let mut lost = probe;
            let backoff = faults.retry_delay(lost.retries);
            lost.retries = lost.retries.saturating_add(1);
            self.events
                .schedule(state.now + backoff, Event::ProbeRetry(lost));
            return;
        }
        let mut delay = state.config.network_delay;
        if faults.probe_delay_prob > 0.0 && state.fault_rng.random_bool(faults.probe_delay_prob) {
            let max = state.config.faults.probe_delay_max.as_micros();
            if max > 0 {
                delay = delay + SimDuration(state.fault_rng.random_range(0..max));
                state.metrics.counters.probes_delayed += 1;
            }
        }
        self.events
            .schedule(state.now + delay, Event::ProbeArrival(worker, probe));
    }

    /// Requests a [`crate::Scheduler::on_wakeup`] callback after `delay`.
    /// Under fault injection the wakeup slips by up to
    /// [`crate::FaultPlan::heartbeat_jitter`].
    pub fn schedule_wakeup(&mut self, delay: SimDuration, token: u64) {
        let state = &mut *self.state;
        let jitter = state.config.faults.heartbeat_jitter.as_micros();
        let slip = if jitter > 0 {
            SimDuration(state.fault_rng.random_range(0..jitter))
        } else {
            SimDuration::ZERO
        };
        self.events
            .schedule(state.now + delay + slip, Event::SchedulerWakeup(token));
    }

    /// Marks a worker as needing a dispatch check once the current hook
    /// returns (the engine does this automatically for probe arrivals and
    /// task completions; call it after manual queue surgery).
    pub fn touch(&mut self, worker: WorkerId) {
        self.state.touched.push(worker);
    }

    /// Fails a job whose hard constraints no worker can satisfy: pending
    /// tasks are cancelled and the job is excluded from latency metrics.
    pub fn fail_job(&mut self, job: JobId) {
        let j = &mut self.state.jobs[job.0 as usize];
        if !j.is_failed() {
            if !j.is_complete() {
                // The job leaves the outstanding set by failing rather
                // than completing.
                self.state.outstanding_jobs -= 1;
            }
            j.fail();
            self.state.metrics.counters.jobs_failed += 1;
        }
    }

    /// Samples up to `k` distinct workers able to satisfy `set`, uniformly
    /// at random (see
    /// [`FeasibilityIndex::sample_feasible`]). Crashed workers are never
    /// returned; when every worker is alive the draws are identical to a
    /// run without the aliveness filter.
    pub fn sample_feasible_workers(
        &mut self,
        set: &phoenix_constraints::ConstraintSet,
        k: usize,
    ) -> Vec<WorkerId> {
        self.sample_feasible_workers_excluding(set, k, |_| false)
    }

    /// Like [`SimCtx::sample_feasible_workers`], skipping workers for which
    /// `exclude` returns true (crashed workers are skipped regardless).
    ///
    /// On a partitioned federated run handling a domain-scoped event this
    /// becomes a three-rung ladder: (1) sample inside the home domain;
    /// (2) if the home domain yields nothing, probe the most promising
    /// remote domain judged from the installed (stale) gossip summaries;
    /// (3) fall back to an unrestricted cluster-wide sample, so liveness
    /// (`lost_tasks == 0`) never depends on summary freshness. With K ≤ 1
    /// the ladder is skipped entirely and the draws are identical to the
    /// centralized engine (the byte-parity rule).
    pub fn sample_feasible_workers_excluding(
        &mut self,
        set: &phoenix_constraints::ConstraintSet,
        k: usize,
        mut exclude: impl FnMut(u32) -> bool,
    ) -> Vec<WorkerId> {
        if let Some(home) = self.placement_home() {
            let sample = self.sample_in_domain(set, k, home, &mut exclude);
            if !sample.is_empty() {
                if let Some(fed) = self.state.federation_mut() {
                    fed.stats.home_samples += 1;
                }
                return sample;
            }
            let remote = self
                .state
                .federation()
                .and_then(|fed| fed.best_remote_domain(home, set, &self.state.feasibility));
            if let Some(remote) = remote {
                let sample = self.sample_in_domain(set, k, remote, &mut exclude);
                if !sample.is_empty() {
                    if let Some(fed) = self.state.federation_mut() {
                        fed.stats.remote_samples += 1;
                    }
                    return sample;
                }
            }
            if let Some(fed) = self.state.federation_mut() {
                fed.stats.cluster_fallbacks += 1;
            }
        }
        let state = &mut *self.state;
        let started = state.profiler.begin();
        let workers = &state.workers;
        let sample: Vec<WorkerId> = state
            .feasibility
            .sample_feasible(set, k, &mut state.rng, |w| {
                exclude(w) || !workers[w as usize].is_alive()
            })
            .into_iter()
            .map(WorkerId)
            .collect();
        state.profiler.end(crate::ProfileScope::Sample, started);
        sample
    }

    /// The home domain of the event being handled, when the run is
    /// partitioned (K ≥ 2) and the event is domain-scoped. `None` means
    /// sampling stays cluster-wide.
    fn placement_home(&self) -> Option<usize> {
        let fed = self.state.federation()?;
        if !fed.config().is_partitioned() {
            return None;
        }
        self.state.active_domain
    }

    /// One rung of the federated ladder: a feasible-worker sample
    /// restricted to `domain`'s contiguous worker range (plus the caller's
    /// exclusions and the aliveness filter). May return fewer than `k`
    /// workers; empty means the rung failed.
    fn sample_in_domain(
        &mut self,
        set: &phoenix_constraints::ConstraintSet,
        k: usize,
        domain: usize,
        exclude: &mut impl FnMut(u32) -> bool,
    ) -> Vec<WorkerId> {
        let (base, len) = self
            .state
            .federation()
            .expect("domain sampling without federation")
            .range(domain);
        let (lo, hi) = (base as u32, (base + len) as u32);
        let state = &mut *self.state;
        let started = state.profiler.begin();
        let workers = &state.workers;
        let sample: Vec<WorkerId> = state
            .feasibility
            .sample_feasible(set, k, &mut state.rng, |w| {
                w < lo || w >= hi || exclude(w) || !workers[w as usize].is_alive()
            })
            .into_iter()
            .map(WorkerId)
            .collect();
        state.profiler.end(crate::ProfileScope::Sample, started);
        sample
    }

    /// Samples feasible workers *ignoring aliveness* — the last-resort rung
    /// for placements that must target somewhere even mid-outage. Sending
    /// to a dead worker is safe: the engine bounces the probe into the
    /// retry path, so a dead target only costs one backoff. Call this only
    /// on fault-gated paths: it consumes RNG draws, so reaching it with
    /// faults disabled would perturb the deterministic stream.
    pub fn sample_feasible_workers_any(
        &mut self,
        set: &phoenix_constraints::ConstraintSet,
        k: usize,
    ) -> Vec<WorkerId> {
        let state = &mut *self.state;
        let started = state.profiler.begin();
        let sample: Vec<WorkerId> = state
            .feasibility
            .sample_feasible(set, k, &mut state.rng, |_| false)
            .into_iter()
            .map(WorkerId)
            .collect();
        state.profiler.end(crate::ProfileScope::Sample, started);
        sample
    }

    /// Removes the queued probe with the given id from a worker's queue,
    /// if present (used to recall probes). Keeps the CRV ledger in sync.
    pub fn remove_probe_by_id(&mut self, worker: WorkerId, id: ProbeId) -> Option<Probe> {
        let idx = self.state.workers[worker.index()]
            .queue()
            .iter()
            .position(|p| p.id == id)?;
        Some(self.state.remove_probe_at(worker, idx))
    }

    /// Inserts a probe at the *front* of a worker's queue (sticky batch
    /// probing: a continuation of service, not a reordering). Keeps the CRV
    /// ledger in sync.
    pub fn enqueue_front(&mut self, worker: WorkerId, probe: Probe) {
        self.state.enqueue_probe_front(worker, probe);
    }

    /// Removes and returns every queued probe of `worker` matching
    /// `predicate` (work stealing). Keeps the CRV ledger in sync.
    pub fn steal_probes_if(
        &mut self,
        worker: WorkerId,
        predicate: impl FnMut(&Probe) -> bool,
    ) -> Vec<Probe> {
        self.state.steal_probes_if(worker, predicate)
    }

    /// The default fault-recovery action for a probe whose placement was
    /// undone (lost in flight, dead target, or killed by a crash): resend
    /// it to one freshly sampled live feasible worker. Speculative probes
    /// whose job no longer needs them are discarded as redundant; when no
    /// live feasible worker exists right now the probe re-arms its backoff
    /// and tries again later (recovery events guarantee progress).
    pub fn default_probe_retry(&mut self, probe: Probe) {
        let job = &self.state.jobs[probe.job.0 as usize];
        if job.is_failed() || (!probe.is_bound() && !job.has_pending()) {
            if !probe.is_bound() && !job.is_failed() {
                self.state.metrics.counters.redundant_probes += 1;
            }
            return;
        }
        let set = job.effective_constraints.clone();
        match self.sample_feasible_workers(&set, 1).first() {
            Some(&w) => self.resend_probe(w, probe),
            None => self.retry_probe_later(probe),
        }
    }

    /// Resends a retried probe to `worker`, counting the retry. Resets the
    /// probe's bypass counter (it is joining a fresh queue, not being
    /// starved in an old one).
    pub fn resend_probe(&mut self, worker: WorkerId, mut probe: Probe) {
        self.state.metrics.counters.probe_retries += 1;
        probe.bypass_count = 0;
        self.transfer_probe(worker, probe);
    }

    /// Re-arms a retried probe's backoff timer without resending (used
    /// when every feasible worker is currently down). The backoff keeps
    /// growing up to the [`crate::FaultPlan`] cap.
    pub fn retry_probe_later(&mut self, mut probe: Probe) {
        let backoff = self.state.config.faults.retry_delay(probe.retries);
        probe.retries = probe.retries.saturating_add(1);
        self.events
            .schedule(self.state.now + backoff, Event::ProbeRetry(probe));
    }
}
