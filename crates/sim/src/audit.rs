//! Online invariant auditing and a brute-force reference executor.
//!
//! Golden digests detect *change*; this module detects *wrongness*. Two
//! tools live here:
//!
//! * [`InvariantAuditor`] — attached via [`crate::Simulation::enable_audit`],
//!   it re-checks the engine's conservation laws after every handled event:
//!   task conservation (for every live job, `launched + pending ==
//!   submitted` and `launched - completed` equals the work visible on
//!   workers, in queues and in flight), no slot double-booking, a monotone
//!   virtual clock, hard-constraint satisfaction of every placement
//!   (recomputed from the machine attributes, never trusted from the
//!   scheduler), [`CrvLedger`] demand/supply exactness at every scheduler
//!   heartbeat, the starvation-slack bound on queue reorders, and exact
//!   busy-time accounting. It also observes the [`TraceSink`] stream for
//!   record-level sanity (timestamps in order, crash/recover pairing).
//!   Violations are collected, not panicked, so a run reports *all* broken
//!   laws; tests assert [`AuditReport::is_clean`].
//! * [`ReferenceExecutor`] — a deliberately naive O(everything)
//!   re-implementation of the engine's dispatch/queueing semantics for tiny
//!   clusters. It replays the same trace with the same scheduler and must
//!   agree event-for-event (same trace records, same digest) with the real
//!   engine; the differential tests run it against proptest-generated
//!   scenarios.
//!
//! Both tools follow the tracer/profiler discipline: when not enabled they
//! cost one branch per event and change nothing — the digest-parity tests
//! pin that enabling them does not perturb a run either.

use std::fmt;
use std::sync::{Arc, Mutex};

use phoenix_traces::JobId;

use crate::context::SimCtx;
use crate::crvledger::CrvLedger;
use crate::engine::{finalize_result, SimState, Simulation};
use crate::event::{Event, EventQueue};
use crate::metrics::SimResult;
use crate::scheduler::Scheduler;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceRecord, TraceSink};
use crate::worker::{RunningTask, WorkerId};

use phoenix_constraints::ConstraintKind;

/// Configuration of the [`InvariantAuditor`].
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Upper bound on any queued probe's `bypass_count`. Every shipped
    /// reorder path guards promotions with `bypass_count < slack`, so no
    /// probe can be overtaken more than `slack` times; `None` disables the
    /// check (for harnesses driving [`crate::Worker::promote`] directly).
    pub starvation_slack: Option<u32>,
    /// Re-derive the incremental [`CrvLedger`] from scratch at every
    /// scheduler wakeup (heartbeat) and compare all of its counters.
    pub check_crv_ledger: bool,
    /// Number of violation messages retained verbatim in the report (the
    /// total count is always exact).
    pub max_recorded: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            // BaselineConfig::default().slack_threshold — every shipped
            // scheduler config uses 5.
            starvation_slack: Some(5),
            check_crv_ledger: true,
            max_recorded: 16,
        }
    }
}

/// Outcome of an audited run, returned in [`SimResult::audit`].
///
/// Excluded from [`SimResult::digest`]: auditing observes, it never
/// participates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Events after which the conservation laws were re-checked.
    pub events_audited: u64,
    /// Task launches whose hard constraints were re-verified.
    pub placements_checked: u64,
    /// Heartbeats at which the CRV ledger was re-derived and compared.
    pub ledger_checks: u64,
    /// Total invariant violations detected.
    pub violations: u64,
    /// The first [`AuditConfig::max_recorded`] violation messages.
    pub first_violations: Vec<String>,
}

impl AuditReport {
    /// Whether the run satisfied every audited invariant.
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit: {} violations over {} events ({} placements, {} ledger checks)",
            self.violations, self.events_audited, self.placements_checked, self.ledger_checks
        )?;
        for v in &self.first_violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

/// Trace-stream observations shared between the auditor and its sink.
#[derive(Debug, Default)]
struct StreamState {
    last_at_us: u64,
    /// Workers the record stream says are down.
    down: Vec<u32>,
    violations: Vec<String>,
}

impl StreamState {
    fn violation(&mut self, msg: String) {
        self.violations.push(msg);
    }
}

/// A [`TraceSink`] that checks record-stream sanity for the auditor:
/// timestamps must be non-decreasing and crash/recover records must pair up
/// (no double crash, no recovery of a live worker).
struct StreamObserver {
    shared: Arc<Mutex<StreamState>>,
}

impl TraceSink for StreamObserver {
    fn record(&mut self, record: &TraceRecord) {
        let mut s = self.shared.lock().expect("audit stream not poisoned");
        let at = record.at_us();
        if at < s.last_at_us {
            let last = s.last_at_us;
            s.violation(format!(
                "trace stream out of order: {} at {at} µs after {last} µs",
                record.kind_name()
            ));
        }
        s.last_at_us = at;
        match *record {
            TraceRecord::Crash { worker, .. } => {
                if s.down.contains(&worker) {
                    s.violation(format!("worker {worker} crashed twice without recovering"));
                } else {
                    s.down.push(worker);
                }
            }
            TraceRecord::Recover { worker, .. } => {
                if let Some(i) = s.down.iter().position(|&w| w == worker) {
                    s.down.swap_remove(i);
                } else {
                    s.violation(format!("worker {worker} recovered without a crash"));
                }
            }
            _ => {}
        }
    }
}

/// Tee splitting one record stream into two sinks (the user's sink and the
/// auditor's [`StreamObserver`]).
pub(crate) struct TeeSink {
    pub(crate) first: Box<dyn TraceSink>,
    pub(crate) second: Box<dyn TraceSink>,
}

impl TraceSink for TeeSink {
    fn record(&mut self, record: &TraceRecord) {
        self.first.record(record);
        self.second.record(record);
    }

    fn flush(&mut self) {
        self.first.flush();
        self.second.flush();
    }
}

/// Online checker of the engine's conservation laws (see module docs).
///
/// Attach with [`crate::Simulation::enable_audit`]; the report lands in
/// [`SimResult::audit`].
#[derive(Debug)]
pub struct InvariantAuditor {
    config: AuditConfig,
    report: AuditReport,
    last_now: SimTime,
    stream: Arc<Mutex<StreamState>>,
    // Scratch buffers reused across events (the auditor runs after every
    // event; per-event allocation would dominate debug-build runs).
    inflight: Vec<i64>,
    seqs: Vec<u64>,
}

impl InvariantAuditor {
    /// Creates an auditor with the given configuration.
    pub fn new(config: AuditConfig) -> Self {
        InvariantAuditor {
            config,
            report: AuditReport::default(),
            last_now: SimTime::ZERO,
            stream: Arc::new(Mutex::new(StreamState::default())),
            inflight: Vec::new(),
            seqs: Vec::new(),
        }
    }

    /// The sink the engine tees trace records into for stream-level checks.
    pub(crate) fn stream_observer(&self) -> Box<dyn TraceSink> {
        Box::new(StreamObserver {
            shared: Arc::clone(&self.stream),
        })
    }

    fn violation(&mut self, at: SimTime, msg: impl fmt::Display) {
        self.report.violations += 1;
        if self.report.first_violations.len() < self.config.max_recorded {
            self.report
                .first_violations
                .push(format!("t={}µs: {msg}", at.as_micros()));
        }
    }

    /// Re-checks every per-event law after `handle` + dispatch settled.
    /// `heartbeat` marks [`Event::SchedulerWakeup`] events, where the CRV
    /// ledger is additionally re-derived from scratch.
    pub(crate) fn after_event(&mut self, heartbeat: bool, state: &SimState, events: &EventQueue) {
        self.report.events_audited += 1;
        if state.now < self.last_now {
            self.violation(
                state.now,
                format!(
                    "virtual clock ran backwards ({} µs after {} µs)",
                    state.now.as_micros(),
                    self.last_now.as_micros()
                ),
            );
        }
        self.last_now = state.now;
        self.check_conservation(state, events);
        if heartbeat && self.config.check_crv_ledger {
            self.check_crv_ledger(state);
        }
    }

    /// Worker-side structure, busy-time accounting and per-job task
    /// conservation — the "submitted == finished + queued + running + in
    /// flight" law, checked after every event.
    fn check_conservation(&mut self, state: &SimState, events: &EventQueue) {
        let now = state.now;
        self.inflight.clear();
        self.inflight.resize(state.jobs.len(), 0);
        self.seqs.clear();
        let mut busy_sum: u64 = 0;

        for (i, w) in state.workers.iter().enumerate() {
            busy_sum += w.busy_us();
            let running = w.running_tasks();
            if running.len() > w.slots() {
                self.violation(
                    now,
                    format!(
                        "worker {i} double-booked: {} tasks on {} slots",
                        running.len(),
                        w.slots()
                    ),
                );
            }
            if !w.is_alive() && (!running.is_empty() || w.queue_len() > 0) {
                self.violation(
                    now,
                    format!(
                        "dead worker {i} holds work ({} running, {} queued)",
                        running.len(),
                        w.queue_len()
                    ),
                );
            }
            for t in running {
                self.seqs.push(t.seq);
                if let Some(slot) = self.inflight.get_mut(t.job.0 as usize) {
                    *slot += 1;
                }
                if t.finish_at < now {
                    self.violation(
                        now,
                        format!(
                            "worker {i} runs a task past its finish time ({} µs)",
                            t.finish_at.as_micros()
                        ),
                    );
                }
            }
            for p in w.queue() {
                if p.is_bound() {
                    if let Some(slot) = self.inflight.get_mut(p.job.0 as usize) {
                        *slot += 1;
                    }
                }
                if let Some(slack) = self.config.starvation_slack {
                    if p.bypass_count > slack {
                        self.violation(
                            now,
                            format!(
                                "starvation slack exceeded on worker {i}: {} bypassed {} times \
                                 (slack {slack})",
                                p.id, p.bypass_count
                            ),
                        );
                    }
                }
            }
        }

        self.seqs.sort_unstable();
        if self.seqs.windows(2).any(|w| w[0] == w[1]) {
            self.violation(now, "a task sequence number runs on two slots at once");
        }
        if busy_sum != state.metrics.busy_us {
            self.violation(
                now,
                format!(
                    "busy-time ledger desynced: metrics {} µs vs Σ workers {} µs",
                    state.metrics.busy_us, busy_sum
                ),
            );
        }

        // Bound probes in flight (travelling to a worker or awaiting a
        // retry) carry launched-but-not-running work.
        for ev in events.pending_events() {
            if let Event::ProbeArrival(_, p) | Event::ProbeRetry(p) = ev {
                if p.is_bound() {
                    if let Some(slot) = self.inflight.get_mut(p.job.0 as usize) {
                        *slot += 1;
                    }
                }
            }
        }

        let mut completed_total: u64 = 0;
        let mut complete_jobs: u64 = 0;
        for (i, job) in state.jobs.iter().enumerate() {
            completed_total += job.completed_tasks() as u64;
            if job.is_complete() {
                complete_jobs += 1;
            }
            if job.completed_tasks() > job.launched {
                self.violation(
                    now,
                    format!(
                        "job {i} completed {} tasks but launched only {}",
                        job.completed_tasks(),
                        job.launched
                    ),
                );
            }
            if job.is_failed() {
                // A failed job's pending pool is cancelled and its bound
                // casualties are dropped without retry; conservation holds
                // only for live jobs.
                continue;
            }
            if job.launched + job.pending_tasks() != job.num_tasks() {
                self.violation(
                    now,
                    format!(
                        "job {i} leaks tasks: launched {} + pending {} != submitted {}",
                        job.launched,
                        job.pending_tasks(),
                        job.num_tasks()
                    ),
                );
            }
            let visible = self.inflight[i];
            let expected = job.launched as i64 - job.completed_tasks() as i64;
            if visible != expected {
                self.violation(
                    now,
                    format!(
                        "job {i} in-flight mismatch: launched-completed {expected} vs \
                         {visible} visible on workers/queues/events"
                    ),
                );
            }
        }
        if state.metrics.counters.tasks_completed != completed_total {
            self.violation(
                now,
                format!(
                    "tasks_completed counter {} != Σ per-job completions {}",
                    state.metrics.counters.tasks_completed, completed_total
                ),
            );
        }
        if state.metrics.counters.jobs_completed != complete_jobs {
            self.violation(
                now,
                format!(
                    "jobs_completed counter {} != complete jobs {}",
                    state.metrics.counters.jobs_completed, complete_jobs
                ),
            );
        }
    }

    /// Re-derives the CRV ledger from the queues and slots and compares
    /// every counter against the incrementally maintained one.
    fn check_crv_ledger(&mut self, state: &SimState) {
        self.report.ledger_checks += 1;
        let now = state.now;
        let mut fresh = CrvLedger::new(state.workers.len());
        for (i, w) in state.workers.iter().enumerate() {
            if !w.is_idle() || !w.is_alive() {
                fresh.worker_busy(i);
            }
        }
        for w in &state.workers {
            for p in w.queue() {
                let set = &state.jobs[p.job.0 as usize].effective_constraints;
                fresh.probe_enqueued(p.id, p.job, set, &state.feasibility);
            }
        }
        let live = state.crv_ledger();
        if live.queued_probes() != fresh.queued_probes()
            || live.constrained_probes() != fresh.constrained_probes()
            || live.idle_workers() != fresh.idle_workers()
            || live.distinct_instances() != fresh.distinct_instances()
        {
            self.violation(
                now,
                format!(
                    "CRV ledger totals desynced: queued {}/{}, constrained {}/{}, idle {}/{}, \
                     instances {}/{} (incremental/rederived)",
                    live.queued_probes(),
                    fresh.queued_probes(),
                    live.constrained_probes(),
                    fresh.constrained_probes(),
                    live.idle_workers(),
                    fresh.idle_workers(),
                    live.distinct_instances(),
                    fresh.distinct_instances()
                ),
            );
        }
        for kind in ConstraintKind::ALL {
            if live.demand(kind) != fresh.demand(kind)
                || live.idle_supply(kind) != fresh.idle_supply(kind)
            {
                self.violation(
                    now,
                    format!(
                        "CRV ledger desynced on {kind}: demand {}/{}, supply {}/{} \
                         (incremental/rederived)",
                        live.demand(kind),
                        fresh.demand(kind),
                        live.idle_supply(kind),
                        fresh.idle_supply(kind)
                    ),
                );
            }
        }
    }

    /// Re-verifies a task launch against the job's *hard* constraints,
    /// recomputed from the machine attributes (the scheduler's own
    /// feasibility reasoning is never trusted), and checks admission never
    /// dropped a hard constraint from the effective set.
    pub(crate) fn check_placement(&mut self, state: &SimState, worker: WorkerId, job: JobId) {
        self.report.placements_checked += 1;
        let now = state.now;
        let j = &state.jobs[job.0 as usize];
        let machine = &state.feasibility.machines()[worker.index()];
        if !j.constraints.hard_satisfied_by(machine) {
            self.violation(
                now,
                format!(
                    "placement violates hard constraints: job {} launched on {worker}",
                    job.0
                ),
            );
        }
        if j.constraints.expr().is_some() {
            // Expression sets: the flat view is a conservative projection,
            // not a hard-constraint inventory, so containment is checked
            // semantically instead — the machine must also satisfy the hard
            // relaxation of whatever admission negotiated (e.g. the chosen
            // `Any` branch).
            if !j.effective_constraints.hard_satisfied_by(machine) {
                self.violation(
                    now,
                    format!(
                        "placement violates negotiated expression branch: job {} on {worker}",
                        job.0
                    ),
                );
            }
            return;
        }
        for hard in j.constraints.hard_constraints() {
            if !j.effective_constraints.iter().any(|c| c == hard) {
                self.violation(
                    now,
                    format!(
                        "admission dropped a hard constraint of job {}: {hard:?}",
                        job.0
                    ),
                );
            }
        }
    }

    /// Merges the trace-stream observations and returns the final report.
    pub(crate) fn finish(mut self) -> AuditReport {
        let stream = std::mem::take(&mut *self.stream.lock().expect("audit stream not poisoned"));
        for msg in stream.violations {
            self.report.violations += 1;
            if self.report.first_violations.len() < self.config.max_recorded {
                self.report.first_violations.push(format!("stream: {msg}"));
            }
        }
        self.report
    }
}

/// A deliberately naive re-implementation of the engine for tiny runs.
///
/// Where the real engine keeps a binary heap of events, an incremental CRV
/// ledger and touched-worker batching, the reference executor scans a flat
/// `Vec` for the earliest event on every step and re-walks everything it
/// needs — O(everything), nothing shared, nothing cached. Both executors
/// drive the *same* scheduler, state-mutation wrappers and accounting, so
/// a divergence pins a bug in the engine's event ordering or dispatch loop
/// rather than in policy code.
///
/// Supports fault-free runs only (the fault layer's RNG interleaving is an
/// engine-internal detail with no independent spec to check against), and
/// refuses clusters larger than [`ReferenceExecutor::MAX_WORKERS`] /
/// [`ReferenceExecutor::MAX_JOBS`].
#[derive(Debug)]
pub struct ReferenceExecutor;

impl ReferenceExecutor {
    /// Largest cluster the oracle accepts.
    pub const MAX_WORKERS: usize = 16;
    /// Largest trace the oracle accepts.
    pub const MAX_JOBS: usize = 64;

    /// Replays `sim` to completion under the naive semantics.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds the size caps or has fault
    /// injection enabled.
    pub fn run(sim: Simulation) -> SimResult {
        let (mut state, mut queue, mut scheduler) = sim.into_parts();
        assert!(
            state.workers.len() <= Self::MAX_WORKERS,
            "reference executor is O(everything): at most {} workers",
            Self::MAX_WORKERS
        );
        assert!(
            state.jobs.len() <= Self::MAX_JOBS,
            "reference executor is O(everything): at most {} jobs",
            Self::MAX_JOBS
        );
        assert!(
            !state.config.faults.is_active(),
            "reference executor supports fault-free runs only"
        );
        assert!(
            !state.config.federation.is_partitioned(),
            "reference executor supports centralized (K <= 1) runs only"
        );

        // The naive future-event list: a flat vector, linearly scanned for
        // the minimum (time, seq) on every step. Events scheduled by hooks
        // land in the real `EventQueue` (hooks only know `SimCtx`) and are
        // absorbed — unordered — after each step; the engine-assigned
        // sequence numbers come along, so the two executors resolve
        // same-time ties identically by construction.
        let mut pending: Vec<(SimTime, u64, Event)> = queue.drain_unordered();
        let mut next_task_seq: u64 = 0;

        while let Some(pos) = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, (t, s, _))| (*t, *s))
            .map(|(i, _)| i)
        {
            let (t, _seq, event) = pending.remove(pos);
            assert!(t >= state.now, "time must not go backwards");
            state.now = t;
            Self::handle(&mut state, &mut queue, scheduler.as_mut(), event);
            while let Some(worker) = state.touched.pop() {
                Self::dispatch(
                    &mut state,
                    &mut queue,
                    scheduler.as_mut(),
                    &mut next_task_seq,
                    worker,
                );
            }
            pending.extend(queue.drain_unordered());
        }

        finalize_result(state, scheduler.name().to_string(), None)
    }

    /// Mirror of the engine's `handle`, minus the fault arms.
    fn handle(
        state: &mut SimState,
        events: &mut EventQueue,
        scheduler: &mut dyn Scheduler,
        event: Event,
    ) {
        match event {
            Event::JobArrival(index) => {
                let id = JobId(index);
                let mut ctx = SimCtx { state, events };
                scheduler.on_job_arrival(id, &mut ctx);
            }
            Event::ProbeArrival(worker, mut probe) => {
                assert!(
                    state.workers[worker.index()].is_alive(),
                    "dead worker in a fault-free run"
                );
                probe.enqueued_at = state.now;
                state.enqueue_probe(worker, probe);
                let mut ctx = SimCtx { state, events };
                scheduler.on_probe_enqueued(worker, &mut ctx);
                state.touched.push(worker);
            }
            Event::TaskFinish(worker, seq) => {
                if !state.workers[worker.index()].has_running_seq(seq) {
                    return;
                }
                let task = state.finish_task_on(worker, seq);
                state.metrics.counters.tasks_completed += 1;
                let job_idx = task.job.0 as usize;
                let done = state.jobs[job_idx].complete_task(state.now);
                if state.now > state.metrics.makespan {
                    state.metrics.makespan = state.now;
                }
                if done {
                    if !state.jobs[job_idx].is_failed() {
                        state.outstanding_jobs -= 1;
                    }
                    let snapshot = state.jobs[job_idx].clone();
                    state.metrics.record_job_completion(&snapshot);
                    let mut ctx = SimCtx { state, events };
                    scheduler.on_job_complete(task.job, &mut ctx);
                }
                let mut ctx = SimCtx { state, events };
                scheduler.on_task_finish(worker, task.job, task.duration_us, &mut ctx);
                state.touched.push(worker);
            }
            Event::SchedulerWakeup(token) => {
                let mut ctx = SimCtx { state, events };
                scheduler.on_wakeup(token, &mut ctx);
            }
            Event::ProbeRetry(probe) => {
                let mut ctx = SimCtx { state, events };
                scheduler.on_probe_retry(probe, &mut ctx);
            }
            Event::WorkerCrash(_) | Event::WorkerRecover(_) => {
                unreachable!("fault events in a fault-free reference run")
            }
            Event::GossipPublish | Event::GossipDeliver => {
                unreachable!("gossip events in a centralized (K <= 1) reference run")
            }
        }
    }

    /// Mirror of the engine's `try_dispatch`.
    fn dispatch(
        state: &mut SimState,
        events: &mut EventQueue,
        scheduler: &mut dyn Scheduler,
        next_task_seq: &mut u64,
        worker: WorkerId,
    ) {
        loop {
            let w = &state.workers[worker.index()];
            if !w.is_alive() || !w.has_free_slot() || w.queue_len() == 0 {
                return;
            }
            let Some(idx) = scheduler.select_probe(worker, state) else {
                return;
            };
            let probe = state.remove_probe_at(worker, idx);
            let job_idx = probe.job.0 as usize;
            let (raw_duration_us, fetch_delay) = match probe.bound_duration_us {
                Some(d) => (d, SimDuration::ZERO),
                None => {
                    if !state.jobs[job_idx].has_pending() {
                        state.metrics.counters.redundant_probes += 1;
                        continue;
                    }
                    let d = state.jobs[job_idx].take_task();
                    (d, state.config.rtt())
                }
            };
            let clock_factor = if state.config.scale_duration_by_clock {
                let clock = state.feasibility.machines()[worker.index()].cpu_clock_mhz;
                f64::from(state.config.reference_clock_mhz) / f64::from(clock.max(1))
            } else {
                1.0
            };
            // Mirrors the engine's dispatch clamp: sub-microsecond tasks
            // store the same 1 us duration their finish event implies.
            let duration_us = (((raw_duration_us as f64) * probe.slowdown.max(1.0) * clock_factor)
                .round() as u64)
                .max(1);
            if probe.slowdown > 1.0 {
                state.metrics.counters.relaxed_tasks += 1;
            }
            let start = state.now + fetch_delay;
            let finish = start + SimDuration(duration_us);
            let now = state.now;
            {
                let SimState { jobs, metrics, .. } = state;
                let job = &mut jobs[job_idx];
                let wait = start.since(job.arrival);
                job.wait_sum_us += wait.as_micros();
                metrics.record_task_wait(job, wait, now);
            }
            let seq = *next_task_seq;
            *next_task_seq += 1;
            state.start_task_on(
                worker,
                RunningTask {
                    job: probe.job,
                    finish_at: finish,
                    duration_us,
                    raw_duration_us,
                    slowdown: probe.slowdown,
                    bound: probe.is_bound(),
                    seq,
                },
                now,
            );
            state.metrics.busy_us += finish.since(now).as_micros();
            events.schedule(finish, Event::TaskFinish(worker, seq));
            if state.workers[worker.index()].has_free_slot() {
                continue;
            }
            return;
        }
    }
}

/// Describes the first position at which two trace-record streams diverge,
/// or `None` if they are identical. Used by the differential tests to turn
/// "the digests differ" into an actionable event-level diff.
pub fn first_trace_divergence(real: &[TraceRecord], reference: &[TraceRecord]) -> Option<String> {
    for (i, (a, b)) in real.iter().zip(reference.iter()).enumerate() {
        if a != b {
            return Some(format!("record {i}: engine {a:?} vs reference {b:?}"));
        }
    }
    if real.len() != reference.len() {
        return Some(format!(
            "stream lengths differ: engine {} vs reference {} records",
            real.len(),
            reference.len()
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn default_config_matches_shipped_slack() {
        let c = AuditConfig::default();
        assert_eq!(c.starvation_slack, Some(5));
        assert!(c.check_crv_ledger);
    }

    #[test]
    fn clean_report_displays_summary() {
        let r = AuditReport::default();
        assert!(r.is_clean());
        assert!(r.to_string().contains("0 violations"));
    }

    #[test]
    fn stream_observer_flags_disorder_and_unpaired_crashes() {
        let auditor = InvariantAuditor::new(AuditConfig::default());
        let mut tracer = Tracer::with_sink(auditor.stream_observer());
        tracer.emit_record(TraceRecord::Recover {
            at_us: 10,
            worker: 0,
        });
        tracer.emit_record(TraceRecord::Crash {
            at_us: 5,
            worker: 1,
            killed: 0,
            dropped: 0,
        });
        tracer.emit_record(TraceRecord::Crash {
            at_us: 6,
            worker: 1,
            killed: 0,
            dropped: 0,
        });
        let report = auditor.finish();
        assert_eq!(report.violations, 3, "{report}");
        assert!(report.to_string().contains("recovered without a crash"));
        assert!(report.to_string().contains("crashed twice"));
        assert!(report.to_string().contains("out of order"));
    }

    #[test]
    fn divergence_reports_first_mismatch() {
        let a = [TraceRecord::Suppression {
            at_us: 1,
            worker: 0,
        }];
        let b = [TraceRecord::Suppression {
            at_us: 1,
            worker: 1,
        }];
        assert!(first_trace_divergence(&a, &a).is_none());
        let d = first_trace_divergence(&a, &b).expect("differs");
        assert!(d.starts_with("record 0"), "{d}");
        let d = first_trace_divergence(&a, &[]).expect("length differs");
        assert!(d.contains("lengths differ"), "{d}");
    }
}
