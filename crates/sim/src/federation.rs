//! Federated domain sharding and eventually-consistent CRV gossip.
//!
//! With [`crate::config::FederationConfig::domains`] = K > 1 the cluster is
//! split into K contiguous worker ranges ("domains"). Each domain owns a
//! range-restricted [`CrvLedger`] that the engine's probe/slot wrappers
//! keep exact alongside the cluster-wide ledger (the global ledger stays
//! authoritative for the invariant auditor and the debug oracle; domain
//! ledgers are an additive partition of it).
//!
//! Domains learn about each other only through **gossip**: every
//! [`crate::config::FederationConfig::gossip_interval`] the engine
//! publishes one compact [`DomainSummary`] per domain (per-kind CRV
//! demand/supply plus queue-pressure aggregates, O(kinds) each) and
//! installs the batch after
//! [`crate::config::FederationConfig::staleness`]. Cross-domain placement
//! reads only these stale summaries — never a remote ledger — so a crashed
//! worker's supply leaves its home ledger immediately but leaves remote
//! views only at the next delivered gossip round. That lag is the
//! eventual-consistency cost the federated benchmark ladder measures.
//!
//! Gossip is deterministic: no randomness is drawn, event times derive
//! only from the configured interval/staleness, and with K ≤ 1 nothing
//! here is scheduled at all (the byte-parity rule of
//! [`crate::config::FederationConfig`]).

use std::collections::VecDeque;

use phoenix_constraints::{ConstraintKind, ConstraintSet, FeasibilityIndex};

use crate::config::FederationConfig;
use crate::crvledger::CrvLedger;
use crate::time::SimTime;

/// One domain's published CRV summary: everything a remote domain is
/// allowed to know about it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DomainSummary {
    /// Virtual time the summary was snapshotted at.
    pub published_at: u64,
    /// Per kind: queued (probe, constraint) pairs demanding it.
    pub demand: [u64; ConstraintKind::COUNT],
    /// Per kind: idle in-domain workers supplying a demanded instance.
    pub idle_supply: [u64; ConstraintKind::COUNT],
    /// Queued probes across the domain's worker queues.
    pub queued_probes: usize,
    /// Queued probes belonging to constrained jobs.
    pub constrained_probes: usize,
    /// Idle (and alive) workers in the domain.
    pub idle_workers: usize,
}

/// Non-digested federation observability, reported in
/// [`crate::SimResult::federation`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// Gossip rounds published (one batch of K summaries each).
    pub gossip_rounds: u64,
    /// Summary batches installed as visible (equals rounds once delivered).
    pub batches_delivered: u64,
    /// Placements satisfied inside the job's home domain.
    pub home_samples: u64,
    /// Placements routed to a summary-chosen remote domain.
    pub remote_samples: u64,
    /// Placements that fell through to an unrestricted cluster-wide sample
    /// (no domain looked feasible, or the remote probe came back empty).
    pub cluster_fallbacks: u64,
}

/// Mutable federation state owned by the engine (one per simulation when
/// [`FederationConfig::is_active`]).
#[derive(Debug)]
pub struct FederationState {
    config: FederationConfig,
    workers: usize,
    /// `ranges[d] = (base, len)` of domain `d`'s contiguous worker slice.
    ranges: Vec<(usize, usize)>,
    /// Per-domain range-restricted ledgers, kept exact by the engine.
    ledgers: Vec<CrvLedger>,
    /// Latest *installed* summary per domain (what remote placement sees).
    visible: Vec<DomainSummary>,
    /// Published-but-undelivered summary batches, FIFO (every batch waits
    /// the same staleness, so delivery order matches publish order).
    inflight: VecDeque<Vec<DomainSummary>>,
    /// Observability counters.
    pub stats: FederationStats,
}

impl FederationState {
    /// Shards `workers` into `config.domains` near-equal contiguous
    /// ranges (the first `workers % K` domains get one extra worker).
    pub fn new(config: FederationConfig, workers: usize) -> Self {
        let k = config.domains.max(1);
        let mut ranges = Vec::with_capacity(k);
        let mut base = 0;
        for d in 0..k {
            let len = workers / k + usize::from(d < workers % k);
            ranges.push((base, len));
            base += len;
        }
        debug_assert_eq!(base, workers, "domain ranges must tile the cluster");
        let ledgers = ranges
            .iter()
            .map(|&(base, len)| CrvLedger::with_range(base, len))
            .collect();
        FederationState {
            config,
            workers,
            visible: vec![DomainSummary::default(); k],
            inflight: VecDeque::new(),
            ranges,
            ledgers,
            stats: FederationStats::default(),
        }
    }

    /// The federation configuration this state was built from.
    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.ranges.len()
    }

    /// The home domain of a job: a static `job_id mod K` assignment (the
    /// per-domain scheduler front-end the job arrived at).
    pub fn domain_of_job(&self, job_id: u32) -> usize {
        job_id as usize % self.ranges.len()
    }

    /// The domain owning `worker`.
    pub fn domain_of_worker(&self, worker: usize) -> usize {
        debug_assert!(worker < self.workers);
        // Contiguous near-equal ranges: derive the domain arithmetically
        // (the first `rem` domains are one wider).
        let k = self.ranges.len();
        let (quot, rem) = (self.workers / k, self.workers % k);
        let wide = rem * (quot + 1);
        let d = if worker < wide {
            worker / (quot + 1)
        } else {
            match (worker - wide).checked_div(quot) {
                Some(narrow) => rem + narrow,
                None => k - 1,
            }
        };
        debug_assert!({
            let (base, len) = self.ranges[d];
            (base..base + len).contains(&worker)
        });
        d
    }

    /// The contiguous worker range `(base, len)` of domain `d`.
    pub fn range(&self, d: usize) -> (usize, usize) {
        self.ranges[d]
    }

    /// The live ledger of domain `d` (its own domain reads this directly;
    /// remote domains must go through [`FederationState::visible`]).
    pub fn ledger(&self, d: usize) -> &CrvLedger {
        &self.ledgers[d]
    }

    /// Mutable access for the engine's probe/slot wrappers.
    pub(crate) fn ledger_mut(&mut self, d: usize) -> &mut CrvLedger {
        &mut self.ledgers[d]
    }

    /// Re-creates every domain ledger fresh (all-idle, no demand) for the
    /// engine's from-scratch rebuild path.
    pub(crate) fn reset_ledgers(&mut self) {
        self.ledgers = self
            .ranges
            .iter()
            .map(|&(base, len)| CrvLedger::with_range(base, len))
            .collect();
    }

    /// The latest installed (stale) summary of domain `d`.
    pub fn visible(&self, d: usize) -> &DomainSummary {
        &self.visible[d]
    }

    /// Snapshots every domain ledger into a summary batch and queues it
    /// for delivery. Returns `true` when the batch must be delivered by a
    /// later `GossipDeliver` event (nonzero staleness); with zero
    /// staleness the batch is installed immediately.
    pub(crate) fn publish(&mut self, now: SimTime) -> bool {
        let batch: Vec<DomainSummary> = self
            .ledgers
            .iter()
            .map(|ledger| DomainSummary {
                published_at: now.as_micros(),
                demand: std::array::from_fn(|k| ledger.demand(ConstraintKind::ALL[k])),
                idle_supply: std::array::from_fn(|k| ledger.idle_supply(ConstraintKind::ALL[k])),
                queued_probes: ledger.queued_probes(),
                constrained_probes: ledger.constrained_probes(),
                idle_workers: ledger.idle_workers(),
            })
            .collect();
        self.stats.gossip_rounds += 1;
        if self.config.staleness.as_micros() == 0 {
            self.visible = batch;
            self.stats.batches_delivered += 1;
            false
        } else {
            self.inflight.push_back(batch);
            true
        }
    }

    /// Installs the oldest in-flight batch (the matching `GossipDeliver`
    /// event fired).
    pub(crate) fn deliver(&mut self) {
        if let Some(batch) = self.inflight.pop_front() {
            self.visible = batch;
            self.stats.batches_delivered += 1;
        }
    }

    /// Picks the most promising *remote* domain for a probe demanding
    /// `set`, judged purely from installed summaries plus the static
    /// topology: domains whose worker range contains no feasible machine
    /// are skipped via the partitioned index view
    /// ([`FeasibilityIndex::count_feasible_in_range`]), and the survivors
    /// are ranked by visible idle workers, then lighter queue pressure,
    /// then domain id (fully deterministic).
    pub fn best_remote_domain(
        &self,
        home: usize,
        set: &ConstraintSet,
        feasibility: &FeasibilityIndex,
    ) -> Option<usize> {
        let mut best: Option<(usize, usize, usize)> = None; // (idle, queued, d)
        for d in 0..self.domains() {
            if d == home {
                continue;
            }
            let (base, len) = self.ranges[d];
            if len == 0 || feasibility.count_feasible_in_range(set, base, base + len) == 0 {
                continue;
            }
            let s = &self.visible[d];
            let better = match best {
                None => true,
                Some((idle, queued, _)) => {
                    s.idle_workers > idle || (s.idle_workers == idle && s.queued_probes < queued)
                }
            };
            if better {
                best = Some((s.idle_workers, s.queued_probes, d));
            }
        }
        best.map(|(_, _, d)| d)
    }

    /// Sum of a per-kind field over every installed summary — the
    /// eventually-consistent cluster-wide view a federated monitor reads.
    pub fn visible_demand(&self, kind: ConstraintKind) -> u64 {
        self.visible.iter().map(|s| s.demand[kind.index()]).sum()
    }

    /// Cluster-wide idle supply of `kind` under the stale view.
    pub fn visible_idle_supply(&self, kind: ConstraintKind) -> u64 {
        self.visible
            .iter()
            .map(|s| s.idle_supply[kind.index()])
            .sum()
    }

    /// Cluster-wide queued probes under the stale view.
    pub fn visible_queued_probes(&self) -> usize {
        self.visible.iter().map(|s| s.queued_probes).sum()
    }

    /// Cluster-wide constrained queued probes under the stale view.
    pub fn visible_constrained_probes(&self) -> usize {
        self.visible.iter().map(|s| s.constrained_probes).sum()
    }

    /// Cluster-wide idle workers under the stale view.
    pub fn visible_idle_workers(&self) -> usize {
        self.visible.iter().map(|s| s.idle_workers).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn cfg(k: usize, staleness_us: u64) -> FederationConfig {
        FederationConfig::sharded(k, SimDuration(staleness_us))
    }

    #[test]
    fn ranges_tile_the_cluster_and_domain_lookup_agrees() {
        for (workers, k) in [(10, 4), (100, 16), (7, 3), (5, 8), (1, 1)] {
            let fed = FederationState::new(cfg(k, 0), workers);
            let mut covered = 0;
            for d in 0..fed.domains() {
                let (base, len) = fed.range(d);
                assert_eq!(base, covered, "{workers}w/{k}d");
                covered += len;
                for w in base..base + len {
                    assert_eq!(fed.domain_of_worker(w), d, "worker {w} of {workers}/{k}");
                }
            }
            assert_eq!(covered, workers);
        }
    }

    #[test]
    fn jobs_round_robin_over_domains() {
        let fed = FederationState::new(cfg(4, 0), 16);
        assert_eq!(fed.domain_of_job(0), 0);
        assert_eq!(fed.domain_of_job(5), 1);
        assert_eq!(fed.domain_of_job(7), 3);
    }

    #[test]
    fn zero_staleness_installs_at_publish() {
        let mut fed = FederationState::new(cfg(2, 0), 8);
        assert!(!fed.publish(SimTime(100)));
        assert_eq!(fed.visible(0).published_at, 100);
        assert_eq!(fed.visible(0).idle_workers, 4);
        assert_eq!(fed.stats.gossip_rounds, 1);
        assert_eq!(fed.stats.batches_delivered, 1);
    }

    #[test]
    fn nonzero_staleness_waits_for_delivery() {
        let mut fed = FederationState::new(cfg(2, 500), 8);
        assert!(fed.publish(SimTime(100)));
        // Still the default (empty) view until delivery.
        assert_eq!(fed.visible(1).published_at, 0);
        assert_eq!(fed.visible(1).idle_workers, 0);
        fed.deliver();
        assert_eq!(fed.visible(1).published_at, 100);
        assert_eq!(fed.visible(1).idle_workers, 4);
        assert_eq!(fed.stats.batches_delivered, 1);
    }

    #[test]
    fn visible_aggregates_sum_over_domains() {
        let mut fed = FederationState::new(cfg(4, 0), 12);
        fed.publish(SimTime(1));
        assert_eq!(fed.visible_idle_workers(), 12);
        assert_eq!(fed.visible_queued_probes(), 0);
    }
}
