//! Deterministic fault injection: worker churn and message-level faults.
//!
//! A [`FaultPlan`] describes the perturbations a run is subjected to:
//!
//! * **Worker crashes**: strikes arrive with a jittered mean interval; the
//!   victim loses its running tasks and queued probes and stays down for a
//!   jittered mean downtime before recovering. Crash = idle-supply removal,
//!   recovery = idle-supply addition, so the incremental
//!   [`crate::CrvLedger`] stays exact through churn.
//! * **Probe loss**: every probe transfer (initial send, steal, migration,
//!   retry) is dropped with probability [`FaultPlan::probe_loss`].
//! * **Probe delay**: a transfer that survives may pay an extra uniform
//!   delay on top of the one-way network delay.
//! * **Heartbeat jitter**: scheduler wakeups slip by a uniform amount,
//!   modelling control-plane messaging variance.
//!
//! Lost or killed work is never abandoned: the engine converts every
//! casualty into an [`crate::Event::ProbeRetry`] with capped exponential
//! backoff ([`FaultPlan::retry_delay`]), and the
//! [`crate::Scheduler::on_probe_retry`] hook re-places it.
//!
//! All fault randomness is drawn from a dedicated RNG stream seeded from
//! the simulation seed, and every draw is gated on the relevant knob being
//! enabled — with [`FaultPlan::none`] the engine performs no draws and
//! schedules no extra events, so a fault-free run is byte-identical to one
//! built before this subsystem existed.

use crate::time::SimDuration;

/// The fault profile of one simulation run (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Mean time between worker-crash strikes (each strike is jittered
    /// uniformly in `[interval/2, 3·interval/2)` and picks a uniform random
    /// victim). Zero disables crashes.
    pub crash_interval: SimDuration,
    /// Mean downtime of a crashed worker before it recovers (jittered like
    /// the strike interval).
    pub downtime: SimDuration,
    /// Probability that any probe transfer is lost in flight.
    pub probe_loss: f64,
    /// Probability that a surviving probe transfer is delayed.
    pub probe_delay_prob: f64,
    /// Maximum extra delivery delay of a delayed probe (uniform in
    /// `[0, max)`).
    pub probe_delay_max: SimDuration,
    /// Maximum extra slip of scheduler wakeups (uniform in `[0, max)`).
    /// Zero disables jitter.
    pub heartbeat_jitter: SimDuration,
    /// Base retry timeout: a lost probe is re-placed after
    /// `retry_timeout · 2^min(retries, max_backoff_exponent)`.
    pub retry_timeout: SimDuration,
    /// Cap on the backoff exponent.
    pub max_backoff_exponent: u32,
}

impl FaultPlan {
    /// The fault-free plan: no crashes, no loss, no delay, no jitter.
    /// Costs nothing — the engine draws no fault randomness and schedules
    /// no fault events.
    pub fn none() -> Self {
        FaultPlan {
            crash_interval: SimDuration::ZERO,
            downtime: SimDuration::ZERO,
            probe_loss: 0.0,
            probe_delay_prob: 0.0,
            probe_delay_max: SimDuration::ZERO,
            heartbeat_jitter: SimDuration::ZERO,
            retry_timeout: SimDuration::from_secs(1),
            max_backoff_exponent: 5,
        }
    }

    /// The reference chaos profile used by the test battery: one crash
    /// strike per simulated minute (≈1 % of a 100-worker cluster crashing
    /// per minute) with 30 s mean downtime, 0.5 % probe loss, 1 % of probes
    /// delayed up to 5 ms, and 100 ms heartbeat jitter.
    pub fn reference() -> Self {
        FaultPlan {
            crash_interval: SimDuration::from_secs(60),
            downtime: SimDuration::from_secs(30),
            probe_loss: 0.005,
            probe_delay_prob: 0.01,
            probe_delay_max: SimDuration::from_millis(5),
            heartbeat_jitter: SimDuration::from_millis(100),
            retry_timeout: SimDuration::from_secs(1),
            max_backoff_exponent: 5,
        }
    }

    /// An aggressive churn profile: a strike every 20 s with 60 s mean
    /// downtime, 2 % probe loss, 5 % of probes delayed up to 20 ms, and
    /// 500 ms heartbeat jitter.
    pub fn heavy() -> Self {
        FaultPlan {
            crash_interval: SimDuration::from_secs(20),
            downtime: SimDuration::from_secs(60),
            probe_loss: 0.02,
            probe_delay_prob: 0.05,
            probe_delay_max: SimDuration::from_millis(20),
            heartbeat_jitter: SimDuration::from_millis(500),
            retry_timeout: SimDuration::from_millis(500),
            max_backoff_exponent: 6,
        }
    }

    /// Looks up a named profile (`none`, `reference`, `heavy`) — the
    /// spelling accepted by the experiment binaries' `--faults` flag.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "none" => Some(FaultPlan::none()),
            "reference" => Some(FaultPlan::reference()),
            "heavy" => Some(FaultPlan::heavy()),
            _ => None,
        }
    }

    /// Whether any fault mechanism is enabled.
    pub fn is_active(&self) -> bool {
        self.crash_interval.as_micros() > 0
            || self.probe_loss > 0.0
            || self.probe_delay_prob > 0.0
            || self.heartbeat_jitter.as_micros() > 0
    }

    /// Whether worker crashes are enabled.
    pub fn crashes_enabled(&self) -> bool {
        self.crash_interval.as_micros() > 0
    }

    /// The retry delay for a probe that has already been retried `retries`
    /// times: capped exponential backoff over [`FaultPlan::retry_timeout`].
    pub fn retry_delay(&self, retries: u8) -> SimDuration {
        let base = self.retry_timeout.as_micros().max(1);
        let exp = u32::from(retries).min(self.max_backoff_exponent);
        SimDuration(base.saturating_mul(1u64 << exp.min(63)))
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_default() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::none().crashes_enabled());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
    }

    #[test]
    fn profiles_are_active() {
        assert!(FaultPlan::reference().is_active());
        assert!(FaultPlan::reference().crashes_enabled());
        assert!(FaultPlan::heavy().is_active());
        assert!(FaultPlan::heavy().probe_loss > FaultPlan::reference().probe_loss);
    }

    #[test]
    fn retry_backoff_doubles_then_caps() {
        let plan = FaultPlan::reference();
        let base = plan.retry_timeout.as_micros();
        assert_eq!(plan.retry_delay(0).as_micros(), base);
        assert_eq!(plan.retry_delay(1).as_micros(), base * 2);
        assert_eq!(plan.retry_delay(3).as_micros(), base * 8);
        // Capped at 2^max_backoff_exponent.
        let cap = base * (1 << plan.max_backoff_exponent);
        assert_eq!(plan.retry_delay(5).as_micros(), cap);
        assert_eq!(plan.retry_delay(200).as_micros(), cap);
    }

    #[test]
    fn single_mechanism_plans_are_active() {
        let mut plan = FaultPlan::none();
        plan.probe_loss = 0.1;
        assert!(plan.is_active());
        let mut plan = FaultPlan::none();
        plan.heartbeat_jitter = SimDuration::from_millis(1);
        assert!(plan.is_active());
    }
}
