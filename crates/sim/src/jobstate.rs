//! Per-job progress tracking inside the simulator.

use phoenix_constraints::ConstraintSet;
use phoenix_traces::{Job, JobId};

use crate::time::{SimDuration, SimTime};

/// Runtime state of one job.
#[derive(Debug, Clone)]
pub struct JobState {
    /// Job id (index into the simulation's job table).
    pub id: JobId,
    /// Arrival time.
    pub arrival: SimTime,
    /// True per-task durations, microseconds, in launch order.
    durations_us: Vec<u64>,
    /// Scheduler-visible estimated task duration, microseconds.
    pub estimated_task_us: u64,
    /// Longest task duration, microseconds — the job's ideal (zero-wait,
    /// fully parallel) response time.
    pub max_task_us: u64,
    /// The job's original constraint set.
    pub constraints: ConstraintSet,
    /// The constraint set actually used for placement (admission control
    /// may have relaxed soft constraints).
    pub effective_constraints: ConstraintSet,
    /// Short/long classification from the trace.
    pub short: bool,
    /// Submitting user/tenant.
    pub user: u32,
    next_task: usize,
    completed: usize,
    failed: bool,
    /// Durations of tasks whose launch was undone by a worker crash; they
    /// are re-launched (LIFO) before any not-yet-launched task.
    requeued_us: Vec<u64>,
    /// Sum of queue waits of launched tasks, microseconds.
    pub wait_sum_us: u64,
    /// Number of launched tasks.
    pub launched: usize,
    /// Completion time of the last task.
    pub finished_at: Option<SimTime>,
}

impl JobState {
    /// Builds runtime state from a trace job.
    pub fn from_job(job: &Job) -> Self {
        let durations_us: Vec<u64> = job
            .task_durations_s
            .iter()
            .map(|&d| SimDuration::from_secs_f64(d).as_micros().max(1))
            .collect();
        let max_task_us = durations_us.iter().copied().max().unwrap_or(1);
        JobState {
            id: job.id,
            arrival: SimTime::from_secs_f64(job.arrival_s),
            durations_us,
            max_task_us,
            estimated_task_us: SimDuration::from_secs_f64(job.estimated_task_duration_s)
                .as_micros()
                .max(1),
            constraints: job.constraints.clone(),
            effective_constraints: job.constraints.clone(),
            short: job.short,
            user: job.user,
            next_task: 0,
            completed: 0,
            failed: false,
            requeued_us: Vec::new(),
            wait_sum_us: 0,
            launched: 0,
            finished_at: None,
        }
    }

    /// Total number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.durations_us.len()
    }

    /// Whether unlaunched tasks remain (and the job was not failed).
    pub fn has_pending(&self) -> bool {
        !self.failed && (!self.requeued_us.is_empty() || self.next_task < self.durations_us.len())
    }

    /// Number of tasks not yet launched (including crash-requeued ones).
    pub fn pending_tasks(&self) -> usize {
        if self.failed {
            0
        } else {
            self.durations_us.len() - self.next_task + self.requeued_us.len()
        }
    }

    /// Number of completed tasks.
    pub fn completed_tasks(&self) -> usize {
        self.completed
    }

    /// Takes the next unlaunched task, returning its true duration in
    /// microseconds.
    ///
    /// # Panics
    ///
    /// Panics if no task is pending.
    pub fn take_task(&mut self) -> u64 {
        assert!(self.has_pending(), "no pending task to take");
        let d = if let Some(d) = self.requeued_us.pop() {
            d
        } else {
            let d = self.durations_us[self.next_task];
            self.next_task += 1;
            d
        };
        self.launched += 1;
        d
    }

    /// Returns a killed task's duration to the pending pool after a worker
    /// crash undid its launch. The matching launch is also undone so wait
    /// and completion accounting stay conserved.
    pub fn requeue_task(&mut self, raw_duration_us: u64) {
        debug_assert!(self.launched > self.completed, "requeue without launch");
        self.launched -= 1;
        self.requeued_us.push(raw_duration_us);
    }

    /// Records one task completion at `now`; returns true if this completed
    /// the whole job.
    pub fn complete_task(&mut self, now: SimTime) -> bool {
        self.completed += 1;
        debug_assert!(self.completed <= self.launched);
        let done = self.completed == self.durations_us.len();
        if done {
            self.finished_at = Some(now);
        }
        done
    }

    /// Marks the job failed (unsatisfiable constraints). Pending tasks are
    /// cancelled; already-running tasks finish normally.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Whether the job was failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Whether every task completed.
    pub fn is_complete(&self) -> bool {
        self.completed == self.durations_us.len()
    }

    /// Whether the job carries constraints (by its *original* set).
    pub fn is_constrained(&self) -> bool {
        !self.constraints.is_unconstrained()
    }

    /// Job response time (arrival → last completion), if complete.
    pub fn response_time(&self) -> Option<SimDuration> {
        self.finished_at.map(|t| t.since(self.arrival))
    }

    /// Mean task queue wait, if any task launched.
    pub fn mean_wait(&self) -> Option<SimDuration> {
        if self.launched == 0 {
            None
        } else {
            Some(SimDuration(self.wait_sum_us / self.launched as u64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobState {
        JobState::from_job(&Job {
            id: JobId(4),
            arrival_s: 1.0,
            task_durations_s: vec![2.0, 3.0],
            estimated_task_duration_s: 2.5,
            constraints: ConstraintSet::unconstrained(),
            short: true,
            user: 0,
        })
    }

    #[test]
    fn lifecycle() {
        let mut j = job();
        assert!(j.has_pending());
        assert_eq!(j.pending_tasks(), 2);
        let d0 = j.take_task();
        assert_eq!(d0, 2_000_000);
        assert!(!j.complete_task(SimTime(5_000_000)));
        let _ = j.take_task();
        assert!(!j.has_pending());
        assert!(j.complete_task(SimTime(8_000_000)));
        assert!(j.is_complete());
        assert_eq!(j.response_time().unwrap(), SimDuration::from_secs_f64(7.0));
    }

    #[test]
    fn fail_cancels_pending() {
        let mut j = job();
        let _ = j.take_task();
        j.fail();
        assert!(!j.has_pending());
        assert_eq!(j.pending_tasks(), 0);
        assert!(j.is_failed());
        assert!(!j.is_complete());
    }

    #[test]
    #[should_panic(expected = "no pending task")]
    fn take_from_exhausted_panics() {
        let mut j = job();
        let _ = j.take_task();
        let _ = j.take_task();
        let _ = j.take_task();
    }

    #[test]
    fn mean_wait_accumulates() {
        let mut j = job();
        assert!(j.mean_wait().is_none());
        let _ = j.take_task();
        j.wait_sum_us += 100;
        let _ = j.take_task();
        j.wait_sum_us += 300;
        assert_eq!(j.mean_wait().unwrap().as_micros(), 200);
    }

    #[test]
    fn requeue_returns_task_to_pending_pool() {
        let mut j = job();
        let d0 = j.take_task();
        let _ = j.take_task();
        assert!(!j.has_pending());
        // A crash kills the first task mid-run: its duration comes back.
        j.requeue_task(d0);
        assert!(j.has_pending());
        assert_eq!(j.pending_tasks(), 1);
        assert_eq!(j.launched, 1);
        // Relaunch runs the requeued duration, not a fresh trace slot.
        assert_eq!(j.take_task(), d0);
        assert!(!j.has_pending());
        assert!(!j.complete_task(SimTime(1)));
        assert!(j.complete_task(SimTime(2)));
        assert!(j.is_complete());
    }

    #[test]
    fn zero_duration_tasks_are_clamped_to_one_microsecond() {
        let j = JobState::from_job(&Job {
            id: JobId(0),
            arrival_s: 0.0,
            task_durations_s: vec![0.0],
            estimated_task_duration_s: 0.0,
            constraints: ConstraintSet::unconstrained(),
            short: true,
            user: 0,
        });
        assert_eq!(j.durations_us[0], 1);
        assert_eq!(j.estimated_task_us, 1);
    }
}
