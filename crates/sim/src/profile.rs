//! Opt-in wall-clock profiling of the engine's hot paths.
//!
//! When enabled, the engine and the schedulers bracket their hot sections
//! with [`Profiler::begin`]/[`Profiler::end`] pairs keyed by a
//! [`ProfileScope`]. When disabled (the default), `begin` returns `None`
//! without reading the clock, so a normal run pays one branch per site.
//!
//! The accumulated per-scope call counts and wall-clock totals are carried
//! out of the run as a [`ProfileReport`] (`SimResult::profile`). Wall-clock
//! numbers are *not* part of [`crate::SimResult::digest`] — they vary
//! run-to-run even for identical simulations — but the call counts are
//! deterministic and useful when comparing two profiles of the same seed.

use std::fmt;
use std::time::{Duration, Instant};

/// The engine/scheduler hot paths the profiler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileScope {
    /// `Simulation::try_dispatch`: serving a worker's queue.
    Dispatch = 0,
    /// The CRV monitor refresh inside the scheduler heartbeat.
    HeartbeatRefresh = 1,
    /// Heartbeat CRV queue reordering + stuck-probe migration.
    Reorder = 2,
    /// Work stealing on task finish.
    Steal = 3,
    /// Feasible-worker sampling during placement (`SimCtx::sample_*`).
    Sample = 4,
    /// Popping the next event batch off the event queue.
    EventPop = 5,
    /// Dispatching one event to the engine + scheduler (nested scopes
    /// such as `Sample` and `Steal` are counted in both).
    HandleEvent = 6,
}

impl ProfileScope {
    /// All scopes, in display order.
    pub const ALL: [ProfileScope; 7] = [
        ProfileScope::Dispatch,
        ProfileScope::HeartbeatRefresh,
        ProfileScope::Reorder,
        ProfileScope::Steal,
        ProfileScope::Sample,
        ProfileScope::EventPop,
        ProfileScope::HandleEvent,
    ];

    /// Human/table name of the scope.
    pub fn name(self) -> &'static str {
        match self {
            ProfileScope::Dispatch => "dispatch",
            ProfileScope::HeartbeatRefresh => "heartbeat_refresh",
            ProfileScope::Reorder => "reorder",
            ProfileScope::Steal => "steal",
            ProfileScope::Sample => "sample",
            ProfileScope::EventPop => "event_pop",
            ProfileScope::HandleEvent => "handle_event",
        }
    }
}

/// One scope's accumulated totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeTotals {
    /// Times the scope was entered.
    pub calls: u64,
    /// Total wall-clock time spent inside, nanoseconds.
    pub total_ns: u64,
}

impl ScopeTotals {
    /// Mean time per call, nanoseconds (0 when never called).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// Accumulates per-scope wall-clock totals; disabled (and free apart from
/// one branch per site) unless [`Profiler::enabled`] was constructed.
#[derive(Debug, Clone)]
pub struct Profiler {
    enabled: bool,
    totals: [ScopeTotals; 7],
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::disabled()
    }
}

impl Profiler {
    /// A profiler that never reads the clock.
    pub fn disabled() -> Self {
        Profiler {
            enabled: false,
            totals: [ScopeTotals::default(); 7],
        }
    }

    /// A recording profiler.
    pub fn enabled() -> Self {
        Profiler {
            enabled: true,
            totals: [ScopeTotals::default(); 7],
        }
    }

    /// Whether the profiler records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Marks the start of a scope. Returns `None` (no clock read) when
    /// disabled; pass the value to [`Profiler::end`] either way.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Marks the end of `scope`, accumulating since `started` (a no-op when
    /// `started` is `None`, i.e. the profiler was disabled at `begin`).
    #[inline]
    pub fn end(&mut self, scope: ProfileScope, started: Option<Instant>) {
        if let Some(start) = started {
            let t = &mut self.totals[scope as usize];
            t.calls += 1;
            t.total_ns = t
                .total_ns
                .saturating_add(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Snapshot of the accumulated totals (`None` if disabled — a run
    /// without `--profile` carries no report).
    pub fn report(&self) -> Option<ProfileReport> {
        if !self.enabled {
            return None;
        }
        Some(ProfileReport {
            totals: self.totals,
        })
    }
}

/// Per-scope wall-clock totals of one run, rendered by `Display` as the
/// bench runner's `--profile` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileReport {
    totals: [ScopeTotals; 7],
}

impl ProfileReport {
    /// Totals for one scope.
    pub fn scope(&self, scope: ProfileScope) -> ScopeTotals {
        self.totals[scope as usize]
    }

    /// Total wall-clock across all scopes, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.totals.iter().map(|t| t.total_ns).sum()
    }
}

fn fmt_ns(ns: u64) -> String {
    let d = Duration::from_nanos(ns);
    if ns >= 1_000_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.2}µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>10} {:>12} {:>12}",
            "scope", "calls", "total", "mean/call"
        )?;
        for scope in ProfileScope::ALL {
            let t = self.scope(scope);
            writeln!(
                f,
                "{:<18} {:>10} {:>12} {:>12}",
                scope.name(),
                t.calls,
                fmt_ns(t.total_ns),
                fmt_ns(t.mean_ns())
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_reads_no_clock_and_reports_nothing() {
        let mut p = Profiler::disabled();
        let started = p.begin();
        assert!(started.is_none(), "disabled begin must not read the clock");
        p.end(ProfileScope::Dispatch, started);
        assert!(p.report().is_none());
    }

    #[test]
    fn enabled_profiler_accumulates_calls_and_time() {
        let mut p = Profiler::enabled();
        for _ in 0..3 {
            let started = p.begin();
            assert!(started.is_some());
            p.end(ProfileScope::Reorder, started);
        }
        let report = p.report().expect("enabled profiler reports");
        assert_eq!(report.scope(ProfileScope::Reorder).calls, 3);
        assert_eq!(report.scope(ProfileScope::Dispatch).calls, 0);
        let table = report.to_string();
        assert!(table.contains("reorder"), "{table}");
        assert!(table.contains("dispatch"), "{table}");
        assert!(table.contains("heartbeat_refresh"), "{table}");
        assert!(table.contains("steal"), "{table}");
        assert!(table.contains("sample"), "{table}");
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
