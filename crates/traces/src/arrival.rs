//! Bursty job-arrival process.
//!
//! §V-A: *"the cluster load is bursty and unpredictable with the peak to
//! median ratio ranging from 9:1 to 260:1 in these traces"*. We reproduce
//! this with a two-state Markov-modulated Poisson process (MMPP): a *calm*
//! state at a baseline rate and a *burst* state at `peak_to_median ×` the
//! baseline, with exponential dwell times. The baseline rate is normalized
//! so the long-run mean arrival rate equals the requested rate, keeping
//! offered load independent of burstiness.

use rand::Rng;

use crate::distributions::Exponential;

/// Burstiness parameters of the MMPP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstModel {
    /// Ratio of burst-state to calm-state arrival rate (the trace's
    /// peak:median ratio).
    pub peak_to_median: f64,
    /// Mean dwell time in the calm state, seconds.
    pub calm_dwell_s: f64,
    /// Mean dwell time in the burst state, seconds.
    pub burst_dwell_s: f64,
}

impl BurstModel {
    /// Creates a burst model.
    ///
    /// # Panics
    ///
    /// Panics unless `peak_to_median >= 1` and dwell times are positive.
    pub fn new(peak_to_median: f64, calm_dwell_s: f64, burst_dwell_s: f64) -> Self {
        assert!(peak_to_median >= 1.0, "peak:median must be >= 1");
        assert!(
            calm_dwell_s > 0.0 && burst_dwell_s > 0.0,
            "dwell times must be positive"
        );
        BurstModel {
            peak_to_median,
            calm_dwell_s,
            burst_dwell_s,
        }
    }

    /// A Poisson process (no bursts).
    pub fn poisson() -> Self {
        Self::new(1.0, 1.0, 1.0)
    }

    /// Long-run fraction of time spent in the burst state.
    pub fn burst_time_fraction(&self) -> f64 {
        self.burst_dwell_s / (self.calm_dwell_s + self.burst_dwell_s)
    }
}

/// A generator of arrival timestamps with MMPP burstiness.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    calm_rate: f64,
    burst_rate: f64,
    model: BurstModel,
    /// Current simulated time (s).
    now: f64,
    /// Time at which the current state ends (s).
    state_end: f64,
    in_burst: bool,
}

impl ArrivalProcess {
    /// Creates a process whose *mean* arrival rate is `mean_rate` jobs per
    /// second, modulated by `model`.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_rate` is positive and finite.
    pub fn new(mean_rate: f64, model: BurstModel) -> Self {
        assert!(
            mean_rate > 0.0 && mean_rate.is_finite(),
            "mean rate must be positive"
        );
        let f_burst = model.burst_time_fraction();
        // mean = calm*(1-f) + calm*ratio*f  =>  calm = mean / (1-f+ratio*f).
        let calm_rate = mean_rate / ((1.0 - f_burst) + model.peak_to_median * f_burst);
        ArrivalProcess {
            calm_rate,
            burst_rate: calm_rate * model.peak_to_median,
            model,
            now: 0.0,
            state_end: 0.0,
            in_burst: true, // immediately re-drawn on first next()
        }
    }

    /// The calm-state rate (the process's "median" rate).
    pub fn calm_rate(&self) -> f64 {
        self.calm_rate
    }

    /// The burst-state rate (the process's "peak" rate).
    pub fn burst_rate(&self) -> f64 {
        self.burst_rate
    }

    fn advance_state<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.in_burst = !self.in_burst;
        let dwell = if self.in_burst {
            Exponential::new(1.0 / self.model.burst_dwell_s).sample(rng)
        } else {
            Exponential::new(1.0 / self.model.calm_dwell_s).sample(rng)
        };
        self.state_end = self.now + dwell;
    }

    /// Returns the next arrival timestamp (seconds since process start).
    ///
    /// Arrivals within a state are Poisson at that state's rate; the state
    /// flips when its dwell time elapses (thinning across the boundary).
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        loop {
            if self.now >= self.state_end {
                self.advance_state(rng);
            }
            let rate = if self.in_burst {
                self.burst_rate
            } else {
                self.calm_rate
            };
            let gap = Exponential::new(rate).sample(rng);
            if self.now + gap <= self.state_end {
                self.now += gap;
                return self.now;
            }
            // The candidate arrival falls past the state boundary: move to
            // the boundary and re-draw in the next state (memorylessness
            // makes this exact).
            self.now = self.state_end;
        }
    }

    /// Generates `n` arrival timestamps in ascending order.
    pub fn take<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.next_arrival(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = ArrivalProcess::new(10.0, BurstModel::new(50.0, 60.0, 5.0));
        let mut rng = StdRng::seed_from_u64(1);
        let ts = p.take(5_000, &mut rng);
        for w in ts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn mean_rate_is_preserved_under_bursts() {
        // Short dwell times give the run thousands of state cycles so the
        // time-average converges; long dwells would need an impractically
        // long run for a tight tolerance.
        let mut p = ArrivalProcess::new(20.0, BurstModel::new(100.0, 12.0, 0.4));
        let mut rng = StdRng::seed_from_u64(2);
        let n = 400_000;
        let ts = p.take(n, &mut rng);
        let measured = n as f64 / ts.last().unwrap();
        assert!(
            (measured - 20.0).abs() / 20.0 < 0.10,
            "measured mean rate {measured}"
        );
    }

    #[test]
    fn poisson_model_has_no_rate_modulation() {
        let p = ArrivalProcess::new(5.0, BurstModel::poisson());
        assert!((p.calm_rate() - p.burst_rate()).abs() < 1e-12);
    }

    #[test]
    fn burstiness_creates_heavy_windowed_peaks() {
        let mut bursty = ArrivalProcess::new(10.0, BurstModel::new(60.0, 100.0, 3.0));
        let mut rng = StdRng::seed_from_u64(3);
        let ts = bursty.take(100_000, &mut rng);
        // Count arrivals in 1-second windows.
        let horizon = ts.last().unwrap().ceil() as usize + 1;
        let mut counts = vec![0u32; horizon];
        for t in &ts {
            counts[*t as usize] += 1;
        }
        let mut nonzero: Vec<u32> = counts.into_iter().filter(|&c| c > 0).collect();
        nonzero.sort_unstable();
        let median = nonzero[nonzero.len() / 2] as f64;
        let peak = *nonzero.last().unwrap() as f64;
        assert!(
            peak / median > 8.0,
            "peak:median {} should be clearly bursty",
            peak / median
        );
    }

    #[test]
    fn burst_time_fraction() {
        let m = BurstModel::new(10.0, 90.0, 10.0);
        assert!((m.burst_time_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn burst_model_rejects_sub_one_ratio() {
        let _ = BurstModel::new(0.5, 1.0, 1.0);
    }
}
