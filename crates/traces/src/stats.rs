//! Trace validation statistics.
//!
//! Used by tests to check that synthesized traces match the published
//! characteristics and by the experiment binaries to print Table-III-style
//! summaries.

use std::fmt;

use crate::job::Trace;

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Number of tasks.
    pub tasks: usize,
    /// Number of tasks belonging to constrained jobs.
    pub constrained_tasks: usize,
    /// Number of tasks belonging to unconstrained jobs.
    pub unconstrained_tasks: usize,
    /// Fraction of jobs that are short.
    pub short_job_fraction: f64,
    /// Peak:median ratio of per-window job-arrival counts.
    pub peak_to_median: f64,
    /// Mean task duration, seconds.
    pub mean_task_duration_s: f64,
    /// Trace horizon (last arrival), seconds.
    pub horizon_s: f64,
}

impl TraceStats {
    /// Computes statistics over a trace using `window_s`-second windows for
    /// the burstiness measure.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not positive.
    pub fn measure(trace: &Trace, window_s: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        let jobs = trace.len();
        let tasks = trace.num_tasks();
        let constrained_tasks: usize = trace
            .iter()
            .filter(|j| j.is_constrained())
            .map(|j| j.num_tasks())
            .sum();
        let short_jobs = trace.iter().filter(|j| j.short).count();
        let total_duration: f64 = trace.total_work_s();

        // Windowed arrival counts for peak:median.
        let horizon = trace.horizon_s();
        let peak_to_median = if jobs < 2 || horizon <= 0.0 {
            1.0
        } else {
            let buckets = (horizon / window_s).ceil() as usize + 1;
            let mut counts = vec![0u32; buckets];
            for job in trace {
                counts[(job.arrival_s / window_s) as usize] += 1;
            }
            let mut nonzero: Vec<u32> = counts.into_iter().filter(|&c| c > 0).collect();
            nonzero.sort_unstable();
            let median = nonzero[nonzero.len() / 2] as f64;
            let peak = *nonzero.last().expect("at least one window") as f64;
            peak / median
        };

        TraceStats {
            jobs,
            tasks,
            constrained_tasks,
            unconstrained_tasks: tasks - constrained_tasks,
            short_job_fraction: if jobs == 0 {
                0.0
            } else {
                short_jobs as f64 / jobs as f64
            },
            peak_to_median,
            mean_task_duration_s: if tasks == 0 {
                0.0
            } else {
                total_duration / tasks as f64
            },
            horizon_s: horizon,
        }
    }

    /// Fraction of tasks that are constrained.
    pub fn constrained_task_fraction(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.constrained_tasks as f64 / self.tasks as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "jobs:               {}", self.jobs)?;
        writeln!(f, "tasks:              {}", self.tasks)?;
        writeln!(f, "constrained tasks:  {}", self.constrained_tasks)?;
        writeln!(f, "unconstrained:      {}", self.unconstrained_tasks)?;
        writeln!(
            f,
            "short jobs:         {:.2}%",
            self.short_job_fraction * 100.0
        )?;
        writeln!(f, "peak:median:        {:.1}:1", self.peak_to_median)?;
        writeln!(f, "mean task duration: {:.2}s", self.mean_task_duration_s)?;
        write!(f, "horizon:            {:.0}s", self.horizon_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profile::TraceProfile;

    #[test]
    fn stats_of_generated_trace_match_profile() {
        let g = TraceGenerator::new(TraceProfile::yahoo(), 21);
        let trace = g.generate(8_000, 500, 0.7);
        let stats = TraceStats::measure(&trace, 10.0);
        assert_eq!(stats.jobs, 8_000);
        assert!((stats.short_job_fraction - 0.9156).abs() < 0.01);
        let cf = stats.constrained_task_fraction();
        assert!((cf - 0.488).abs() < 0.06, "constrained task fraction {cf}");
        assert!(stats.tasks > 8_000, "multi-task jobs expected");
    }

    #[test]
    fn burstiness_ordering_across_profiles() {
        let yahoo = TraceGenerator::new(TraceProfile::yahoo(), 33).generate(20_000, 500, 0.7);
        let google = TraceGenerator::new(TraceProfile::google(), 33).generate(20_000, 500, 0.7);
        let sy = TraceStats::measure(&yahoo, 5.0);
        let sg = TraceStats::measure(&google, 5.0);
        assert!(
            sg.peak_to_median > sy.peak_to_median,
            "google ({:.1}) must be burstier than yahoo ({:.1})",
            sg.peak_to_median,
            sy.peak_to_median
        );
        assert!(sy.peak_to_median > 2.0, "yahoo should still be bursty");
    }

    #[test]
    fn empty_trace_stats_are_zeroed() {
        let stats = TraceStats::measure(&Trace::new("empty", vec![]), 10.0);
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.constrained_task_fraction(), 0.0);
        assert_eq!(stats.peak_to_median, 1.0);
    }

    #[test]
    fn display_includes_key_rows() {
        let g = TraceGenerator::new(TraceProfile::yahoo(), 1);
        let stats = TraceStats::measure(&g.generate(100, 100, 0.5), 10.0);
        let s = stats.to_string();
        assert!(s.contains("jobs:") && s.contains("peak:median"));
    }
}
