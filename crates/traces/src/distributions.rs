//! Minimal continuous-distribution samplers.
//!
//! Implemented from first principles (inverse-transform sampling and
//! Box–Muller) to keep the dependency set to `rand` alone.

use rand::Rng;

/// Bounded (truncated) Pareto distribution on `[min, max]`.
///
/// Task execution times in the evaluated traces are "Pareto bound" (§V-A);
/// the bounded variant keeps simulated makespans finite while preserving the
/// heavy tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Tail index; smaller is heavier-tailed. Must be positive.
    pub alpha: f64,
    /// Lower bound (inclusive), must be positive.
    pub min: f64,
    /// Upper bound, must exceed `min`.
    pub max: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min < max` and `alpha > 0`.
    pub fn new(alpha: f64, min: f64, max: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(min > 0.0 && max > min, "need 0 < min < max");
        BoundedPareto { alpha, min, max }
    }

    /// Draws one sample via inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().clamp(f64::MIN_POSITIVE, 1.0);
        let l = self.min.powf(self.alpha);
        let h = self.max.powf(self.alpha);
        // Inverse CDF of the truncated Pareto.
        let x = (-(u * h - u * l - h) / (h * l)).powf(-1.0 / self.alpha);
        x.clamp(self.min, self.max)
    }

    /// Closed-form mean of the bounded Pareto.
    pub fn mean(&self) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.min, self.max);
        if (a - 1.0).abs() < 1e-9 {
            // alpha == 1 limit.
            let la = l.powf(a);
            let ha = h.powf(a);
            return la * ha / (ha - la) * a * (h / l).ln();
        }
        let la = l.powf(a);
        let ha = h.powf(a);
        (la / (1.0 - la / ha)) * (a / (a - 1.0)) * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu`/`sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X`; must be non-negative.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "parameters must be finite"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with a given distribution mean and coefficient
    /// of variation of the underlying normal scale.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
        Self::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }

    /// Draws one sample via Box–Muller.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.random::<f64>().clamp(f64::MIN_POSITIVE, 1.0);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    /// The distribution mean `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Exponential distribution with a given rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter (events per unit time); must be positive.
    pub rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }

    /// Draws one sample via inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().clamp(f64::MIN_POSITIVE, 1.0);
        -u.ln() / self.rate
    }

    /// The mean `1 / rate`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(1.3, 0.5, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((0.5..=100.0).contains(&x), "{x} out of bounds");
        }
    }

    #[test]
    fn bounded_pareto_empirical_mean_matches_closed_form() {
        let d = BoundedPareto::new(1.5, 1.0, 1000.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum / n as f64;
        let theory = d.mean();
        assert!(
            (emp - theory).abs() / theory < 0.05,
            "empirical {emp} vs theory {theory}"
        );
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let d = BoundedPareto::new(1.1, 1.0, 10_000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let p999 = samples[samples.len() * 999 / 1000];
        assert!(
            p999 / median > 50.0,
            "tail ratio {} too light",
            p999 / median
        );
    }

    #[test]
    #[should_panic(expected = "min < max")]
    fn bounded_pareto_rejects_bad_bounds() {
        let _ = BoundedPareto::new(1.0, 5.0, 5.0);
    }

    #[test]
    fn lognormal_mean_parameterization() {
        let d = LogNormal::with_mean(12.0, 0.8);
        assert!((d.mean() - 12.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((emp - 12.0).abs() / 12.0 < 0.05, "empirical mean {emp}");
    }

    #[test]
    fn lognormal_samples_are_positive() {
        let d = LogNormal::new(0.0, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.25);
        assert_eq!(d.mean(), 4.0);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 100_000;
        let emp: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((emp - 4.0).abs() < 0.1, "empirical mean {emp}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }
}
