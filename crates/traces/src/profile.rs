//! Per-trace parameter sets for the three evaluated workloads.
//!
//! The paper's published statistics per trace (Table III, §V-A):
//!
//! | Trace    | Nodes  | Tasks (total) | Short jobs | Peak:median |
//! |----------|--------|---------------|------------|-------------|
//! | Yahoo    |  5,000 |       514,644 | 91.56 %    | ~9:1        |
//! | Cloudera | 15,000 |     3,897,480 | 95 %       | (bursty)    |
//! | Google   | 15,000 |    12,868,491 | 90.2 %     | up to 260:1 |
//!
//! Roughly half the tasks of each trace are constrained; constraints follow
//! the Google model (Table II / Fig. 6), embedded into Yahoo and Cloudera
//! via the synthesizer.

use phoenix_constraints::{ConstraintModel, PopulationProfile, Weighted};

use crate::arrival::BurstModel;
use crate::distributions::BoundedPareto;

/// All parameters needed to synthesize one of the evaluated traces.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// Trace name (used in reports).
    pub name: &'static str,
    /// Cluster size used by the paper for this trace.
    pub default_nodes: usize,
    /// Fraction of jobs that are short (latency-critical).
    pub short_job_fraction: f64,
    /// Tasks-per-job distribution for short jobs.
    pub short_tasks_per_job: Weighted<u32>,
    /// Tasks-per-job distribution for long jobs.
    pub long_tasks_per_job: Weighted<u32>,
    /// Task-duration distribution for short jobs (seconds).
    pub short_task_duration: BoundedPareto,
    /// Task-duration distribution for long jobs (seconds).
    pub long_task_duration: BoundedPareto,
    /// Arrival burstiness.
    pub burst: BurstModel,
    /// Constraint synthesis model.
    pub constraint_model: ConstraintModel,
    /// Multiplier on the constrained fraction for long jobs (batch jobs
    /// carry fewer constraints than latency-critical services).
    pub long_constrained_damping: f64,
    /// Cap on the number of constraints a long job may carry.
    pub long_constraint_cap: usize,
    /// Number of distinct users submitting jobs (fair-share schedulers
    /// allocate per user); jobs are assigned Zipf-distributed users.
    pub num_users: u32,
    /// Minimum fraction of the machine population a synthesized constraint
    /// set must be satisfiable by. Sharma et al. calibrate synthesized
    /// constraints against the *observed* machine/constraint occurrence
    /// fractions — attribute combinations that virtually no machine
    /// provides do not occur in real traces, and at reduced simulation
    /// scale they would collapse onto single machines and diverge.
    pub min_class_supply: f64,
    /// Machine-population mix for the cluster running this trace.
    pub population: PopulationProfile,
    /// Number of federated placement domains this workload targets. The
    /// simulator maps jobs to domains as `job_id % domains`; a
    /// domain-aware profile uses the same mapping so per-domain workload
    /// character lines up with the placement shards. `0` (the default)
    /// generates a domain-oblivious trace.
    pub domains: usize,
    /// Per-domain tilt on the constrained-job fraction, in `[0, 1)`.
    /// Domain `d` of `K` scales the constrained probability by
    /// `1 + skew·(2d/(K−1) − 1)`: the lowest domain is constraint-light,
    /// the highest constraint-heavy, and the cluster-wide mean is
    /// preserved. Ignored unless `domains > 1`. At `0.0` generation is
    /// byte-identical to a domain-oblivious profile — the tilt only moves
    /// the acceptance threshold of a draw that happens either way.
    pub domain_constraint_skew: f64,
}

impl TraceProfile {
    /// The Google trace profile: 15 k nodes, 90.2 % short jobs, the most
    /// diverse constraint mix and the heaviest bursts.
    ///
    /// The paper quotes peak:median up to 260:1 across traces; we use 120:1
    /// for Google to keep scaled-down runs statistically stable while
    /// remaining far burstier than the other traces.
    pub fn google() -> Self {
        TraceProfile {
            name: "google",
            default_nodes: 15_000,
            short_job_fraction: 0.902,
            short_tasks_per_job: vec![(1, 0.25), (2, 0.20), (5, 0.25), (10, 0.18), (20, 0.12)],
            long_tasks_per_job: vec![(3, 0.40), (5, 0.40), (10, 0.20)],
            short_task_duration: BoundedPareto::new(1.3, 10.0, 900.0),
            long_task_duration: BoundedPareto::new(1.3, 1_000.0, 4_000.0),
            burst: BurstModel::new(120.0, 150.0, 2.0),
            constraint_model: ConstraintModel::google(),
            long_constrained_damping: 0.7,
            long_constraint_cap: 2,
            num_users: 50,
            min_class_supply: 0.02,
            population: PopulationProfile::google_like(),
            domains: 0,
            domain_constraint_skew: 0.0,
        }
    }

    /// The Cloudera trace profile: 15 k nodes, 95 % short jobs.
    pub fn cloudera() -> Self {
        TraceProfile {
            name: "cloudera",
            default_nodes: 15_000,
            short_job_fraction: 0.95,
            short_tasks_per_job: vec![(1, 0.30), (2, 0.25), (5, 0.25), (10, 0.20)],
            long_tasks_per_job: vec![(3, 0.40), (5, 0.40), (10, 0.20)],
            short_task_duration: BoundedPareto::new(1.3, 10.0, 900.0),
            long_task_duration: BoundedPareto::new(1.3, 1_100.0, 4_500.0),
            burst: BurstModel::new(40.0, 120.0, 3.0),
            constraint_model: ConstraintModel::cloudera(),
            long_constrained_damping: 0.7,
            long_constraint_cap: 2,
            num_users: 50,
            min_class_supply: 0.02,
            population: PopulationProfile::enterprise_like(),
            domains: 0,
            domain_constraint_skew: 0.0,
        }
    }

    /// The Yahoo trace profile: 5 k nodes, 91.56 % short jobs, mildest
    /// bursts (peak:median ≈ 9:1).
    pub fn yahoo() -> Self {
        TraceProfile {
            name: "yahoo",
            default_nodes: 5_000,
            short_job_fraction: 0.9156,
            short_tasks_per_job: vec![(1, 0.25), (2, 0.25), (5, 0.30), (10, 0.20)],
            long_tasks_per_job: vec![(3, 0.40), (5, 0.40), (10, 0.20)],
            short_task_duration: BoundedPareto::new(1.4, 8.0, 800.0),
            long_task_duration: BoundedPareto::new(1.3, 900.0, 3_600.0),
            burst: BurstModel::new(9.0, 90.0, 8.0),
            constraint_model: ConstraintModel::yahoo(),
            long_constrained_damping: 0.7,
            long_constraint_cap: 2,
            num_users: 50,
            min_class_supply: 0.02,
            population: PopulationProfile::enterprise_like(),
            domains: 0,
            domain_constraint_skew: 0.0,
        }
    }

    /// All three profiles, in paper order.
    pub fn all() -> Vec<TraceProfile> {
        vec![Self::yahoo(), Self::cloudera(), Self::google()]
    }

    /// Yahoo-based profile with compositional constraint expressions
    /// enabled: 35 % of constrained jobs draw an expression tree of the
    /// given target `depth` (clamped to `1..=3`) — vector packing at depth
    /// 1, affinity/anti-affinity combinators at depth 2, combined trees at
    /// depth 3. These are the workload families behind the bench `scale`
    /// bin's constraint-depth ladder.
    pub fn yahoo_expr(depth: usize) -> Self {
        let depth = depth.clamp(1, 3);
        let mut profile = Self::yahoo();
        profile.name = match depth {
            1 => "yahoo-expr1",
            2 => "yahoo-expr2",
            _ => "yahoo-expr3",
        };
        profile.constraint_model = profile.constraint_model.with_expressions(0.35, depth);
        profile
    }

    /// Looks a profile up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<TraceProfile> {
        match name.to_ascii_lowercase().as_str() {
            "google" => Some(Self::google()),
            "cloudera" => Some(Self::cloudera()),
            "yahoo" => Some(Self::yahoo()),
            "yahoo-expr1" => Some(Self::yahoo_expr(1)),
            "yahoo-expr2" => Some(Self::yahoo_expr(2)),
            "yahoo-expr3" => Some(Self::yahoo_expr(3)),
            _ => None,
        }
    }

    /// Replaces the constraint model (used for the unconstrained baseline
    /// runs of Fig. 2 and Fig. 4).
    pub fn with_constraint_model(mut self, model: ConstraintModel) -> Self {
        self.constraint_model = model;
        self
    }

    /// Makes the profile domain-aware: jobs are generated for `domains`
    /// federated shards with the given constrained-fraction `skew` (see
    /// [`TraceProfile::domain_constraint_skew`]). `skew` is clamped to
    /// `[0, 0.99]`; a skew of `0.0` leaves generation byte-identical.
    pub fn with_domains(mut self, domains: usize, skew: f64) -> Self {
        self.domains = domains;
        self.domain_constraint_skew = skew.clamp(0.0, 0.99);
        self
    }

    /// Multiplier the generator applies to a job's constrained probability
    /// based on its home domain (`job_id % domains`). `1.0` whenever the
    /// profile is domain-oblivious (`domains < 2`) or unskewed.
    pub fn domain_tilt(&self, job_id: u32) -> f64 {
        if self.domains < 2 || self.domain_constraint_skew == 0.0 {
            return 1.0;
        }
        let k = self.domains as f64;
        let d = (job_id as usize % self.domains) as f64;
        1.0 + self.domain_constraint_skew * (2.0 * d / (k - 1.0) - 1.0)
    }

    /// Expected work (seconds of busy slot time) contributed by an average
    /// job, computed from the closed-form means of the profile's
    /// distributions.
    pub fn mean_job_work_s(&self) -> f64 {
        let mean_tasks = |table: &Weighted<u32>| -> f64 {
            let total: f64 = table.iter().map(|(_, w)| *w).sum();
            table
                .iter()
                .map(|(n, w)| f64::from(*n) * w / total)
                .sum::<f64>()
        };
        let short = mean_tasks(&self.short_tasks_per_job) * self.short_task_duration.mean();
        let long = mean_tasks(&self.long_tasks_per_job) * self.long_task_duration.mean();
        self.short_job_fraction * short + (1.0 - self.short_job_fraction) * long
    }

    /// The short/long classification cutoff on *estimated task duration*
    /// (seconds): the midpoint of the gap between the short distribution's
    /// maximum and the long distribution's minimum.
    ///
    /// The duration supports are disjoint by construction, so this cutoff
    /// classifies exactly like the generator does — mirroring Hawk/Eagle,
    /// where the cutoff is derived from estimated runtimes.
    pub fn short_cutoff_s(&self) -> f64 {
        debug_assert!(self.short_task_duration.max <= self.long_task_duration.min);
        (self.short_task_duration.max + self.long_task_duration.min) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_published_statistics() {
        let g = TraceProfile::google();
        assert_eq!(g.default_nodes, 15_000);
        assert!((g.short_job_fraction - 0.902).abs() < 1e-9);
        let y = TraceProfile::yahoo();
        assert_eq!(y.default_nodes, 5_000);
        assert!((y.burst.peak_to_median - 9.0).abs() < 1e-9);
        let c = TraceProfile::cloudera();
        assert!((c.short_job_fraction - 0.95).abs() < 1e-9);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(TraceProfile::by_name("GOOGLE").unwrap().name, "google");
        assert!(TraceProfile::by_name("nope").is_none());
        assert_eq!(TraceProfile::all().len(), 3);
    }

    #[test]
    fn cutoff_separates_duration_supports() {
        for p in TraceProfile::all() {
            let cut = p.short_cutoff_s();
            assert!(p.short_task_duration.max <= cut);
            assert!(p.long_task_duration.min >= cut);
        }
    }

    #[test]
    fn mean_job_work_is_positive_and_dominated_by_long_jobs() {
        let p = TraceProfile::google();
        let w = p.mean_job_work_s();
        assert!(w > 0.0);
        // Long jobs are rare but so much bigger that they dominate total
        // work — the premise of Hawk-style hybrid scheduling.
        let short_only = p.short_job_fraction
            * p.short_task_duration.mean()
            * p.short_tasks_per_job
                .iter()
                .map(|(n, w)| f64::from(*n) * w)
                .sum::<f64>()
            / p.short_tasks_per_job.iter().map(|(_, w)| *w).sum::<f64>();
        assert!(w > 2.0 * short_only, "long jobs must dominate work");
    }

    #[test]
    fn unconstrained_override() {
        let p = TraceProfile::google()
            .with_constraint_model(phoenix_constraints::ConstraintModel::unconstrained());
        assert_eq!(p.constraint_model.constrained_fraction, 0.0);
    }
}
