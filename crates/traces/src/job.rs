//! The job/trace model consumed by the simulator.

use std::fmt;

use phoenix_constraints::ConstraintSet;

/// Identifier of a job within a trace (dense, generation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// One job of a trace: an arrival time, a bag of tasks, and the constraint
/// set shared by its tasks.
///
/// Per the simulators the paper builds on, a job's tasks are independent
/// (no DAG) and the job completes when its last task completes.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Job identifier (dense within a trace).
    pub id: JobId,
    /// Arrival time in seconds since trace start.
    pub arrival_s: f64,
    /// True duration of each task, seconds.
    pub task_durations_s: Vec<f64>,
    /// Scheduler-visible estimate of the per-task duration (the simulators
    /// of Hawk/Eagle assume runtime estimates are available).
    pub estimated_task_duration_s: f64,
    /// Placement constraints shared by all tasks of the job.
    pub constraints: ConstraintSet,
    /// Whether the generator classified the job as short (latency-critical).
    pub short: bool,
    /// Submitting user/tenant (fair-share schedulers allocate per user).
    pub user: u32,
}

impl Job {
    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.task_durations_s.len()
    }

    /// Total work (sum of task durations), seconds.
    pub fn total_work_s(&self) -> f64 {
        self.task_durations_s.iter().sum()
    }

    /// Whether the job carries any constraint (attribute or placement).
    pub fn is_constrained(&self) -> bool {
        !self.constraints.is_unconstrained()
    }
}

/// A complete workload trace: jobs sorted by arrival time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    name: String,
    jobs: Vec<Job>,
}

impl Trace {
    /// Builds a trace, sorting jobs by arrival time and re-assigning dense
    /// ids in arrival order.
    pub fn new(name: impl Into<String>, mut jobs: Vec<Job>) -> Self {
        jobs.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("arrival times are finite")
        });
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(i as u32);
        }
        Trace {
            name: name.into(),
            jobs,
        }
    }

    /// The trace's display name (e.g. `"google"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The jobs, in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total number of tasks across all jobs.
    pub fn num_tasks(&self) -> usize {
        self.jobs.iter().map(Job::num_tasks).sum()
    }

    /// Total work across all jobs, seconds.
    pub fn total_work_s(&self) -> f64 {
        self.jobs.iter().map(Job::total_work_s).sum()
    }

    /// Time of the last arrival, seconds (0 when empty).
    pub fn horizon_s(&self) -> f64 {
        self.jobs.last().map_or(0.0, |j| j.arrival_s)
    }

    /// Iterates over the jobs.
    pub fn iter(&self) -> std::slice::Iter<'_, Job> {
        self.jobs.iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Job;
    type IntoIter = std::slice::Iter<'a, Job>;

    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace '{}': {} jobs, {} tasks, horizon {:.0}s",
            self.name,
            self.len(),
            self.num_tasks(),
            self.horizon_s()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, arrival: f64, durations: Vec<f64>) -> Job {
        Job {
            id: JobId(id),
            arrival_s: arrival,
            estimated_task_duration_s: durations.iter().sum::<f64>()
                / durations.len().max(1) as f64,
            task_durations_s: durations,
            constraints: ConstraintSet::unconstrained(),
            short: true,
            user: 0,
        }
    }

    #[test]
    fn trace_sorts_and_renumbers() {
        let t = Trace::new(
            "t",
            vec![job(5, 10.0, vec![1.0]), job(9, 2.0, vec![2.0, 3.0])],
        );
        assert_eq!(t.jobs()[0].id, JobId(0));
        assert_eq!(t.jobs()[0].arrival_s, 2.0);
        assert_eq!(t.jobs()[1].id, JobId(1));
        assert_eq!(t.num_tasks(), 3);
        assert_eq!(t.horizon_s(), 10.0);
    }

    #[test]
    fn job_aggregates() {
        let j = job(0, 0.0, vec![1.0, 2.0, 3.0]);
        assert_eq!(j.num_tasks(), 3);
        assert!((j.total_work_s() - 6.0).abs() < 1e-12);
        assert!(!j.is_constrained());
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("empty", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.horizon_s(), 0.0);
        assert_eq!(t.total_work_s(), 0.0);
    }
}
