//! Plain-text trace serialization.
//!
//! Synthesized traces can be exported, inspected, edited and replayed.
//! The format is line-oriented and self-describing (no serialization
//! crates in the dependency budget):
//!
//! ```text
//! # phoenix-trace v1
//! name <trace-name>
//! job <arrival_s> <short|long> <placement> durations=<d1,d2,...> constraints=<class:kind:op:value;...|-> user=<n> [expr=<tree>]
//! ```
//!
//! Jobs carrying a compositional [`ConstraintExpr`] additionally emit a
//! trailing `expr=` field in the whitespace-free compact syntax
//! (`all(...)`, `any(...)`, `not(...)`, `vec{dim=n;...}` and
//! `class:kind:op:value` leaves); on read, the expression is authoritative
//! and the flat `constraints=` field (the expression's conservative
//! projection, kept for human inspection) is ignored.
//!
//! Floating-point fields round-trip exactly (Rust's shortest-representation
//! `Display`).
//!
//! **Delimiter policy: reject, not escape.** The format has no escape
//! syntax, so any value that could collide with a structural delimiter is
//! *rejected with a clear error* on both sides rather than silently
//! mis-parsed later:
//!
//! * trace names may not be empty, contain `\n`/`\r` (line injection), or
//!   carry leading/trailing whitespace (lost by the reader's `trim`) —
//!   [`write_trace`] fails with [`std::io::ErrorKind::InvalidData`] and
//!   [`read_trace`] rejects the same shapes;
//! * non-finite floats (`NaN`, `inf`) are rejected on write: `NaN` would
//!   even "round-trip" through parsing but break every equality downstream;
//! * duplicate `user=`/`expr=` trailing fields are rejected on read
//!   (previously the last one silently won).
//!
//! Constraint tokens themselves cannot collide with `:`/`;`/`,`: classes,
//! kinds and ops are closed enums and values are plain integers.

use std::fmt;
use std::io::{BufRead, Write};

use phoenix_constraints::{
    Constraint, ConstraintClass, ConstraintExpr, ConstraintKind, ConstraintOp, ConstraintSet,
    PlacementConstraint,
};

use crate::job::{Job, JobId, Trace};

/// Errors produced when reading a trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not match the format (line number, message).
    Parse(usize, String),
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ReadTraceError::Parse(line, msg) => {
                write!(f, "trace parse error at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Parse(..) => None,
        }
    }
}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

const HEADER: &str = "# phoenix-trace v1";

/// Why a trace name is unserializable, or `None` if it is fine. Shared by
/// the writer (hard error) and the reader (same shapes rejected).
fn name_defect(name: &str) -> Option<&'static str> {
    if name.is_empty() {
        Some("trace name must not be empty")
    } else if name.contains(['\n', '\r']) {
        Some("trace name must not contain newline characters")
    } else if name != name.trim() {
        Some("trace name must not have leading/trailing whitespace")
    } else {
        None
    }
}

fn invalid_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Writes `trace` in the text format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`. Fails with
/// [`std::io::ErrorKind::InvalidData`] — *before* writing the offending
/// line — when the trace cannot round-trip: a defective name (see the
/// module docs' delimiter policy) or a non-finite arrival/duration.
pub fn write_trace<W: Write>(trace: &Trace, mut writer: W) -> std::io::Result<()> {
    if let Some(defect) = name_defect(trace.name()) {
        return Err(invalid_data(format!("{defect}: {:?}", trace.name())));
    }
    writeln!(writer, "{HEADER}")?;
    writeln!(writer, "name {}", trace.name())?;
    for job in trace {
        if !job.arrival_s.is_finite() {
            return Err(invalid_data(format!(
                "job {}: non-finite arrival {} does not round-trip",
                job.id.0, job.arrival_s
            )));
        }
        if let Some(d) = job.task_durations_s.iter().find(|d| !d.is_finite()) {
            return Err(invalid_data(format!(
                "job {}: non-finite task duration {d} does not round-trip",
                job.id.0
            )));
        }
        write!(
            writer,
            "job {} {} {} durations=",
            job.arrival_s,
            if job.short { "short" } else { "long" },
            job.constraints.placement(),
        )?;
        for (i, d) in job.task_durations_s.iter().enumerate() {
            if i > 0 {
                write!(writer, ",")?;
            }
            write!(writer, "{d}")?;
        }
        write!(writer, " constraints=")?;
        if job.constraints.is_empty() {
            write!(writer, "-")?;
        } else {
            for (i, c) in job.constraints.iter().enumerate() {
                if i > 0 {
                    write!(writer, ";")?;
                }
                write!(writer, "{}:{}:{}:{}", c.class, c.kind, c.op, c.value)?;
            }
        }
        write!(writer, " user={}", job.user)?;
        if let Some(expr) = job.constraints.expr() {
            write!(writer, " expr={expr}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

fn parse_constraint(token: &str, line: usize) -> Result<Constraint, ReadTraceError> {
    let parts: Vec<&str> = token.split(':').collect();
    if parts.len() != 4 {
        return Err(ReadTraceError::Parse(
            line,
            format!("constraint '{token}' must have 4 ':'-separated fields"),
        ));
    }
    let class = ConstraintClass::from_name(parts[0])
        .ok_or_else(|| ReadTraceError::Parse(line, format!("unknown class '{}'", parts[0])))?;
    let kind = ConstraintKind::from_name(parts[1])
        .ok_or_else(|| ReadTraceError::Parse(line, format!("unknown kind '{}'", parts[1])))?;
    let op = ConstraintOp::from_symbol(parts[2])
        .ok_or_else(|| ReadTraceError::Parse(line, format!("unknown op '{}'", parts[2])))?;
    let value: u64 = parts[3]
        .parse()
        .map_err(|_| ReadTraceError::Parse(line, format!("bad value '{}'", parts[3])))?;
    Ok(Constraint::new(kind, op, value, class))
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failures, a missing/incorrect header,
/// or any malformed line.
pub fn read_trace<R: BufRead>(reader: R) -> Result<Trace, ReadTraceError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .transpose()?
        .ok_or_else(|| ReadTraceError::Parse(1, "empty input".into()))?;
    if header.trim() != HEADER {
        return Err(ReadTraceError::Parse(
            1,
            format!("expected header '{HEADER}', found '{header}'"),
        ));
    }
    let mut name = String::from("unnamed");
    let mut jobs = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(n) = line.strip_prefix("name ") {
            // The writer refuses names that cannot round-trip; hold hand-
            // edited files to the same rule instead of silently normalizing.
            if let Some(defect) = name_defect(n) {
                return Err(ReadTraceError::Parse(line_no, defect.to_string()));
            }
            name = n.to_string();
            continue;
        }
        let Some(rest) = line.strip_prefix("job ") else {
            return Err(ReadTraceError::Parse(
                line_no,
                format!("unrecognized line '{line}'"),
            ));
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        if !(5..=7).contains(&fields.len()) {
            return Err(ReadTraceError::Parse(
                line_no,
                format!("job line must have 5 to 7 fields, found {}", fields.len()),
            ));
        }
        let arrival_s: f64 = fields[0]
            .parse()
            .map_err(|_| ReadTraceError::Parse(line_no, format!("bad arrival '{}'", fields[0])))?;
        let short = match fields[1] {
            "short" => true,
            "long" => false,
            other => {
                return Err(ReadTraceError::Parse(
                    line_no,
                    format!("expected short|long, found '{other}'"),
                ))
            }
        };
        let placement = PlacementConstraint::from_name(fields[2]).ok_or_else(|| {
            ReadTraceError::Parse(line_no, format!("unknown placement '{}'", fields[2]))
        })?;
        let durations_str = fields[3]
            .strip_prefix("durations=")
            .ok_or_else(|| ReadTraceError::Parse(line_no, "missing durations= field".into()))?;
        let task_durations_s: Vec<f64> = durations_str
            .split(',')
            .map(|d| {
                d.parse()
                    .map_err(|_| ReadTraceError::Parse(line_no, format!("bad duration '{d}'")))
            })
            .collect::<Result<_, _>>()?;
        if task_durations_s.is_empty() {
            return Err(ReadTraceError::Parse(line_no, "job has no tasks".into()));
        }
        let constraints_str = fields[4]
            .strip_prefix("constraints=")
            .ok_or_else(|| ReadTraceError::Parse(line_no, "missing constraints= field".into()))?;
        let constraints = if constraints_str == "-" {
            Vec::new()
        } else {
            constraints_str
                .split(';')
                .map(|t| parse_constraint(t, line_no))
                .collect::<Result<_, _>>()?
        };
        let mut user: Option<u32> = None;
        let mut expr: Option<ConstraintExpr> = None;
        for f in &fields[5..] {
            if let Some(u) = f.strip_prefix("user=") {
                if user.is_some() {
                    return Err(ReadTraceError::Parse(
                        line_no,
                        "duplicate user= field".into(),
                    ));
                }
                user = Some(
                    u.parse()
                        .map_err(|_| ReadTraceError::Parse(line_no, format!("bad user '{u}'")))?,
                );
            } else if let Some(e) = f.strip_prefix("expr=") {
                if expr.is_some() {
                    return Err(ReadTraceError::Parse(
                        line_no,
                        "duplicate expr= field".into(),
                    ));
                }
                expr = Some(ConstraintExpr::parse(e).ok_or_else(|| {
                    ReadTraceError::Parse(line_no, format!("bad expression '{e}'"))
                })?);
            } else {
                return Err(ReadTraceError::Parse(
                    line_no,
                    format!("trailing field must be user=<n> or expr=<tree>, found '{f}'"),
                ));
            }
        }
        // The expression is authoritative when present; the flat
        // constraints= field is its projection, emitted for inspection.
        let set = match expr {
            Some(expr) => ConstraintSet::from_expr(expr),
            None => ConstraintSet::from_constraints(constraints),
        };
        let estimated = task_durations_s.iter().sum::<f64>() / task_durations_s.len() as f64;
        jobs.push(Job {
            id: JobId(jobs.len() as u32),
            arrival_s,
            task_durations_s,
            estimated_task_duration_s: estimated,
            constraints: set.with_placement(placement),
            short,
            user: user.unwrap_or(0),
        });
    }
    Ok(Trace::new(name, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profile::TraceProfile;

    #[test]
    fn generated_trace_round_trips() {
        let trace = TraceGenerator::new(TraceProfile::google(), 7).generate(300, 100, 0.7);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.name(), trace.name());
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(back.iter()) {
            assert_eq!(a.arrival_s, b.arrival_s, "exact float round trip");
            assert_eq!(a.task_durations_s, b.task_durations_s);
            assert_eq!(a.constraints, b.constraints);
            assert_eq!(a.short, b.short);
        }
    }

    #[test]
    fn expression_trace_round_trips() {
        // An expression-enabled profile must survive write → read exactly,
        // including the compositional trees (the flat constraints= field is
        // only the projection).
        let trace = TraceGenerator::new(TraceProfile::yahoo_expr(3), 11).generate(200, 100, 0.7);
        assert!(
            trace.iter().any(|j| j.constraints.expr().is_some()),
            "profile must emit at least one expression job"
        );
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(back.iter()) {
            assert_eq!(a.constraints, b.constraints, "exact set round trip");
        }
    }

    #[test]
    fn malformed_expression_field_is_rejected() {
        let text =
            format!("{HEADER}\njob 0 short none durations=1 constraints=- user=0 expr=any(\n");
        assert!(read_trace(text.as_bytes()).is_err());
        let text = format!("{HEADER}\njob 0 short none durations=1 constraints=- bogus=1\n");
        assert!(read_trace(text.as_bytes()).is_err());
    }

    #[test]
    fn header_is_mandatory() {
        let err = read_trace("not a trace\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse(1, _)), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "{HEADER}\nname t\n\n# a comment\njob 1.5 short none durations=2,3 constraints=-\n"
        );
        let trace = read_trace(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.jobs()[0].num_tasks(), 2);
        assert!(trace.jobs()[0].short);
    }

    #[test]
    fn constrained_job_parses() {
        let text = format!(
            "{HEADER}\njob 0 long spread durations=100 constraints=hard:arch:=:0;soft:cpu_clock:>:2500\n"
        );
        let trace = read_trace(text.as_bytes()).unwrap();
        let job = &trace.jobs()[0];
        assert_eq!(job.constraints.len(), 2);
        assert_eq!(job.constraints.placement(), PlacementConstraint::Spread);
        assert!(!job.short);
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let text = format!("{HEADER}\njob nope short none durations=1 constraints=-\n");
        match read_trace(text.as_bytes()) {
            Err(ReadTraceError::Parse(2, msg)) => assert!(msg.contains("arrival"), "{msg}"),
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
        let text = format!("{HEADER}\njob 1 short none durations=1 constraints=hard:bogus:=:1\n");
        assert!(read_trace(text.as_bytes()).is_err());
    }

    #[test]
    fn display_of_errors_is_informative() {
        let e = ReadTraceError::Parse(3, "boom".into());
        assert!(e.to_string().contains("line 3"));
    }

    fn one_job(arrival: f64, durations: Vec<f64>) -> Job {
        Job {
            id: JobId(0),
            arrival_s: arrival,
            task_durations_s: durations,
            estimated_task_duration_s: 1.0,
            constraints: ConstraintSet::unconstrained(),
            short: true,
            user: 0,
        }
    }

    /// The format has no escape syntax: names that would corrupt the file
    /// (line injection) or silently not round-trip (padding, empty) are
    /// rejected on write with `InvalidData`, per the module docs.
    #[test]
    fn writer_rejects_unserializable_names() {
        for name in ["", " padded", "padded ", "two\nlines", "cr\rreturn"] {
            let trace = Trace::new(name, vec![one_job(0.0, vec![1.0])]);
            let err = write_trace(&trace, &mut Vec::new()).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{name:?}");
        }
        // Interior spaces and delimiter characters are fine — the name is
        // the whole rest of the line.
        let trace = Trace::new("a name; with:odd,tokens=all(1)", vec![]);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.name(), trace.name());
    }

    /// `NaN` would even parse back — and then poison every downstream
    /// equality — so non-finite floats are a write-time error, before the
    /// offending line is emitted.
    #[test]
    fn writer_rejects_non_finite_floats() {
        for job in [
            one_job(f64::NAN, vec![1.0]),
            one_job(f64::INFINITY, vec![1.0]),
            one_job(0.0, vec![1.0, f64::NAN]),
            one_job(0.0, vec![f64::NEG_INFINITY]),
        ] {
            let trace = Trace::new("t", vec![job]);
            let err = write_trace(&trace, &mut Vec::new()).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
    }

    /// Duplicate trailing fields used to silently last-win; now they are a
    /// parse error, and the reader holds hand-edited `name` lines to the
    /// writer's round-trip rules.
    #[test]
    fn reader_rejects_duplicates_and_defective_names() {
        let text = format!("{HEADER}\njob 0 short none durations=1 constraints=- user=1 user=2\n");
        assert!(read_trace(text.as_bytes()).is_err());
        let text = format!(
            "{HEADER}\njob 0 short none durations=1 constraints=- expr=hard:arch:=:0 expr=hard:arch:=:0\n"
        );
        assert!(read_trace(text.as_bytes()).is_err());
        let text = format!("{HEADER}\nname  padded\n");
        assert!(read_trace(text.as_bytes()).is_err(), "leading whitespace");
        let text = format!("{HEADER}\nname \n");
        assert!(read_trace(text.as_bytes()).is_err(), "empty name");
    }

    /// Empty delimiter-separated tokens are loud errors, not silent zeros.
    #[test]
    fn reader_rejects_empty_value_tokens() {
        let text = format!("{HEADER}\njob 0 short none durations=1,,2 constraints=-\n");
        assert!(read_trace(text.as_bytes()).is_err(), "empty duration");
        let text = format!("{HEADER}\njob 0 short none durations=1 constraints=hard:arch:=:\n");
        assert!(read_trace(text.as_bytes()).is_err(), "empty value");
        let text = format!("{HEADER}\njob 0 short none durations=1 constraints=;\n");
        assert!(read_trace(text.as_bytes()).is_err(), "empty constraint");
    }
}
