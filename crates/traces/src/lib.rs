//! Workload and trace synthesis for the Phoenix scheduler reproduction.
//!
//! The paper evaluates on three production traces — **Google**, **Cloudera**
//! and **Yahoo** — characterized in §V-A as *bursty and unpredictable* (peak
//! to median arrival-rate ratios of 9:1 to 260:1) with *Pareto-bound task
//! execution times* and 80–95 % short jobs; roughly half of all tasks carry
//! placement constraints (Table III). The raw traces are not redistributable
//! (Google's is obfuscated; Yahoo/Cloudera are private), so — exactly like
//! the paper does for constraints — we *synthesize* job streams matching the
//! published statistics:
//!
//! * [`distributions`] — bounded-Pareto and log-normal samplers built on
//!   plain inverse-transform / Box–Muller (no external distribution crate).
//! * [`arrival`] — a two-state Markov-modulated Poisson process reproducing
//!   the bursty arrival pattern with a configurable peak:median ratio.
//! * [`job`] — the [`Job`]/[`Trace`] model consumed by the simulator.
//! * [`profile`] — the per-trace parameter sets ([`TraceProfile::google`],
//!   [`TraceProfile::cloudera`], [`TraceProfile::yahoo`]).
//! * [`generator`] — [`TraceGenerator`], which turns a profile into a
//!   concrete [`Trace`] at a chosen scale and target utilization.
//! * [`stats`] — validation statistics (burstiness, class mix, constraint
//!   mix) used by tests and the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod distributions;
pub mod generator;
pub mod io;
pub mod job;
pub mod profile;
pub mod stats;

pub use arrival::{ArrivalProcess, BurstModel};
pub use distributions::{BoundedPareto, Exponential, LogNormal};
pub use generator::TraceGenerator;
pub use io::{read_trace, write_trace, ReadTraceError};
pub use job::{Job, JobId, Trace};
pub use profile::TraceProfile;
pub use stats::TraceStats;
