//! Trace generation: turning a [`TraceProfile`] into a concrete [`Trace`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phoenix_constraints::{
    feasible_fraction, weighted_pick, AttributeVector, ConstraintSet, MachinePopulation,
};

use crate::job::{Job, JobId, Trace};
use crate::profile::TraceProfile;
use crate::ArrivalProcess;

/// Size of the reference machine sample used to calibrate synthesized
/// constraint sets against the profile's population mix.
const REFERENCE_POPULATION: usize = 2_000;

/// Resampling attempts before giving up and keeping the most satisfiable
/// candidate seen.
const SYNTHESIS_ATTEMPTS: usize = 16;

/// Deterministic trace generator.
///
/// The generator is seeded; the same `(profile, seed, scale)` triple always
/// yields the same trace. Offered load is controlled by choosing the mean
/// job-arrival rate so that
///
/// ```text
/// utilization ≈ arrival_rate × mean_job_work / nodes
/// ```
///
/// matches the requested target for the requested cluster size — the same
/// way the paper sweeps utilization by varying the node count against a
/// fixed workload.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: TraceProfile,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator for a profile with a seed.
    pub fn new(profile: TraceProfile, seed: u64) -> Self {
        TraceGenerator { profile, seed }
    }

    /// The profile being generated.
    pub fn profile(&self) -> &TraceProfile {
        &self.profile
    }

    /// Generates `num_jobs` jobs whose offered load on a cluster of
    /// `nodes` workers is approximately `target_utilization`
    /// (in `(0, 1)`, busy-slot fraction).
    ///
    /// # Panics
    ///
    /// Panics if `target_utilization` is not in `(0, 1]` or `nodes` is 0.
    pub fn generate(&self, num_jobs: usize, nodes: usize, target_utilization: f64) -> Trace {
        assert!(nodes > 0, "cluster must have at least one node");
        assert!(
            target_utilization > 0.0 && target_utilization <= 1.0,
            "target utilization must be in (0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mean_work = self.profile.mean_job_work_s();
        let arrival_rate = target_utilization * nodes as f64 / mean_work;
        let mut arrivals = ArrivalProcess::new(arrival_rate, self.profile.burst);
        let boost = self.constrained_boost();
        // Reference machine sample for constraint-set calibration (a fixed
        // derived seed keeps trace generation independent of cluster
        // generation).
        let mut ref_rng = StdRng::seed_from_u64(self.seed ^ 0xC0FF_EE00);
        let reference = MachinePopulation::generate(
            self.profile.population.clone(),
            REFERENCE_POPULATION,
            &mut ref_rng,
        )
        .into_machines();

        // Zipf(1.1) user popularity: a few heavy users, a long tail.
        let user_table: Vec<(u32, f64)> = (0..self.profile.num_users.max(1))
            .map(|u| (u, 1.0 / f64::from(u + 1).powf(1.1)))
            .collect();

        let mut jobs = Vec::with_capacity(num_jobs);
        for i in 0..num_jobs {
            let arrival_s = arrivals.next_arrival(&mut rng);
            let user = weighted_pick(&user_table, &mut rng);
            jobs.push(self.generate_job(
                JobId(i as u32),
                arrival_s,
                boost,
                &reference,
                user,
                &mut rng,
            ));
        }
        Trace::new(self.profile.name, jobs)
    }

    /// Synthesizes a constraint set whose supply on the reference
    /// population meets the profile's `min_class_supply` floor, resampling
    /// up to [`SYNTHESIS_ATTEMPTS`] times and keeping the most satisfiable
    /// candidate otherwise.
    fn synthesize_calibrated<R: Rng + ?Sized>(
        &self,
        reference: &[AttributeVector],
        max_count: usize,
        rng: &mut R,
    ) -> ConstraintSet {
        let mut best: Option<(f64, ConstraintSet)> = None;
        for _ in 0..SYNTHESIS_ATTEMPTS {
            let set = self
                .profile
                .constraint_model
                .synthesize_set_capped(rng, max_count);
            let supply = feasible_fraction(reference, &set);
            if supply >= self.profile.min_class_supply {
                return set;
            }
            match &best {
                Some((s, _)) if *s >= supply => {}
                _ => best = Some((supply, set)),
            }
        }
        best.expect("at least one attempt").1
    }

    /// Compensation factor keeping the *task-level* constrained fraction at
    /// the model's target even though long jobs are damped: with `w_s`/`w_l`
    /// the short/long task shares and `d` the damping,
    /// `boost = 1 / (w_s + w_l·d)`.
    fn constrained_boost(&self) -> f64 {
        let p = &self.profile;
        let mean_tasks = |table: &phoenix_constraints::Weighted<u32>| -> f64 {
            let total: f64 = table.iter().map(|(_, w)| *w).sum();
            table
                .iter()
                .map(|(n, w)| f64::from(*n) * w / total)
                .sum::<f64>()
        };
        let short_tasks = p.short_job_fraction * mean_tasks(&p.short_tasks_per_job);
        let long_tasks = (1.0 - p.short_job_fraction) * mean_tasks(&p.long_tasks_per_job);
        let total = short_tasks + long_tasks;
        if total <= 0.0 {
            return 1.0;
        }
        let w_s = short_tasks / total;
        let w_l = long_tasks / total;
        1.0 / (w_s + w_l * p.long_constrained_damping)
    }

    fn generate_job<R: Rng + ?Sized>(
        &self,
        id: JobId,
        arrival_s: f64,
        boost: f64,
        reference: &[AttributeVector],
        user: u32,
        rng: &mut R,
    ) -> Job {
        let p = &self.profile;
        let short = rng.random::<f64>() < p.short_job_fraction;
        let (tasks_table, duration) = if short {
            (&p.short_tasks_per_job, p.short_task_duration)
        } else {
            (&p.long_tasks_per_job, p.long_task_duration)
        };
        let num_tasks = weighted_pick(tasks_table, rng).max(1);
        // All tasks of a job share one duration scale (they run the same
        // code); per-task jitter is mild. This matches the Eagle simulator,
        // where a job's tasks have similar runtimes.
        let base = duration.sample(rng);
        let task_durations_s: Vec<f64> = (0..num_tasks)
            .map(|_| {
                let jitter = 0.9 + 0.2 * rng.random::<f64>();
                (base * jitter).clamp(duration.min, duration.max)
            })
            .collect();
        let estimated = task_durations_s.iter().sum::<f64>() / task_durations_s.len() as f64;
        // Domain-aware profiles tilt the acceptance threshold, never the
        // draw itself, so an unskewed profile is byte-identical.
        let tilt = p.domain_tilt(id.0);
        let base_fraction = (p.constraint_model.constrained_fraction * boost * tilt).min(1.0);
        let constraints = if short {
            if rng.random::<f64>() < base_fraction {
                self.synthesize_calibrated(reference, usize::MAX, rng)
            } else {
                ConstraintSet::unconstrained()
            }
        } else {
            let fraction = base_fraction * p.long_constrained_damping;
            if rng.random::<f64>() < fraction {
                self.synthesize_calibrated(reference, p.long_constraint_cap, rng)
            } else {
                ConstraintSet::unconstrained()
            }
        };
        Job {
            id,
            arrival_s,
            task_durations_s,
            estimated_task_duration_s: estimated,
            constraints,
            short,
            user,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TraceProfile;

    #[test]
    fn generation_is_deterministic() {
        let g = TraceGenerator::new(TraceProfile::yahoo(), 7);
        let a = g.generate(500, 100, 0.8);
        let b = g.generate(500, 100, 0.8);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(TraceProfile::yahoo(), 1).generate(100, 100, 0.8);
        let b = TraceGenerator::new(TraceProfile::yahoo(), 2).generate(100, 100, 0.8);
        let same = a
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.arrival_s == y.arrival_s);
        assert!(!same);
    }

    #[test]
    fn offered_load_tracks_target() {
        let g = TraceGenerator::new(TraceProfile::google(), 3);
        let nodes = 400;
        let trace = g.generate(8_000, nodes, 0.7);
        let offered = trace.total_work_s() / (trace.horizon_s() * nodes as f64);
        // Bursty arrivals + heavy-tailed work make this noisy; it must land
        // in the right regime.
        assert!(
            (0.3..=1.4).contains(&offered),
            "offered load {offered} far from 0.7"
        );
    }

    #[test]
    fn short_fraction_matches_profile() {
        let g = TraceGenerator::new(TraceProfile::cloudera(), 5);
        let trace = g.generate(10_000, 1_000, 0.5);
        let short = trace.iter().filter(|j| j.short).count() as f64 / trace.len() as f64;
        assert!((short - 0.95).abs() < 0.01, "short fraction {short}");
    }

    #[test]
    fn constrained_task_fraction_matches_table_iii() {
        // The published statistic is task-level (Table III: ~49-51 % of
        // tasks constrained); the generator compensates the long-job
        // damping so the blended task fraction hits the model target.
        let g = TraceGenerator::new(TraceProfile::google(), 9);
        let trace = g.generate(10_000, 1_000, 0.5);
        let constrained_tasks: usize = trace
            .iter()
            .filter(|j| j.is_constrained())
            .map(|j| j.num_tasks())
            .sum();
        let fraction = constrained_tasks as f64 / trace.num_tasks() as f64;
        assert!(
            (fraction - 0.513).abs() < 0.04,
            "constrained task fraction {fraction}"
        );
    }

    #[test]
    fn durations_respect_class_supports() {
        let profile = TraceProfile::yahoo();
        let cutoff = profile.short_cutoff_s();
        let g = TraceGenerator::new(profile, 11);
        let trace = g.generate(2_000, 500, 0.6);
        for job in &trace {
            for &d in &job.task_durations_s {
                if job.short {
                    assert!(d <= cutoff, "short task {d} above cutoff");
                } else {
                    assert!(d >= cutoff, "long task {d} below cutoff");
                }
            }
            // Estimates classify identically to ground truth.
            assert_eq!(job.estimated_task_duration_s <= cutoff, job.short);
        }
    }

    #[test]
    fn unskewed_domain_profile_is_byte_identical() {
        let plain = TraceGenerator::new(TraceProfile::yahoo(), 7).generate(400, 100, 0.8);
        let aware = TraceGenerator::new(TraceProfile::yahoo().with_domains(8, 0.0), 7)
            .generate(400, 100, 0.8);
        assert_eq!(plain.len(), aware.len());
        for (a, b) in plain.iter().zip(aware.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn domain_skew_tilts_constrained_fraction_across_domains() {
        let k = 2;
        let g = TraceGenerator::new(TraceProfile::google().with_domains(k, 0.9), 13);
        let trace = g.generate(8_000, 1_000, 0.5);
        let fraction_of = |domain: usize| {
            let jobs: Vec<_> = trace
                .iter()
                .filter(|j| j.id.0 as usize % k == domain)
                .collect();
            jobs.iter().filter(|j| j.is_constrained()).count() as f64 / jobs.len() as f64
        };
        let light = fraction_of(0);
        let heavy = fraction_of(1);
        assert!(
            heavy > light + 0.2,
            "skew must separate domains: light {light}, heavy {heavy}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = TraceGenerator::new(TraceProfile::yahoo(), 1).generate(10, 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        let _ = TraceGenerator::new(TraceProfile::yahoo(), 1).generate(10, 10, 1.5);
    }
}
