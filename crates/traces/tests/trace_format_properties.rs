//! Property tests for the text trace format: adversarial—but valid—content
//! must round-trip write → read exactly (names full of delimiter and
//! expression-grammar tokens, bit-exact floats, constraint sets and
//! expression trees), and unserializable content must be rejected loudly
//! on write instead of corrupting the file (the module's reject-not-escape
//! delimiter policy).

use proptest::prelude::*;

use phoenix_constraints::{
    Constraint, ConstraintClass, ConstraintExpr, ConstraintKind, ConstraintOp, ConstraintSet,
    PlacementConstraint,
};
use phoenix_traces::{read_trace, write_trace, Job, JobId, Trace};

/// Trace-name characters skewed toward everything the format uses as
/// structure: field separators, key=value markers, constraint and
/// expression grammar tokens.
fn arb_name() -> impl Strategy<Value = String> {
    let palette: Vec<char> = "abcXY012 :;,=()<>{}-#".chars().collect();
    prop::collection::vec(prop::sample::select(palette), 1..24).prop_map(|chars| {
        let raw: String = chars.into_iter().collect();
        let trimmed = raw.trim();
        // The writer (rightly) refuses padded or empty names; normalize
        // instead of filtering so every case still exercises a round trip.
        if trimmed.is_empty() {
            "t".to_string()
        } else {
            trimmed.to_string()
        }
    })
}

/// Finite floats across magnitudes; shortest-representation `Display`
/// round-trips any finite f64 bit-exactly.
fn arb_float() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0f64..10.0,
        0.0f64..1e-6,
        0.0f64..1e12,
        (0u64..1000).prop_map(|v| v as f64 / 16.0),
    ]
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    (
        prop::sample::select(ConstraintKind::ALL.to_vec()),
        prop::sample::select(vec![ConstraintOp::Lt, ConstraintOp::Gt, ConstraintOp::Eq]),
        0u64..5000,
        prop::sample::select(vec![ConstraintClass::Hard, ConstraintClass::Soft]),
    )
        .prop_map(|(kind, op, value, class)| Constraint::new(kind, op, value, class))
}

/// Constraint payloads: unconstrained, flat sets, or small expression
/// trees (the writer emits the tree in the compact `expr=` grammar and the
/// flat projection alongside; the reader must prefer the tree).
fn arb_set() -> impl Strategy<Value = ConstraintSet> {
    prop_oneof![
        Just(ConstraintSet::unconstrained()),
        prop::collection::vec(arb_constraint(), 1..4).prop_map(ConstraintSet::from_constraints),
        (
            prop::collection::vec(arb_constraint(), 1..3),
            prop::collection::vec(arb_constraint(), 1..3),
            0usize..3,
        )
            .prop_map(|(a, b, shape)| {
                let left = ConstraintExpr::all(a);
                let right = ConstraintExpr::all(b);
                let expr = match shape {
                    0 => ConstraintExpr::any_of(vec![left, right]),
                    1 => ConstraintExpr::all_of(vec![left, ConstraintExpr::not(right)]),
                    _ => ConstraintExpr::all_of(vec![left, right]),
                };
                ConstraintSet::from_expr(expr)
            }),
    ]
}

fn arb_job() -> impl Strategy<Value = Job> {
    (
        arb_float(),
        prop::collection::vec(arb_float(), 1..5),
        arb_set(),
        prop::sample::select(vec![
            PlacementConstraint::None,
            PlacementConstraint::Colocate,
            PlacementConstraint::Spread,
        ]),
        prop::sample::select(vec![true, false]),
        0u32..1_000_000,
    )
        .prop_map(|(arrival, durations, set, placement, short, user)| Job {
            id: JobId(0),
            arrival_s: arrival,
            task_durations_s: durations,
            estimated_task_duration_s: 1.0,
            constraints: set.with_placement(placement),
            short,
            user,
        })
}

proptest! {
    #[test]
    fn adversarial_traces_round_trip_exactly(
        name in arb_name(),
        jobs in prop::collection::vec(arb_job(), 0..8),
    ) {
        let jobs: Vec<Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, mut j)| { j.id = JobId(i as u32); j })
            .collect();
        let trace = Trace::new(name, jobs);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("valid traces must serialize");
        let back = read_trace(buf.as_slice()).expect("own output must parse");
        prop_assert_eq!(back.name(), trace.name());
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(back.iter()) {
            prop_assert_eq!(
                a.arrival_s.to_bits(),
                b.arrival_s.to_bits(),
                "bit-exact arrival"
            );
            prop_assert_eq!(a.task_durations_s.len(), b.task_durations_s.len());
            for (x, y) in a.task_durations_s.iter().zip(&b.task_durations_s) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "bit-exact duration");
            }
            prop_assert_eq!(&a.constraints, &b.constraints, "exact set round trip");
            prop_assert_eq!(a.short, b.short);
            prop_assert_eq!(a.user, b.user);
        }
    }

    #[test]
    fn unserializable_names_error_instead_of_corrupting(
        core in arb_name(),
        defect in 0usize..4,
    ) {
        let name = match defect {
            0 => format!("{core}\ninjected"),
            1 => format!("{core}\rinjected"),
            2 => format!(" {core}"),
            _ => format!("{core} "),
        };
        let trace = Trace::new(name, vec![]);
        let err = write_trace(&trace, &mut Vec::new()).expect_err("defective name");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
