//! Experiment harness for the Phoenix reproduction.
//!
//! One runnable binary per paper table/figure (see `src/bin/`), built on a
//! small library:
//!
//! * [`SchedulerKind`] — which policy to instantiate.
//! * [`RunSpec`] / [`run_spec`] — one deterministic simulation run
//!   (cluster generation + trace generation + simulation).
//! * [`run_many`] / [`run_seeds`] — parallel execution of a batch of runs
//!   across CPU cores (each run is single-threaded and deterministic;
//!   `run_seeds` is the multi-seed path behind seed-averaged tables).
//! * [`Scale`] — quick/full experiment scaling; the paper's absolute node
//!   counts (5,000–19,000) are reachable with `--scale full`, while the
//!   default `quick` scale divides cluster and workload by the same factor
//!   so utilization — the variable that drives every result — is preserved.
//! * [`Summary`] — seed-averaged percentile summaries (the paper averages
//!   five runs per data point).
//!
//! Run e.g. `cargo run --release -p phoenix-bench --bin fig7 -- --scale quick`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod report;
pub mod runner;
pub mod summary;

pub use args::{ObserveArgs, Scale};
pub use report::{print_normalized_sweep, sweep, SweepPoint, SWEEP_FACTORS};
pub use runner::{
    run_many, run_seeds, run_spec, run_spec_timed, run_specs_parallel, scenario_matrix, RunSpec,
    RunTiming, SchedulerKind,
};
pub use summary::{average_summaries, summarize, PercentileTriple, Summary};
