//! Paper-scale wall-clock benchmark: end-to-end run cost at the paper's
//! absolute cluster sizes (Yahoo 5,000 nodes, Cloudera/Google 15,000) over
//! a growing job ladder, with generation, index construction and
//! simulation timed separately and the engine's hot paths profiled.
//!
//! Unlike the figure binaries this bin defaults to node factor **1.0**
//! (the paper's own node counts); `--scale smoke|quick|full` still applies
//! the usual reduced factors for CI smoke runs. `--jobs N` sets the top of
//! the job ladder (default 50,000) and `--seeds N` repeats each point.
//!
//! Results go to stdout as a table and to `BENCH_scale.json`
//! (`--out <path>` to redirect) as hand-rolled JSON:
//!
//! ```json
//! {"version": 1, "node_factor": 1.0,
//!  "runs": [{"profile": "yahoo", "scheduler": "phoenix", "nodes": 5000,
//!            "jobs": 50000, "seed": 1, "cluster_gen_s": ..,
//!            "trace_gen_s": .., "index_build_s": .., "sim_s": ..,
//!            "total_s": .., "tasks_completed": .., "tasks_per_sim_s": ..,
//!            "makespan_s": .., "utilization": .., "digest": "0x..",
//!            "hot_paths": {"dispatch": {"calls": .., "total_ns": ..}, ..}}]}
//! ```
//!
//! The digest is the deterministic run digest: two invocations at the same
//! scale must agree on every digest even though the timings differ.
//!
//! Federated rows (the yahoo K-domain ladder, including the 100k-node
//! points) additionally carry `"domains"`, `"staleness_us"`,
//! `"gossip_rounds"`, `"home_samples"`, `"remote_samples"` and
//! `"cluster_fallbacks"`; centralized rows omit them, so the pre-existing
//! baseline rows are byte-compatible. The K=1/staleness=0 federated row is
//! digest-identical to the centralized yahoo row at the same
//! (nodes, jobs, seed) — the parity anchor CI checks.

use std::fmt::Write as _;

use phoenix_bench::{run_specs_parallel, RunSpec, Scale, SchedulerKind};
use phoenix_metrics::Table;
use phoenix_sim::{FederationConfig, ProfileScope, SimDuration};
use phoenix_traces::TraceProfile;

/// Job counts ladder: quarters of the max, deduplicated, ascending.
fn ladder(max_jobs: usize) -> Vec<usize> {
    let mut steps: Vec<usize> = [max_jobs / 8, max_jobs / 4, max_jobs / 2, max_jobs]
        .into_iter()
        .filter(|&j| j > 0)
        .collect();
    steps.dedup();
    steps
}

struct ScaleRun {
    spec: RunSpec,
    result: phoenix_sim::SimResult,
    timing: phoenix_bench::RunTiming,
}

fn json_run(out: &mut String, run: &ScaleRun) {
    let r = &run.result;
    let t = &run.timing;
    let tasks = r.counters.tasks_completed;
    let tasks_per_sim_s = if t.sim_s > 0.0 {
        tasks as f64 / t.sim_s
    } else {
        0.0
    };
    write!(
        out,
        "    {{\"profile\": \"{}\", \"scheduler\": \"{}\", \"nodes\": {}, \"jobs\": {}, \
         \"seed\": {}, \"cluster_gen_s\": {:.4}, \"trace_gen_s\": {:.4}, \
         \"index_build_s\": {:.4}, \"sim_s\": {:.4}, \"total_s\": {:.4}, \
         \"tasks_completed\": {}, \"tasks_per_sim_s\": {:.0}, \"makespan_s\": {:.3}, \
         \"utilization\": {:.4}, ",
        run.spec.profile.name,
        run.spec.scheduler.name(),
        run.spec.nodes,
        run.spec.jobs,
        run.spec.seed,
        t.cluster_gen_s,
        t.trace_gen_s,
        t.index_build_s,
        t.sim_s,
        t.total_s(),
        tasks,
        tasks_per_sim_s,
        r.metrics.makespan.as_secs_f64(),
        r.utilization(),
    )
    .expect("writing to String cannot fail");
    // Federation fields appear only on federated rows, so the centralized
    // rows of the committed baseline stay byte-compatible (the CI parity
    // check keys on `(profile, nodes, jobs, seed, domains, staleness_us)`
    // with 0 defaults).
    if run.spec.federation.is_active() {
        let stats = r.federation.unwrap_or_default();
        write!(
            out,
            "\"domains\": {}, \"staleness_us\": {}, \"gossip_rounds\": {}, \
             \"home_samples\": {}, \"remote_samples\": {}, \"cluster_fallbacks\": {}, ",
            run.spec.federation.domains,
            run.spec.federation.staleness.as_micros(),
            stats.gossip_rounds,
            stats.home_samples,
            stats.remote_samples,
            stats.cluster_fallbacks,
        )
        .expect("writing to String cannot fail");
    }
    write!(
        out,
        "\"digest\": \"{:#018x}\", \"hot_paths\": {{",
        r.digest()
    )
    .expect("writing to String cannot fail");
    if let Some(profile) = &r.profile {
        for (i, scope) in ProfileScope::ALL.iter().enumerate() {
            let totals = profile.scope(*scope);
            write!(
                out,
                "{}\"{}\": {{\"calls\": {}, \"total_ns\": {}}}",
                if i == 0 { "" } else { ", " },
                scope.name(),
                totals.calls,
                totals.total_ns,
            )
            .expect("writing to String cannot fail");
        }
    }
    out.push_str("}}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::from_args();
    // This bin's default is the paper's absolute node counts, not the
    // figure binaries' quick preset; an explicit --scale keeps its factor.
    if !args.iter().any(|a| a == "--scale") {
        scale.node_factor = 1.0;
    }
    if !args.iter().any(|a| a == "--jobs") {
        scale.jobs = 50_000;
    }
    if !args.iter().any(|a| a == "--seeds") {
        scale.seeds = 1;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_scale.json")
        .to_string();
    // `--parallel N` fans the scenario batch out over N threads. Results
    // (digests included) are byte-identical to a sequential run — each
    // scenario is deterministic in its spec — but wall-clock timings and
    // therefore tasks/s become contention-noisy, so keep the default
    // sequential when re-blessing the committed baseline.
    let parallel: usize = args
        .iter()
        .position(|a| a == "--parallel")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    println!(
        "== scale (node factor {}, job ladder to {}, {} seed(s), {} thread(s)) ==",
        scale.node_factor, scale.jobs, scale.seeds, parallel
    );
    let mut table = Table::new(vec![
        "profile",
        "nodes",
        "jobs",
        "seed",
        "gen (s)",
        "index (s)",
        "sim (s)",
        "total (s)",
        "tasks/s",
        "util %",
    ]);
    let mut specs: Vec<RunSpec> = Vec::new();
    for profile in [
        TraceProfile::yahoo(),
        TraceProfile::cloudera(),
        TraceProfile::google(),
    ] {
        let nodes = scale.nodes_for(&profile);
        // The 15k-node profiles get half the job ladder of Yahoo's 5k so
        // one full invocation stays within the same wall-clock budget.
        let max_jobs = if profile.default_nodes > TraceProfile::yahoo().default_nodes {
            scale.jobs / 2
        } else {
            scale.jobs
        };
        for jobs in ladder(max_jobs.max(1)) {
            for seed in scale.seed_list() {
                let mut spec =
                    RunSpec::new(profile.clone(), SchedulerKind::Phoenix).with_seed(seed);
                spec.nodes = nodes;
                spec.gen_nodes = nodes;
                spec.jobs = jobs;
                spec.gen_util = 0.9;
                // Decorrelate the ladder rows: with a shared generation
                // seed each row's trace is a strict prefix of the next,
                // so one early critical-path job can pin the makespan of
                // *every* row at a profile (google 12.5k and 25k used to
                // report the same makespan to the microsecond). Mixing the
                // job count into the generation seed makes each row an
                // independent workload sample on the same cluster.
                spec.gen_seed = Some(seed ^ (jobs as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                spec.record_task_waits = false;
                spec.faults = scale.faults;
                specs.push(spec.with_profiling());
            }
        }
    }
    // Constraint-depth ladder: the yahoo profile with compositional
    // constraint expressions enabled at depths 1–3 (vector packing →
    // affinity/anti-affinity combinators → combined trees), at a quarter
    // of the job ladder. Pins the wall-clock and digest cost of compiling
    // expression trees to the posting-list index as tree depth grows.
    for depth in 1..=3usize {
        let profile = TraceProfile::yahoo_expr(depth);
        let nodes = scale.nodes_for(&profile);
        let jobs = (scale.jobs / 4).max(1);
        for seed in scale.seed_list() {
            let mut spec = RunSpec::new(profile.clone(), SchedulerKind::Phoenix).with_seed(seed);
            spec.nodes = nodes;
            spec.gen_nodes = nodes;
            spec.jobs = jobs;
            spec.gen_util = 0.9;
            spec.gen_seed = Some(seed ^ (jobs as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            spec.record_task_waits = false;
            spec.faults = scale.faults;
            specs.push(spec.with_profiling());
        }
    }
    // Federated ladder: the yahoo workload sharded into K domains with
    // summary staleness S, at a quarter of the job ladder. The K=1 /
    // staleness=0 row is the centralized-parity anchor — its digest must be
    // byte-identical to the plain yahoo row at the same (nodes, jobs, seed)
    // above, and CI checks exactly that. Two rows stretch the cluster to
    // 100k nodes (× node factor): a centralized K=1 baseline and the
    // hardest federated point (K=16, 2 s staleness) to quantify what
    // eventually-consistent sharding costs at the design's target scale.
    let fed_profile = TraceProfile::yahoo();
    let fed_nodes = scale.nodes_for(&fed_profile);
    let fed_jobs = (scale.jobs / 4).max(1);
    let big_nodes = ((100_000f64 * scale.node_factor).round() as usize).max(32);
    let mut fed_points: Vec<(usize, usize, SimDuration)> = Vec::new();
    for k in [1usize, 4, 16] {
        for staleness in [SimDuration::ZERO, SimDuration::from_secs(2)] {
            fed_points.push((fed_nodes, k, staleness));
        }
    }
    fed_points.push((big_nodes, 1, SimDuration::ZERO));
    fed_points.push((big_nodes, 16, SimDuration::from_secs(2)));
    for &(nodes, k, staleness) in &fed_points {
        for seed in scale.seed_list() {
            let mut spec =
                RunSpec::new(fed_profile.clone(), SchedulerKind::Phoenix).with_seed(seed);
            spec.nodes = nodes;
            spec.gen_nodes = nodes;
            spec.jobs = fed_jobs;
            spec.gen_util = 0.9;
            spec.gen_seed = Some(seed ^ (fed_jobs as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            spec.record_task_waits = false;
            spec.faults = scale.faults;
            spec.federation = FederationConfig::sharded(k, staleness);
            specs.push(spec.with_profiling());
        }
    }
    let outcomes = run_specs_parallel(&specs, parallel);
    let mut runs: Vec<ScaleRun> = Vec::new();
    for (spec, (result, timing)) in specs.into_iter().zip(outcomes) {
        let tasks = result.counters.tasks_completed;
        let profile_cell = if spec.federation.is_active() {
            format!(
                "{}+K{}/{}ms",
                spec.profile.name,
                spec.federation.domains,
                spec.federation.staleness.as_micros() / 1_000
            )
        } else {
            spec.profile.name.to_string()
        };
        table.add_row(vec![
            profile_cell,
            spec.nodes.to_string(),
            spec.jobs.to_string(),
            spec.seed.to_string(),
            format!("{:.2}", timing.cluster_gen_s + timing.trace_gen_s),
            format!("{:.3}", timing.index_build_s),
            format!("{:.2}", timing.sim_s),
            format!("{:.2}", timing.total_s()),
            format!("{:.0}", tasks as f64 / timing.sim_s.max(1e-9)),
            format!("{:.1}", result.utilization() * 100.0),
        ]);
        runs.push(ScaleRun {
            spec,
            result,
            timing,
        });
    }
    println!("{table}");

    // Hot-path share of the largest run per profile (where it matters).
    for profile in ["yahoo", "cloudera", "google"] {
        if let Some(run) = runs
            .iter()
            .filter(|r| r.spec.profile.name == profile)
            .max_by_key(|r| r.spec.jobs)
        {
            if let Some(p) = &run.result.profile {
                println!("hot paths ({} {} jobs):\n{}", profile, run.spec.jobs, p);
            }
        }
    }

    // Federation cost vs the centralized anchor at the same
    // (nodes, jobs, seed): makespan and utilization degradation, plus how
    // often placement had to leave the home domain.
    let fed_runs: Vec<&ScaleRun> = runs
        .iter()
        .filter(|r| r.spec.federation.is_partitioned())
        .collect();
    if !fed_runs.is_empty() {
        let mut fed_table = Table::new(vec![
            "K",
            "stale (s)",
            "nodes",
            "seed",
            "makespan Δ%",
            "util Δpp",
            "remote",
            "fallback",
        ]);
        for run in fed_runs {
            let baseline = runs.iter().find(|b| {
                !b.spec.federation.is_partitioned()
                    && b.spec.profile.name == run.spec.profile.name
                    && b.spec.nodes == run.spec.nodes
                    && b.spec.jobs == run.spec.jobs
                    && b.spec.seed == run.spec.seed
            });
            let (makespan_delta, util_delta) = match baseline {
                Some(b) => {
                    let base_ms = b.result.metrics.makespan.as_secs_f64();
                    let fed_ms = run.result.metrics.makespan.as_secs_f64();
                    (
                        format!("{:+.2}", (fed_ms - base_ms) / base_ms.max(1e-9) * 100.0),
                        format!(
                            "{:+.2}",
                            (run.result.utilization() - b.result.utilization()) * 100.0
                        ),
                    )
                }
                None => ("-".to_string(), "-".to_string()),
            };
            let stats = run.result.federation.unwrap_or_default();
            fed_table.add_row(vec![
                run.spec.federation.domains.to_string(),
                format!("{:.1}", run.spec.federation.staleness.as_secs_f64()),
                run.spec.nodes.to_string(),
                run.spec.seed.to_string(),
                makespan_delta,
                util_delta,
                stats.remote_samples.to_string(),
                stats.cluster_fallbacks.to_string(),
            ]);
        }
        println!("federated vs centralized (same nodes/jobs/seed):\n{fed_table}");
    }

    let mut json = String::new();
    json.push_str("{\n");
    writeln!(
        json,
        "  \"version\": 1,\n  \"node_factor\": {},\n  \"gen_util\": 0.9,\n  \"runs\": [",
        scale.node_factor
    )
    .expect("writing to String cannot fail");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json_run(&mut json, run);
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path} ({} runs)", runs.len());
}
