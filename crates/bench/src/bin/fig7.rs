//! Fig. 7: short-job response times (p50/p90/p99) of Phoenix normalized to
//! Eagle-C across cluster sizes (utilization sweep), for all three traces.
//!
//! Expected shape (paper): ~1.9x better p99 at ~85 % utilization,
//! converging toward parity as utilization drops below ~45 %.

use phoenix_bench::{print_normalized_sweep, sweep, Scale, SchedulerKind};
use phoenix_traces::TraceProfile;

fn main() {
    let scale = Scale::from_args();
    for profile in TraceProfile::all() {
        let points = sweep(
            &profile,
            &[SchedulerKind::Phoenix, SchedulerKind::EagleC],
            &scale,
            0.92,
        );
        print_normalized_sweep(
            &format!("Fig. 7 ({}): short jobs, phoenix / eagle-c", profile.name),
            &points,
            |s| s.short_response,
        );
    }
}
