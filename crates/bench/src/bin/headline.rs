//! Headline comparison: every scheduler on one trace at high load, with
//! full counter visibility (debug/analysis aid and summary table).

use phoenix_bench::{run_many, summarize, RunSpec, Scale, SchedulerKind};
use phoenix_metrics::Table;
use phoenix_traces::TraceProfile;

fn main() {
    let scale = Scale::from_args();
    let trace_name = std::env::args()
        .skip_while(|a| a != "--trace")
        .nth(1)
        .unwrap_or_else(|| "google".to_string());
    let profile = TraceProfile::by_name(&trace_name).expect("known trace");
    let nodes = scale.nodes_for(&profile);
    println!(
        "== headline ({}, {} nodes, target util 0.92, {} jobs, {} seeds) ==",
        profile.name, nodes, scale.jobs, scale.seeds
    );
    let mut table = Table::new(vec![
        "scheduler",
        "util %",
        "short p50",
        "short p90",
        "short p99",
        "constr short p99",
        "unconstr short p99",
        "long p99",
        "crv reorders",
        "failed",
    ]);
    for kind in [
        SchedulerKind::Phoenix,
        SchedulerKind::PhoenixNoCrv,
        SchedulerKind::PhoenixNoAdmission,
        SchedulerKind::EagleC,
        SchedulerKind::HawkC,
        SchedulerKind::SparrowC,
        SchedulerKind::YaqD,
        SchedulerKind::MercuryC,
        SchedulerKind::MonolithicC,
        SchedulerKind::ChoosyC,
    ] {
        let specs: Vec<RunSpec> = scale
            .seed_list()
            .into_iter()
            .map(|seed| {
                let mut spec = RunSpec::new(profile.clone(), kind).with_seed(seed);
                spec.nodes = nodes;
                spec.gen_nodes = nodes;
                spec.gen_util = 0.92;
                spec.jobs = scale.jobs;
                spec.record_task_waits = false;
                spec.faults = scale.faults;
                spec
            })
            .collect();
        let s = summarize(&run_many(&specs));
        table.add_row(vec![
            kind.name().to_string(),
            format!("{:.1}", s.utilization * 100.0),
            format!("{:.1}", s.short_response.p50),
            format!("{:.1}", s.short_response.p90),
            format!("{:.1}", s.short_response.p99),
            format!("{:.1}", s.constrained_short_response.p99),
            format!("{:.1}", s.unconstrained_short_response.p99),
            format!("{:.1}", s.long_response.p99),
            s.crv_reordered_tasks.to_string(),
            s.jobs_failed.to_string(),
        ]);
    }
    println!("{table}");
}
