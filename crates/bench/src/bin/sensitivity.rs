//! Sensitivity and ablation study (§VI-C of the paper mentions the
//! heartbeat sensitivity analysis; DESIGN.md lists the rest):
//!
//! * CRV heartbeat interval: 1 s – 30 s (paper settles on 9 s).
//! * Probe ratio: 1 – 4 (paper settles on 2).
//! * Starvation slack threshold: 1 – 20 (paper settles on 5).
//! * Mechanism ablations: Phoenix without CRV reordering, without
//!   admission control, and full.

use phoenix_bench::{summarize, RunSpec, Scale, SchedulerKind};
use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
use phoenix_core::{Phoenix, PhoenixConfig};
use phoenix_metrics::Table;
use phoenix_sim::{SimConfig, SimDuration, Simulation};
use phoenix_traces::{TraceGenerator, TraceProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_with(config: PhoenixConfig, scale: &Scale, seed: u64) -> phoenix_bench::Summary {
    let profile = TraceProfile::google();
    let nodes = scale.nodes_for(&profile);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
    let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
    let trace = TraceGenerator::new(profile, seed).generate(scale.jobs, nodes, 0.92);
    let sim_config = SimConfig {
        record_task_waits: false,
        ..SimConfig::default()
    };
    let result = Simulation::new(
        sim_config,
        FeasibilityIndex::new(cluster.into_machines()),
        &trace,
        Box::new(Phoenix::new(config)),
        seed,
    )
    .run();
    summarize(&[result])
}

fn main() {
    let scale = Scale::from_args();
    let profile = TraceProfile::google();
    let cutoff = profile.short_cutoff_s();
    let seeds: Vec<u64> = scale.seed_list();

    let averaged = |config: PhoenixConfig| {
        let runs: Vec<_> = seeds
            .iter()
            .map(|&s| run_with(config.clone(), &scale, s))
            .collect();
        phoenix_bench::average_summaries(&runs)
    };

    println!("== sensitivity: CRV heartbeat interval (google, high load) ==");
    let mut t = Table::new(vec![
        "heartbeat (s)",
        "short p99 (s)",
        "crv reorders",
        "util %",
    ]);
    for hb in [1u64, 3, 9, 18, 30] {
        let mut config = PhoenixConfig::with_cutoff_s(cutoff);
        config.heartbeat = SimDuration::from_secs(hb);
        let s = averaged(config);
        t.add_row(vec![
            hb.to_string(),
            format!("{:.1}", s.short_response.p99),
            s.crv_reordered_tasks.to_string(),
            format!("{:.1}", s.utilization * 100.0),
        ]);
    }
    println!("{t}");

    println!("== sensitivity: probe ratio ==");
    let mut t = Table::new(vec!["probe ratio", "short p99 (s)", "short p50 (s)"]);
    for ratio in [1u32, 2, 3, 4] {
        let mut config = PhoenixConfig::with_cutoff_s(cutoff);
        config.baseline.probe_ratio = ratio;
        let s = averaged(config);
        t.add_row(vec![
            ratio.to_string(),
            format!("{:.1}", s.short_response.p99),
            format!("{:.1}", s.short_response.p50),
        ]);
    }
    println!("{t}");

    println!("== sensitivity: starvation slack threshold ==");
    let mut t = Table::new(vec!["slack", "short p99 (s)", "long p99 (s)"]);
    for slack in [1u32, 3, 5, 10, 20] {
        let mut config = PhoenixConfig::with_cutoff_s(cutoff);
        config.baseline.slack_threshold = slack;
        let s = averaged(config);
        t.add_row(vec![
            slack.to_string(),
            format!("{:.1}", s.short_response.p99),
            format!("{:.1}", s.long_response.p99),
        ]);
    }
    println!("{t}");

    println!("== control plane: monolithic-c per-task decision cost ==");
    let mut t = Table::new(vec![
        "decision cost (ms)",
        "short p50 (s)",
        "short p99 (s)",
        "util %",
    ]);
    for cost_ms in [1u64, 10, 100, 1_000, 5_000] {
        let runs: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let nodes = scale.nodes_for(&profile);
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9).wrapping_add(17),
                );
                let cluster =
                    MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
                let trace =
                    TraceGenerator::new(profile.clone(), seed).generate(scale.jobs, nodes, 0.92);
                let result = Simulation::new(
                    SimConfig {
                        record_task_waits: false,
                        ..SimConfig::default()
                    },
                    FeasibilityIndex::new(cluster.into_machines()),
                    &trace,
                    Box::new(phoenix_schedulers::MonolithicC::with_decision_cost(
                        phoenix_schedulers::BaselineConfig::with_cutoff_s(cutoff),
                        SimDuration::from_millis(cost_ms),
                    )),
                    seed,
                )
                .run();
                summarize(&[result])
            })
            .collect();
        let s = phoenix_bench::average_summaries(&runs);
        t.add_row(vec![
            cost_ms.to_string(),
            format!("{:.1}", s.short_response.p50),
            format!("{:.1}", s.short_response.p99),
            format!("{:.1}", s.utilization * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "note: a zero-cost central scheduler is an oracle; the distributed\n\
         designs exist because real control planes saturate — visible above\n\
         as decision cost approaches task granularity.\n"
    );

    println!("== ablations: phoenix mechanisms (vs eagle-c) ==");
    let mut t = Table::new(vec!["variant", "short p99 (s)", "constr short p99 (s)"]);
    for kind in [
        SchedulerKind::Phoenix,
        SchedulerKind::PhoenixNoCrv,
        SchedulerKind::PhoenixNoAdmission,
        SchedulerKind::EagleC,
    ] {
        let nodes = scale.nodes_for(&profile);
        let specs: Vec<RunSpec> = seeds
            .iter()
            .map(|&seed| {
                let mut spec = RunSpec::new(profile.clone(), kind).with_seed(seed);
                spec.nodes = nodes;
                spec.gen_nodes = nodes;
                spec.gen_util = 0.92;
                spec.jobs = scale.jobs;
                spec.record_task_waits = false;
                spec
            })
            .collect();
        let s = summarize(&phoenix_bench::run_many(&specs));
        t.add_row(vec![
            kind.name().to_string(),
            format!("{:.1}", s.short_response.p99),
            format!("{:.1}", s.constrained_short_response.p99),
        ]);
    }
    println!("{t}");
}
