//! Table III: CRV reordering statistics — per trace, the constrained /
//! unconstrained task counts, the number of tasks CRV actually reordered,
//! and the short-job share.

use phoenix_bench::{run_many, RunSpec, Scale, SchedulerKind};
use phoenix_metrics::Table;
use phoenix_traces::{TraceGenerator, TraceProfile, TraceStats};

fn main() {
    let scale = Scale::from_args();
    println!("== Table III: CRV reordering statistics (phoenix, high load) ==");
    let mut table = Table::new(vec![
        "workload",
        "nodes",
        "constrained tasks",
        "unconstrained tasks",
        "reordered tasks",
        "crv insertions",
        "short jobs",
    ]);
    for profile in TraceProfile::all() {
        let nodes = scale.nodes_for(&profile);
        // Trace statistics (constrained/unconstrained task counts) come from
        // the trace itself; reorder counts come from the Phoenix runs.
        let trace = TraceGenerator::new(profile.clone(), 1).generate(scale.jobs, nodes, 0.92);
        let stats = TraceStats::measure(&trace, 10.0);
        let specs: Vec<RunSpec> = scale
            .seed_list()
            .into_iter()
            .map(|seed| {
                let mut spec =
                    RunSpec::new(profile.clone(), SchedulerKind::Phoenix).with_seed(seed);
                spec.nodes = nodes;
                spec.gen_nodes = nodes;
                spec.gen_util = 0.92;
                spec.jobs = scale.jobs;
                spec.record_task_waits = false;
                spec
            })
            .collect();
        let results = run_many(&specs);
        let reordered: u64 = results
            .iter()
            .map(|r| r.counters.crv_reordered_tasks)
            .sum::<u64>()
            / results.len() as u64;
        let insertions: u64 = results
            .iter()
            .map(|r| r.counters.crv_insertions)
            .sum::<u64>()
            / results.len() as u64;
        table.add_row(vec![
            profile.name.to_string(),
            nodes.to_string(),
            stats.constrained_tasks.to_string(),
            stats.unconstrained_tasks.to_string(),
            reordered.to_string(),
            insertions.to_string(),
            format!("{:.2}%", stats.short_job_fraction * 100.0),
        ]);
    }
    println!("{table}");
}
