//! Trace replay tool: load a trace file (see `tracegen`) and run it under
//! any scheduler on a freshly generated cluster.
//!
//! ```sh
//! cargo run --release -p phoenix-bench --bin replay -- \
//!     --file trace.txt --scheduler phoenix --nodes 1500 --profile google
//! ```

use phoenix_bench::SchedulerKind;
use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
use phoenix_metrics::JobClass;
use phoenix_sim::{SimConfig, Simulation};
use phoenix_traces::{read_trace, TraceProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let path = arg("--file").expect("--file <trace.txt> is required");
    let file = std::fs::File::open(&path).expect("open trace file");
    let trace = read_trace(std::io::BufReader::new(file)).expect("parse trace");
    println!("loaded {trace}");

    let profile_name = arg("--profile").unwrap_or_else(|| trace.name().to_string());
    let profile = TraceProfile::by_name(&profile_name)
        .unwrap_or_else(|| panic!("unknown cluster profile '{profile_name}'"));
    let nodes: usize = arg("--nodes").and_then(|v| v.parse().ok()).unwrap_or(1_500);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let kind = match arg("--scheduler").as_deref() {
        Some("eagle-c") => SchedulerKind::EagleC,
        Some("hawk-c") => SchedulerKind::HawkC,
        Some("sparrow-c") => SchedulerKind::SparrowC,
        Some("yaq-d") => SchedulerKind::YaqD,
        Some("mercury-c") => SchedulerKind::MercuryC,
        Some("monolithic-c") => SchedulerKind::MonolithicC,
        _ => SchedulerKind::Phoenix,
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
    let result = Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &trace,
        kind.build(profile.short_cutoff_s()),
        seed,
    )
    .run();
    println!("{result}");
    println!(
        "short: p50 {:.1}s p90 {:.1}s p99 {:.1}s | long p99 {:.1}s",
        result.class_response_percentile(JobClass::Short, 50.0),
        result.class_response_percentile(JobClass::Short, 90.0),
        result.class_response_percentile(JobClass::Short, 99.0),
        result.class_response_percentile(JobClass::Long, 99.0),
    );
}
