//! Table II: the distribution of constraints in the Google cluster trace —
//! the published rows plus the shares our synthesizer actually reproduces.

use phoenix_constraints::{ConstraintModel, ConstraintStats, TABLE_II};
use phoenix_metrics::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = ConstraintModel::google();
    let mut rng = StdRng::seed_from_u64(7);
    let mut stats = ConstraintStats::new();
    for _ in 0..200_000 {
        stats.record(&model.maybe_synthesize(&mut rng));
    }
    let shares = stats.kind_shares();

    println!("== Table II: constraint distribution (published vs synthesized) ==");
    let mut table = Table::new(vec![
        "task constraint",
        "rel. slowdown",
        "share % (paper)",
        "share % (synth)",
        "occurrences (paper)",
    ]);
    for row in TABLE_II {
        let synth = shares
            .iter()
            .find(|(k, _)| *k == row.kind)
            .map(|(_, s)| *s)
            .unwrap_or(0.0);
        table.add_row(vec![
            row.kind.to_string(),
            format!("{:.2}x", row.relative_slowdown),
            format!("{:.2}", row.share_percent),
            format!("{:.2}", synth),
            row.occurrences.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "constrained job fraction: {:.1}% (paper: ~51%)",
        stats.constrained_fraction() * 100.0
    );
    println!(
        "note: synthesized shares are flattened relative to the paper's because\n\
         multi-constraint jobs draw kinds without replacement; the ordering and\n\
         dominance of ISA/cores/disks is preserved."
    );
}
