//! Observability runner: one run with the event trace and/or hot-path
//! profile surfaced.
//!
//! ```text
//! cargo run --release -p phoenix-bench --bin observe -- \
//!     --trace yahoo --scheduler phoenix --scale smoke \
//!     --trace-out /tmp/phoenix.jsonl --profile
//! ```
//!
//! `--trace-out <path>` writes one JSON object per line (see the EXPERIMENTS
//! schema section): placement choices, CRV reorders/insertions, starvation
//! suppressions, steals, migrations, crash/recover strikes, and per-heartbeat
//! monitor snapshots. `--profile` prints the wall-clock table of the engine
//! hot paths (dispatch, heartbeat refresh, reorder, steal). `--audit` runs
//! the invariant auditor online (conservation, slot booking, placement
//! feasibility, CRV ledger exactness, starvation slack) and prints its
//! report. None of the flags change the simulated behaviour: the run's
//! digest matches the same spec without them.

use phoenix_bench::{run_spec, ObserveArgs, RunSpec, Scale, SchedulerKind};
use phoenix_traces::TraceProfile;

fn flag_value(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let scale = Scale::from_args();
    let observe = ObserveArgs::from_args();
    let trace_name = flag_value("--trace").unwrap_or_else(|| "yahoo".to_string());
    let profile = TraceProfile::by_name(&trace_name).expect("known trace");
    let sched_name = flag_value("--scheduler").unwrap_or_else(|| "phoenix".to_string());
    let kind = SchedulerKind::by_name(&sched_name).expect("known scheduler");
    let nodes = scale.nodes_for(&profile);
    let seed = scale.seed_list()[0];
    println!(
        "== observe ({}, {}, {} nodes, target util 0.9, {} jobs, seed {}) ==",
        kind.name(),
        profile.name,
        nodes,
        scale.jobs,
        seed
    );
    let mut spec = RunSpec::new(profile, kind).with_seed(seed);
    spec.nodes = nodes;
    spec.gen_nodes = nodes;
    spec.gen_util = 0.9;
    spec.jobs = scale.jobs;
    spec.record_task_waits = false;
    spec.faults = scale.faults;
    spec.trace_out = observe.trace_out.clone();
    spec.profile_hot_paths = observe.profile;
    spec.audit = observe.audit;
    let result = run_spec(&spec);
    println!("{result}");
    println!("digest: {:016x}", result.digest());
    if let Some(path) = &observe.trace_out {
        println!("trace written to {}", path.display());
    }
    if let Some(report) = &result.profile {
        println!("\nhot-path profile (wall clock):\n{report}");
    }
    if let Some(report) = &result.audit {
        println!("\ninvariant audit:\n{report}");
        if !report.is_clean() {
            std::process::exit(1);
        }
    }
}
