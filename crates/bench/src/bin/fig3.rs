//! Fig. 3: queuing delay of constrained vs. unconstrained jobs over trace
//! time — the Google trace executed under Eagle-C.
//!
//! Expected shape (paper): during arrival peaks the constrained jobs'
//! queuing delay spikes far above the unconstrained jobs' and takes long to
//! drain back to the baseline.

use phoenix_bench::{run_spec, RunSpec, Scale, SchedulerKind};
use phoenix_metrics::Table;
use phoenix_traces::TraceProfile;

fn main() {
    let scale = Scale::from_args();
    let profile = TraceProfile::google();
    let nodes = scale.nodes_for(&profile);
    let mut spec = RunSpec::new(profile, SchedulerKind::EagleC);
    spec.nodes = nodes;
    spec.gen_nodes = nodes;
    spec.gen_util = 0.9;
    spec.jobs = scale.jobs;
    let result = run_spec(&spec);

    println!(
        "== Fig. 3 (google, eagle-c, {} nodes): task queuing delay over time ==",
        nodes
    );
    let constrained = result.metrics.constrained_wait_series.bucket_means();
    let unconstrained = result.metrics.unconstrained_wait_series.bucket_means();
    let mut table = Table::new(vec![
        "t (s)",
        "constrained mean wait (s)",
        "unconstrained mean wait (s)",
    ]);
    // Join the two series on bucket start time.
    let mut ui = 0usize;
    for (t, c) in &constrained {
        while ui < unconstrained.len() && unconstrained[ui].0 < *t {
            ui += 1;
        }
        let u = if ui < unconstrained.len() && (unconstrained[ui].0 - t).abs() < 1e-9 {
            format!("{:.2}", unconstrained[ui].1)
        } else {
            "-".to_string()
        };
        table.add_row(vec![format!("{t:.0}"), format!("{c:.2}"), u]);
    }
    println!("{table}");

    // Headline: peak constrained vs unconstrained delay.
    let peak_c = constrained.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    let peak_u = unconstrained.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    println!("peak constrained wait: {peak_c:.2}s, peak unconstrained wait: {peak_u:.2}s");
}
