//! Trace generation / export tool: synthesize a trace for any profile and
//! write it in the text format of `phoenix_traces::io` (stdout or a file).
//!
//! ```sh
//! cargo run --release -p phoenix-bench --bin tracegen -- \
//!     --trace google --jobs 5000 --nodes 1500 --util 0.9 --seed 1 --out trace.txt
//! ```

use phoenix_traces::{write_trace, TraceGenerator, TraceProfile, TraceStats};

fn arg(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let profile_name = arg("--trace").unwrap_or_else(|| "google".into());
    let profile = TraceProfile::by_name(&profile_name).expect("yahoo, cloudera or google");
    let jobs: usize = arg("--jobs").and_then(|v| v.parse().ok()).unwrap_or(5_000);
    let nodes: usize = arg("--nodes").and_then(|v| v.parse().ok()).unwrap_or(1_500);
    let util: f64 = arg("--util").and_then(|v| v.parse().ok()).unwrap_or(0.9);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);

    let trace = TraceGenerator::new(profile, seed).generate(jobs, nodes, util);
    eprintln!("{}", TraceStats::measure(&trace, 10.0));
    match arg("--out") {
        Some(path) => {
            let file = std::fs::File::create(&path).expect("create output file");
            write_trace(&trace, std::io::BufWriter::new(file)).expect("write trace");
            eprintln!("wrote {path}");
        }
        None => {
            let stdout = std::io::stdout();
            write_trace(&trace, stdout.lock()).expect("write trace");
        }
    }
}
