//! Diagnostic tool: runs one configuration and reports the slowest jobs
//! with their constraint sets and feasible-worker counts — used to verify
//! that no constraint class is sustainably oversubscribed.

use phoenix_bench::{Scale, SchedulerKind};
use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
use phoenix_sim::{SimConfig, Simulation};
use phoenix_traces::{TraceGenerator, TraceProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let profile_name = std::env::args()
        .skip_while(|a| a != "--trace")
        .nth(1)
        .unwrap_or_else(|| "yahoo".to_string());
    let profile = TraceProfile::by_name(&profile_name).expect("known trace");
    let nodes = scale.nodes_for(&profile);
    let mut rng = StdRng::seed_from_u64(1);
    let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
    let trace = TraceGenerator::new(profile.clone(), 1).generate(scale.jobs, nodes, 0.92);
    let index = FeasibilityIndex::new(cluster.into_machines());

    // Pre-compute feasible counts per distinct constraint set.
    let mut class_load: std::collections::HashMap<String, (usize, f64, usize)> =
        std::collections::HashMap::new();
    for job in &trace {
        let feasible = index.count_feasible(&job.constraints);
        let entry = class_load
            .entry(job.constraints.to_string())
            .or_insert((feasible, 0.0, 0));
        entry.1 += job.total_work_s();
        entry.2 += 1;
    }
    let horizon = trace.horizon_s();
    println!(
        "trace horizon: {horizon:.0}s, nodes {nodes}, jobs {}",
        trace.len()
    );
    println!("\n== classes by offered load ratio (work / (feasible * horizon)) ==");
    let mut rows: Vec<(f64, String, usize, f64, usize)> = class_load
        .into_iter()
        .map(|(set, (feasible, work, jobs))| {
            let rho = if feasible == 0 {
                f64::INFINITY
            } else {
                work / (feasible as f64 * horizon)
            };
            (rho, set, feasible, work, jobs)
        })
        .collect();
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let infeasible_work: f64 = rows.iter().filter(|r| r.2 == 0).map(|r| r.3).sum();
    println!("hard-infeasible work: {infeasible_work:.0}s (failed at admission)");
    rows.retain(|r| r.2 > 0);
    for (rho, set, feasible, work, jobs) in rows.iter().take(15) {
        println!("rho={rho:8.3} feasible={feasible:5} jobs={jobs:5} work={work:10.0}s  {set}");
    }

    // Keep a copy of constraint info for post-run tail analysis.
    let job_info: Vec<(String, usize, bool)> = trace
        .iter()
        .map(|j| {
            (
                j.constraints.to_string(),
                index.count_feasible(&j.constraints),
                j.short,
            )
        })
        .collect();
    let sched_name = std::env::args()
        .skip_while(|a| a != "--scheduler")
        .nth(1)
        .unwrap_or_else(|| "eagle-c".to_string());
    let kind = match sched_name.as_str() {
        "phoenix" => SchedulerKind::Phoenix,
        "hawk-c" => SchedulerKind::HawkC,
        _ => SchedulerKind::EagleC,
    };
    let sim = Simulation::new(
        SimConfig::default(),
        index,
        &trace,
        kind.build(profile.short_cutoff_s()),
        1,
    );
    let result = sim.run();
    // Tail analysis: the slowest 1% of completed short jobs, grouped by
    // constraint class.
    let mut shorts: Vec<&phoenix_sim::JobOutcome> = result
        .job_outcomes
        .iter()
        .filter(|o| o.short && o.response_s.is_some())
        .collect();
    shorts.sort_by(|a, b| {
        b.response_s
            .partial_cmp(&a.response_s)
            .expect("finite responses")
    });
    let tail_len = (shorts.len() / 100).max(1);
    let mut by_class: std::collections::HashMap<&str, (usize, f64, usize)> =
        std::collections::HashMap::new();
    for o in shorts.iter().take(tail_len) {
        let (set, feas, _) = &job_info[o.job.0 as usize];
        let e = by_class.entry(set.as_str()).or_insert((0, 0.0, *feas));
        e.0 += 1;
        e.1 += o.response_s.expect("completed");
    }
    let mut tail_rows: Vec<_> = by_class.into_iter().collect();
    tail_rows.sort_by_key(|(_, (n, _, _))| std::cmp::Reverse(*n));
    println!("\n== slowest 1% of short jobs ({tail_len}), by class ==");
    for (set, (n, sum, feas)) in tail_rows.iter().take(12) {
        println!(
            "n={n:5}  mean resp={:8.0}s  feasible={feas:5}  {set}",
            sum / *n as f64
        );
    }
    println!(
        "\nutil {:.1}%  makespan {:.0}s  {:?}",
        result.utilization() * 100.0,
        result.metrics.makespan.as_secs_f64(),
        result.counters
    );
    let mut short = result
        .metrics
        .job_response
        .by_class(phoenix_metrics::JobClass::Short);
    println!(
        "short jobs: p50 {:.2}s p90 {:.2}s p99 {:.2}s max {:.2}s",
        short.percentile(50.0),
        short.percentile(90.0),
        short.percentile(99.0),
        short.max()
    );
}
