//! Fig. 9: job queuing delay (p90/p99) of Phoenix vs. Eagle-C on the Google
//! trace, separately for constrained and unconstrained jobs.
//!
//! Expected shape (paper): Phoenix improves the 99th-percentile queuing
//! delay for *both* groups — constrained jobs stop stalling the
//! unconstrained tasks queued behind them.

use phoenix_bench::{run_many, summarize, RunSpec, Scale, SchedulerKind};
use phoenix_metrics::Table;
use phoenix_traces::TraceProfile;

fn main() {
    let scale = Scale::from_args();
    let profile = TraceProfile::google();
    let nodes = scale.nodes_for(&profile);
    let kinds = [SchedulerKind::Phoenix, SchedulerKind::EagleC];
    let mut summaries = Vec::new();
    for kind in kinds {
        let specs: Vec<RunSpec> = scale
            .seed_list()
            .into_iter()
            .map(|seed| {
                let mut spec = RunSpec::new(profile.clone(), kind).with_seed(seed);
                spec.nodes = nodes;
                spec.gen_nodes = nodes;
                spec.gen_util = 0.92;
                spec.jobs = scale.jobs;
                spec.record_task_waits = false;
                spec
            })
            .collect();
        summaries.push(summarize(&run_many(&specs)));
    }

    println!(
        "== Fig. 9 (google, {} nodes): short-job queuing delay breakdown ==",
        nodes
    );
    let mut table = Table::new(vec![
        "scheduler",
        "constrained p90 (s)",
        "constrained p99 (s)",
        "unconstrained p90 (s)",
        "unconstrained p99 (s)",
    ]);
    for s in &summaries {
        table.add_row(vec![
            s.scheduler.clone(),
            format!("{:.2}", s.constrained_short_queuing.p90),
            format!("{:.2}", s.constrained_short_queuing.p99),
            format!("{:.2}", s.unconstrained_short_queuing.p90),
            format!("{:.2}", s.unconstrained_short_queuing.p99),
        ]);
    }
    println!("{table}");
    let (p, e) = (&summaries[0], &summaries[1]);
    println!(
        "phoenix improvement: constrained p99 {:.2}x, unconstrained p99 {:.2}x",
        e.constrained_short_queuing.p99 / p.constrained_short_queuing.p99.max(1e-9),
        e.unconstrained_short_queuing.p99 / p.unconstrained_short_queuing.p99.max(1e-9),
    );
}
