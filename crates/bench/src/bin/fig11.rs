//! Fig. 11: short-job response times of Phoenix normalized to Sparrow-C on
//! the Google trace, across cluster sizes.
//!
//! Expected shape (paper): Phoenix takes ~48 % of Sparrow-C's p50 at 86 %
//! utilization (~2x better), approaching parity at the p99/low-load corner.

use phoenix_bench::{print_normalized_sweep, sweep, Scale, SchedulerKind};
use phoenix_traces::TraceProfile;

fn main() {
    let scale = Scale::from_args();
    let points = sweep(
        &TraceProfile::google(),
        &[SchedulerKind::Phoenix, SchedulerKind::SparrowC],
        &scale,
        0.92,
    );
    print_normalized_sweep(
        "Fig. 11 (google): short jobs, phoenix / sparrow-c",
        &points,
        |s| s.short_response,
    );
}
